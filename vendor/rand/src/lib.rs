//! A minimal, dependency-free stand-in for the `rand` crate (0.8 API
//! subset), used because this build environment has no network access to
//! crates.io. It provides exactly what the workspace consumes:
//!
//! * [`rngs::StdRng`] — a seedable PRNG (xoshiro256++ behind the scenes);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Streams are deterministic per seed (the workspace's figures and tests
//! rely on seeded reproducibility, not on matching upstream `StdRng`'s
//! exact byte stream).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive; integer or
    /// float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps 64 random bits to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64. Fast, high-quality, and deterministic per
    /// seed — a stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
