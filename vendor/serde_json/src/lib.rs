//! A minimal stand-in for `serde_json` built on the local `serde`
//! stand-in: serializes any `serde::Serialize` value to a JSON string
//! (compact or pretty), and parses JSON text into a dynamically typed
//! [`Value`] tree via [`from_str`] (derive-based deserialization is not
//! provided — callers walk the tree by hand).

use serde::{Serialize, SerializeSeq, SerializeStruct, Serializer};
use std::fmt;

/// Serialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON has no representation for
/// them).
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        indent: None,
        level: 0,
    })?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        indent: Some("  "),
        level: 0,
    })?;
    Ok(out)
}

struct JsonSerializer<'a> {
    out: &'a mut String,
    indent: Option<&'static str>,
    level: usize,
}

impl JsonSerializer<'_> {
    fn newline(&mut self, level: usize) {
        if let Some(indent) = self.indent {
            self.out.push('\n');
            for _ in 0..level {
                self.out.push_str(indent);
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeStruct = JsonStruct<'a>;
    type SerializeSeq = JsonSeq<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if !v.is_finite() {
            return Err(Error(format!("non-finite float {v}")));
        }
        // `{}` on f64 prints the shortest digits that round-trip.
        let text = v.to_string();
        self.out.push_str(&text);
        // Keep JSON numbers recognizable as floats.
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            self.out.push_str(".0");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonStruct<'a>, Error> {
        self.out.push('{');
        Ok(JsonStruct {
            out: self.out,
            indent: self.indent,
            level: self.level,
            first: true,
        })
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeq {
            out: self.out,
            indent: self.indent,
            level: self.level,
            first: true,
        })
    }
}

/// In-progress JSON object.
pub struct JsonStruct<'a> {
    out: &'a mut String,
    indent: Option<&'static str>,
    level: usize,
    first: bool,
}

impl SerializeStruct for JsonStruct<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        }
        .newline(self.level + 1);
        write_escaped(self.out, key);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
        value.serialize(JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        })
    }

    fn end(self) -> Result<(), Error> {
        if !self.first {
            JsonSerializer {
                out: self.out,
                indent: self.indent,
                level: self.level,
            }
            .newline(self.level);
        }
        self.out.push('}');
        Ok(())
    }
}

/// In-progress JSON array.
pub struct JsonSeq<'a> {
    out: &'a mut String,
    indent: Option<&'static str>,
    level: usize,
    first: bool,
}

impl SerializeSeq for JsonSeq<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        }
        .newline(self.level + 1);
        value.serialize(JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        })
    }

    fn end(self) -> Result<(), Error> {
        if !self.first {
            JsonSerializer {
                out: self.out,
                indent: self.indent,
                level: self.level,
            }
            .newline(self.level);
        }
        self.out.push(']');
        Ok(())
    }
}

/// A dynamically typed JSON value, as produced by [`from_str`].
///
/// Objects keep their fields in source order (a `Vec`, not a map), so a
/// serialize → parse → inspect round trip observes exactly the layout the
/// serializer emitted.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers up to 2⁵³ round-trip exactly through the
    /// `f64` representation.
    Number(f64),
    /// A string (escapes already decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, fields in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by key; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number that
    /// the `f64` representation holds exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number that the `f64`
    /// representation holds exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an error describing the first syntax problem (unexpected
/// character, unterminated string, bad escape, trailing garbage, …).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error(format!("expected '{literal}' at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Track a run of plain UTF-8 bytes and append it wholesale, so
        // multibyte characters pass through untouched.
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    out.push_str(self.run_since(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run_since(run_start)?);
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the
                            // serializer half; reject them plainly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error(format!("\\u{hex} is not a scalar value")))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => return Err(Error("raw control character in string".into())),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn run_since(&self, start: usize) -> Result<&str, Error> {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in string".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let value: f64 = text
            .parse()
            .map_err(|_| Error(format!("invalid number '{text}'")))?;
        // Integer tokens (no fraction/exponent) must survive the f64
        // representation exactly; silently rounding 2⁵³ + 1 to 2⁵³ would
        // corrupt counters that serialized exactly. Reject them loudly.
        if !text.contains(['.', 'e', 'E']) {
            let exact = text
                .parse::<i128>()
                .is_ok_and(|int| int as f64 == value && value as i128 == int);
            if !exact {
                return Err(Error(format!(
                    "integer '{text}' exceeds the exactly-representable f64 range (2^53)"
                )));
            }
        }
        Ok(Value::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: usize,
        y: f64,
        label: String,
        tags: Vec<&'static str>,
        parent: Option<u32>,
    }

    impl Serialize for Point {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("Point", 5)?;
            s.serialize_field("x", &self.x)?;
            s.serialize_field("y", &self.y)?;
            s.serialize_field("label", &self.label)?;
            s.serialize_field("tags", &self.tags)?;
            s.serialize_field("parent", &self.parent)?;
            s.end()
        }
    }

    fn point() -> Point {
        Point {
            x: 3,
            y: 1.5,
            label: "a \"quoted\"\nname".into(),
            tags: vec!["p", "q"],
            parent: None,
        }
    }

    #[test]
    fn compact_output() {
        assert_eq!(
            to_string(&point()).unwrap(),
            r#"{"x":3,"y":1.5,"label":"a \"quoted\"\nname","tags":["p","q"],"parent":null}"#
        );
    }

    #[test]
    fn pretty_output_indents() {
        let text = to_string_pretty(&point()).unwrap();
        assert!(text.starts_with("{\n  \"x\": 3,"));
        assert!(text.ends_with("\n}"));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("3.25").unwrap(), Value::Number(3.25));
        assert_eq!(from_str("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            from_str("\"a \\\"b\\\"\\n\"").unwrap().as_str(),
            Some("a \"b\"\n")
        );
        assert_eq!(from_str("\"\\u00e9\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"xs":[1,2.5,null],"ok":true,"name":"n"}"#).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert!(xs[2].is_null());
        assert_eq!(v.get("name").and_then(Value::as_str), Some("n"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn serializer_output_parses_back() {
        for text in [
            to_string(&point()).unwrap(),
            to_string_pretty(&point()).unwrap(),
        ] {
            let v = from_str(&text).unwrap();
            assert_eq!(v.get("x").and_then(Value::as_u64), Some(3));
            assert_eq!(v.get("y").and_then(Value::as_f64), Some(1.5));
            assert_eq!(
                v.get("label").and_then(Value::as_str),
                Some("a \"quoted\"\nname")
            );
            assert!(v.get("parent").unwrap().is_null());
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn integers_round_trip_exactly_up_to_2_53() {
        let n = (1u64 << 53) - 1;
        let v = from_str(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
        assert_eq!(from_str("1.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn integers_beyond_2_53_are_rejected_not_rounded() {
        // 2^53 + 1 rounds to 2^53 under f64; a silent round-trip would
        // corrupt exact counters, so parsing must fail instead.
        let above = (1u64 << 53) + 1;
        let err = from_str(&above.to_string()).unwrap_err();
        assert!(err.to_string().contains("2^53"), "{err}");
        assert!(from_str(&format!("-{above}")).is_err());
        // The boundary itself is exact and accepted.
        assert_eq!(
            from_str(&(1u64 << 53).to_string()).unwrap().as_u64(),
            Some(1u64 << 53)
        );
        // Floats keep their usual rounding semantics.
        assert!(from_str("9007199254740993.0").is_ok());
    }
}
