//! A minimal stand-in for `serde_json` built on the local `serde`
//! stand-in: serializes any `serde::Serialize` value to a JSON string
//! (compact or pretty). Deserialization is not provided.

use serde::{Serialize, SerializeSeq, SerializeStruct, Serializer};
use std::fmt;

/// Serialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON has no representation for
/// them).
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        indent: None,
        level: 0,
    })?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSerializer {
        out: &mut out,
        indent: Some("  "),
        level: 0,
    })?;
    Ok(out)
}

struct JsonSerializer<'a> {
    out: &'a mut String,
    indent: Option<&'static str>,
    level: usize,
}

impl JsonSerializer<'_> {
    fn newline(&mut self, level: usize) {
        if let Some(indent) = self.indent {
            self.out.push('\n');
            for _ in 0..level {
                self.out.push_str(indent);
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeStruct = JsonStruct<'a>;
    type SerializeSeq = JsonSeq<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if !v.is_finite() {
            return Err(Error(format!("non-finite float {v}")));
        }
        // `{}` on f64 prints the shortest digits that round-trip.
        let text = v.to_string();
        self.out.push_str(&text);
        // Keep JSON numbers recognizable as floats.
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            self.out.push_str(".0");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonStruct<'a>, Error> {
        self.out.push('{');
        Ok(JsonStruct {
            out: self.out,
            indent: self.indent,
            level: self.level,
            first: true,
        })
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeq {
            out: self.out,
            indent: self.indent,
            level: self.level,
            first: true,
        })
    }
}

/// In-progress JSON object.
pub struct JsonStruct<'a> {
    out: &'a mut String,
    indent: Option<&'static str>,
    level: usize,
    first: bool,
}

impl SerializeStruct for JsonStruct<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        }
        .newline(self.level + 1);
        write_escaped(self.out, key);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
        value.serialize(JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        })
    }

    fn end(self) -> Result<(), Error> {
        if !self.first {
            JsonSerializer {
                out: self.out,
                indent: self.indent,
                level: self.level,
            }
            .newline(self.level);
        }
        self.out.push('}');
        Ok(())
    }
}

/// In-progress JSON array.
pub struct JsonSeq<'a> {
    out: &'a mut String,
    indent: Option<&'static str>,
    level: usize,
    first: bool,
}

impl SerializeSeq for JsonSeq<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        }
        .newline(self.level + 1);
        value.serialize(JsonSerializer {
            out: self.out,
            indent: self.indent,
            level: self.level + 1,
        })
    }

    fn end(self) -> Result<(), Error> {
        if !self.first {
            JsonSerializer {
                out: self.out,
                indent: self.indent,
                level: self.level,
            }
            .newline(self.level);
        }
        self.out.push(']');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: usize,
        y: f64,
        label: String,
        tags: Vec<&'static str>,
        parent: Option<u32>,
    }

    impl Serialize for Point {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("Point", 5)?;
            s.serialize_field("x", &self.x)?;
            s.serialize_field("y", &self.y)?;
            s.serialize_field("label", &self.label)?;
            s.serialize_field("tags", &self.tags)?;
            s.serialize_field("parent", &self.parent)?;
            s.end()
        }
    }

    fn point() -> Point {
        Point {
            x: 3,
            y: 1.5,
            label: "a \"quoted\"\nname".into(),
            tags: vec!["p", "q"],
            parent: None,
        }
    }

    #[test]
    fn compact_output() {
        assert_eq!(
            to_string(&point()).unwrap(),
            r#"{"x":3,"y":1.5,"label":"a \"quoted\"\nname","tags":["p","q"],"parent":null}"#
        );
    }

    #[test]
    fn pretty_output_indents() {
        let text = to_string_pretty(&point()).unwrap();
        assert!(text.starts_with("{\n  \"x\": 3,"));
        assert!(text.ends_with("\n}"));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
    }
}
