//! A minimal, dependency-free stand-in for `criterion`, used because this
//! build environment has no network access to crates.io. Benchmarks run
//! `sample_size` timed iterations after a short warm-up and print
//! mean/min/max wall times — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
            name,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    println!(
        "{label:<50} mean {mean:>10.3?}   min {min:>10.3?}   max {max:>10.3?}   ({} samples)",
        samples.len()
    );
}

/// Times closures inside one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up, then `sample_size` timed runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Opaque value barrier preventing the optimizer from deleting the work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            });
        });
        group.finish();
        assert_eq!(runs, 6, "one warm-up plus five samples");
    }
}
