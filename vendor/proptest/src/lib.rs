//! A minimal, dependency-free stand-in for `proptest`, used because this
//! build environment has no network access to crates.io. It implements the
//! subset of the API the workspace's property tests use — the `proptest!`
//! macro, range/tuple/vec/sample strategies, `prop_filter`, `prop_map`,
//! `any`, and the `prop_assert*` macros — as straightforward randomized
//! testing **without shrinking**: a failing case panics with the values
//! that produced it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Test-runner configuration and errors.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Keeps only values satisfying `pred` (resampling; panics after a
    /// large number of consecutive rejections).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String patterns act as crude generators of printable strings: the only
/// regex feature honored is a trailing `{lo,hi}` length range (the real
/// proptest compiles the full regex — far more than the tests here need).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_length_suffix(self).unwrap_or((0, 32));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Mostly ASCII printable, occasionally multibyte.
                if rng.gen_bool(0.9) {
                    char::from(rng.gen_range(0x20u8..0x7F))
                } else {
                    char::from_u32(rng.gen_range(0xA1u32..0x2FFF)).unwrap_or('§')
                }
            })
            .collect()
    }
}

fn parse_length_suffix(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let inner = pattern[open + 1..].strip_suffix('}')?;
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for any [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value lists.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::seq::SliceRandom;
    use std::fmt;

    /// See [`select`].
    #[derive(Debug)]
    pub struct Select<T>(Vec<T>);

    /// One uniformly chosen element of `values`.
    pub fn select<T: Clone + fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from an empty list");
        Select(values)
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.choose(rng).unwrap().clone()
        }
    }

    /// See [`subsequence`].
    #[derive(Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        amount: usize,
    }

    /// `amount` distinct elements of `values`, in their original order.
    pub fn subsequence<T: Clone + fmt::Debug>(values: Vec<T>, amount: usize) -> Subsequence<T> {
        assert!(
            amount <= values.len(),
            "subsequence of {amount} from {} values",
            values.len()
        );
        Subsequence { values, amount }
    }

    impl<T: Clone + fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let mut indices: Vec<usize> = (0..self.values.len()).collect();
            indices.shuffle(rng);
            let mut picked = indices[..self.amount].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// A deferred collection index, as in proptest's `sample::Index`:
    /// drawn with `any::<Index>()` and resolved against a concrete
    /// length with [`Index::index`], so one strategy works for
    /// collections whose size is only known inside the test body.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves to a valid index into a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Index {
            use rand::Rng as _;
            Index(rng.gen_range(0u64..u64::MAX))
        }
    }
}

/// Seeds each property's RNG from its name, so runs are reproducible.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = ($strat).generate(&mut rng);)*
                let inputs = format!(
                    concat!($("\n    ", stringify!($arg), " = {:?}",)*),
                    $(&$arg),*
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = result {
                    panic!("proptest case {case} failed: {e}\n  inputs:{inputs}");
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {l:?}",
                format!($($fmt)*),
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn filter_and_ranges_compose() {
        let s = (0u8..10, 0usize..5).prop_filter("distinct", |(a, b)| *a as usize != *b);
        let mut rng = crate::rng_for("filter_and_ranges_compose");
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 10 && b < 5 && a as usize != b);
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let s = crate::sample::subsequence((0..10).collect::<Vec<_>>(), 4);
        let mut rng = crate::rng_for("subsequence_preserves_order");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn string_pattern_respects_length_range() {
        let s = "\\PC{0,200}";
        let mut rng = crate::rng_for("string_pattern_respects_length_range");
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_cases(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assume!(flip);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn index_resolves_in_bounds(idx in any::<crate::sample::Index>(), len in 1usize..40) {
            prop_assert!(idx.index(len) < len);
            // Resolution is stable for one drawn Index.
            prop_assert_eq!(idx.index(len), idx.index(len));
        }
    }
}
