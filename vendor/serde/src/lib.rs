//! A minimal, dependency-free stand-in for `serde`'s serialization half,
//! used because this build environment has no network access to crates.io.
//! It mirrors the real trait shapes (`Serialize`, `Serializer`,
//! `SerializeStruct`, `SerializeSeq`) so hand-written `impl Serialize`
//! blocks compile unchanged against the real crate if it is ever swapped
//! in; `#[derive(Serialize)]` is not available (no proc macros offline),
//! so impls are written by hand.

/// A type that can describe itself to a [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend (the subset of the real serde `Serializer`).
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit variant of an enum (rendered as its name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

/// Emits the fields of a struct.
pub trait SerializeStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;

    /// Emits one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Emits the elements of a sequence.
pub trait SerializeSeq {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;

    /// Emits one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Mirror of serde's `ser` module path for the traits above.
pub mod ser {
    pub use crate::{Serialize, SerializeSeq, SerializeStruct, Serializer};
}

macro_rules! serialize_int {
    ($($t:ty => $method:ident as $wide:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $wide)
            }
        }
    )*};
}

serialize_int!(
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(self.as_secs_f64())
    }
}
