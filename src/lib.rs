//! # orchestrated-trios — a Rust reproduction of *Orchestrated Trios*
//! (ASPLOS 2021)
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | circuit IR: gates, instructions, circuits |
//! | [`topology`] | coupling graphs and path algorithms |
//! | [`passes`] | Toffoli decompositions, lowering, optimizations |
//! | [`route`] | layouts, the baseline pair router, the Trios trio router |
//! | [`schedule`] | ASAP scheduling and duration models |
//! | [`noise`] | Johannesburg calibration and the §2.6 success model |
//! | [`sim`] | statevector simulator and equivalence checking |
//! | [`benchmarks`] | the Table 1 benchmark generators (+ extended suite) |
//! | [`gen`] | seeded structured-circuit families for fuzzing |
//! | [`core`] | the end-to-end baseline and Trios pipelines (+ fuzz harness) |
//! | [`qasm`] | OpenQASM 2.0 emitter and parser |
//!
//! # Quick start
//!
//! ```
//! use orchestrated_trios::core::{Compiler, PaperConfig};
//! use orchestrated_trios::ir::Circuit;
//! use orchestrated_trios::topology::johannesburg;
//!
//! // A program with one Toffoli between distant qubits.
//! let mut program = Circuit::new(3);
//! program.ccx(0, 1, 2);
//!
//! let device = johannesburg();
//! let compiler = Compiler::builder().config(PaperConfig::Trios).build();
//! let (compiled, report) = compiler.compile_with_report(&program, &device)?;
//! println!(
//!     "{} two-qubit gates, {} SWAPs inserted",
//!     compiled.stats.two_qubit_gates, compiled.stats.swap_count
//! );
//! println!("{report}"); // per-pass wall times and gate-count deltas
//! # Ok::<(), orchestrated_trios::core::Diagnostic>(())
//! ```

#![warn(missing_docs)]

pub use trios_benchmarks as benchmarks;
pub use trios_core as core;
pub use trios_gen as gen;
pub use trios_ir as ir;
pub use trios_noise as noise;
pub use trios_passes as passes;
pub use trios_qasm as qasm;
pub use trios_route as route;
pub use trios_schedule as schedule;
pub use trios_sim as sim;
pub use trios_topology as topology;
