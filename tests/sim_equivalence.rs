//! Simulator-backed correctness: compiled output must implement the
//! original program, verified by statevector replay through the
//! initial/final layouts (`trios_sim::compiled_equivalent`).
//!
//! The fast tests keep the physical register small (device width = circuit
//! width) so they run in debug builds; the `#[ignore]`d tests widen to the
//! paper's 20-qubit Johannesburg device and the full Table 1 suite, and
//! run in the release `--include-ignored` CI job.

use orchestrated_trios::benchmarks::{self, Benchmark, ExtendedBenchmark};
use orchestrated_trios::core::{Compiler, PaperConfig};
use orchestrated_trios::ir::Circuit;
use orchestrated_trios::sim::compiled_equivalent;
use orchestrated_trios::topology::{grid, johannesburg, line, ring, Topology};

const EPS: f64 = 1e-7;

/// Compiles `circuit` for `device` under `config` and asserts the output
/// implements the original program.
fn assert_equivalent(circuit: &Circuit, device: &Topology, config: PaperConfig, trials: usize) {
    let compiler = Compiler::builder().seed(7).config(config).build();
    let compiled = compiler
        .compile(circuit, device)
        .unwrap_or_else(|e| panic!("{} failed to compile on {device}: {e}", circuit.name()));
    let ok = compiled_equivalent(
        circuit,
        &compiled.circuit,
        &compiled.initial_layout.to_mapping(),
        &compiled.final_layout.to_mapping(),
        trials,
        13,
        EPS,
    )
    .unwrap_or_else(|e| panic!("simulating {} on {device}: {e}", circuit.name()));
    assert!(
        ok,
        "{} compiled on {device} ({config:?}) does not implement the program",
        circuit.name()
    );
}

/// The suite circuits that fit a dense simulation comfortably in debug
/// builds (≤ 8 qubits).
fn small_suite() -> Vec<Circuit> {
    Benchmark::ALL
        .into_iter()
        .map(|b| b.build())
        .chain(ExtendedBenchmark::ALL.into_iter().map(|b| b.build()))
        .filter(|c| c.num_qubits() <= 8)
        .collect()
}

#[test]
fn small_suite_circuits_compile_equivalently() {
    let circuits = small_suite();
    assert!(
        !circuits.is_empty(),
        "suite should contain sub-8-qubit circuits"
    );
    for circuit in &circuits {
        let n = circuit.num_qubits().max(2);
        for config in [PaperConfig::Trios, PaperConfig::QiskitBaseline] {
            // Tightest possible register: device width = circuit width.
            assert_equivalent(circuit, &line(n), config, 2);
        }
        // And one roomier device, so ancilla physical qubits are exercised.
        assert_equivalent(
            circuit,
            &grid(3, 3.max(n.div_ceil(3))),
            PaperConfig::Trios,
            2,
        );
    }
}

#[test]
fn small_parametric_instances_compile_equivalently() {
    // Sub-8-qubit instances from every generator family, so coverage does
    // not hinge on which named sizes happen to be in the suite.
    let circuits = vec![
        benchmarks::cuccaro_adder(2),
        benchmarks::takahashi_adder(3),
        benchmarks::qft_adder(3),
        benchmarks::qft(5),
        benchmarks::grovers(3, 5),
        benchmarks::incrementer_borrowedbit(4, 2),
        benchmarks::bernstein_vazirani(6, 0b10110),
        benchmarks::qaoa_complete(5, 0.4, 1.1),
        benchmarks::toffoli_chain(6, 2),
        benchmarks::fredkin_network(7),
        benchmarks::hypergraph_state(6, 8, 11),
        benchmarks::random_nisq(7, 40, 3),
    ];
    for circuit in &circuits {
        let n = circuit.num_qubits().max(2);
        assert!(n <= 8, "{} too wide for the fast suite", circuit.name());
        assert_equivalent(circuit, &line(n), PaperConfig::Trios, 2);
        assert_equivalent(circuit, &ring(n.max(3)), PaperConfig::TriosEight, 1);
    }
}

#[test]
#[ignore = "dense 2^16..2^20 simulations: run in the release --include-ignored CI job"]
fn full_suite_compiles_equivalently_on_compact_devices() {
    // Every suite circuit up to 16 qubits, on a device of its own width.
    let circuits: Vec<Circuit> = Benchmark::ALL
        .into_iter()
        .map(|b| b.build())
        .chain(ExtendedBenchmark::ALL.into_iter().map(|b| b.build()))
        .filter(|c| c.num_qubits() <= 16)
        .collect();
    for circuit in &circuits {
        assert_equivalent(circuit, &line(circuit.num_qubits()), PaperConfig::Trios, 1);
    }
    // One full-width (20-qubit, 2^20 amplitudes) circuit: Bernstein-
    // Vazirani is shallow enough to finish quickly in release.
    let bv = Benchmark::Bv20.build();
    assert_equivalent(&bv, &line(bv.num_qubits()), PaperConfig::Trios, 1);
}

#[test]
#[ignore = "dense 2^20 simulations: run in the release --include-ignored CI job"]
fn johannesburg_compilations_are_equivalent() {
    // The paper's actual device: every circuit verifies inside the full
    // 20-qubit physical register, ancillas and all.
    let jo = johannesburg();
    for circuit in [
        Benchmark::CnxInplace4.build(),
        Benchmark::IncrementerBorrowedbit5.build(),
        ExtendedBenchmark::HypergraphState12.build(),
    ] {
        for config in [PaperConfig::Trios, PaperConfig::QiskitEight] {
            assert_equivalent(&circuit, &jo, config, 1);
        }
    }
}
