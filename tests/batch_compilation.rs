//! Batch compilation: `Compiler::compile_batch` must be a pure
//! throughput optimization — byte-identical outputs to sequential
//! `compile()` calls with the same seeds, across devices.

use orchestrated_trios::benchmarks::Benchmark;
use orchestrated_trios::core::{compile, Compiler, Diagnostic, PaperConfig};
use orchestrated_trios::ir::Circuit;
use orchestrated_trios::topology::PaperDevice;

fn workload() -> Vec<Circuit> {
    let mut circuits = vec![
        Benchmark::CnxInplace4.build(),
        Benchmark::IncrementerBorrowedbit5.build(),
        Benchmark::Grovers9.build(),
    ];
    let mut toffoli = Circuit::new(3);
    toffoli.ccx(0, 1, 2);
    circuits.push(toffoli);
    circuits
}

#[test]
fn batch_matches_sequential_compiles_across_devices() {
    let circuits = workload();
    // At least two paper topologies, per the acceptance criteria; run all
    // five — batching must be device-agnostic.
    for device in PaperDevice::ALL {
        let topo = device.build();
        for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
            let compiler = Compiler::builder().seed(3).config(config).build();
            let batched = compiler.compile_batch(&circuits, &topo).unwrap();
            assert_eq!(batched.len(), circuits.len());
            for (i, circuit) in circuits.iter().enumerate() {
                let sequential = compiler.compile(circuit, &topo).unwrap();
                assert_eq!(
                    batched[i], sequential,
                    "circuit {i} diverged on {device:?} ({config:?})"
                );
                // The legacy shim agrees too.
                let legacy = compile(circuit, &topo, compiler.options()).unwrap();
                assert_eq!(batched[i], legacy, "legacy shim diverged");
            }
        }
    }
}

#[test]
fn batch_reports_match_single_reports() {
    let circuits = workload();
    let topo = PaperDevice::Johannesburg.build();
    let compiler = Compiler::builder().seed(8).build();
    let batched = compiler
        .compile_batch_with_reports(&circuits, &topo)
        .unwrap();
    for (i, circuit) in circuits.iter().enumerate() {
        let (program, report) = compiler.compile_with_report(circuit, &topo).unwrap();
        assert_eq!(batched[i].0, program);
        // Wall times differ run to run; pass structure and deltas do not.
        assert_eq!(
            batched[i].1.pass_names().collect::<Vec<_>>(),
            report.pass_names().collect::<Vec<_>>()
        );
        for (a, b) in batched[i].1.passes.iter().zip(&report.passes) {
            assert_eq!(
                a.gates_before, b.gates_before,
                "circuit {i}, pass {}",
                a.pass
            );
            assert_eq!(a.gates_after, b.gates_after, "circuit {i}, pass {}", a.pass);
        }
        assert_eq!(batched[i].1.stats, report.stats);
    }
}

#[test]
fn batch_is_empty_safe_and_order_preserving() {
    let topo = PaperDevice::Grid.build();
    let compiler = Compiler::default();
    assert!(compiler.compile_batch(&[], &topo).unwrap().is_empty());

    // Mixed widths keep their order.
    let mut small = Circuit::new(2);
    small.cx(0, 1);
    let mut large = Circuit::new(6);
    large.ccx(0, 2, 4);
    let out = compiler
        .compile_batch(&[small.clone(), large.clone()], &topo)
        .unwrap();
    assert_eq!(out[0], compiler.compile(&small, &topo).unwrap());
    assert_eq!(out[1], compiler.compile(&large, &topo).unwrap());
}

#[test]
fn batch_surfaces_failing_circuit_index() {
    let topo = PaperDevice::Line.build();
    let compiler = Compiler::default();
    let ok = Circuit::new(3);
    let too_wide = Circuit::new(64);
    let err = compiler
        .compile_batch(&[ok.clone(), ok, too_wide], &topo)
        .unwrap_err();
    assert_eq!(err.index, 2);
    assert!(matches!(err.diagnostic, Diagnostic::Routing { .. }));
}
