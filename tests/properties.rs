//! Property-based tests: random Toffoli-level programs on random devices
//! must compile to legal, semantics-preserving circuits under both
//! pipelines, for every decomposition strategy, with and without the
//! lookahead router and the commutation-aware optimizer — and their
//! compiled outputs must survive an OpenQASM round trip.

use proptest::prelude::*;
use trios_core::{
    CachedCompilation, CompilationCache, CompileOptions, CompileReport, CompileStats,
    CompiledProgram, Compiler, DirectionPolicy, Pipeline, ShardedCache,
};
use trios_ir::{Circuit, Instruction};
use trios_route::{check_legal, Layout, LookaheadConfig, ToffoliPolicy};
use trios_sim::compiled_equivalent;
use trios_topology::{clusters, grid, johannesburg, line, ring, Topology};

/// A random gate on up to `n` qubits, biased toward the gates the paper's
/// programs use; kinds 5–7 are the three-qubit set (`ccx`, `ccz`, `cswap`).
fn arb_gate(n: usize) -> impl Strategy<Value = (u8, usize, usize, usize)> {
    (0u8..8, 0..n, 0..n, 0..n).prop_filter("distinct operands", |(kind, a, b, c)| match kind {
        0 | 1 => true,                   // 1q gates
        2..=4 => a != b,                 // 2q gates
        _ => a != b && b != c && a != c, // 3q gates
    })
}

fn build_circuit(n: usize, gates: &[(u8, usize, usize, usize)]) -> Circuit {
    let mut circuit = Circuit::new(n);
    for &(kind, a, b, c) in gates {
        match kind {
            0 => {
                circuit.h(a);
            }
            1 => {
                circuit.t(a);
            }
            2 => {
                circuit.cx(a, b);
            }
            3 => {
                circuit.cz(a, b);
            }
            4 => {
                circuit.cp(0.37, a, b);
            }
            5 => {
                circuit.ccx(a, b, c);
            }
            6 => {
                circuit.ccz(a, b, c);
            }
            _ => {
                circuit.cswap(a, b, c);
            }
        }
    }
    circuit
}

fn device(choice: u8) -> Topology {
    match choice % 5 {
        0 => line(8),
        1 => ring(8),
        2 => grid(4, 2),
        3 => clusters(2, 4),
        _ => johannesburg(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_programs_are_legal_and_equivalent(
        gates in proptest::collection::vec(arb_gate(6), 1..14),
        device_choice in 0u8..5,
        seed in 0u64..1000,
        pipeline_is_trios in any::<bool>(),
        lookahead in any::<bool>(),
        optimize_full in any::<bool>(),
        bridge in any::<bool>(),
    ) {
        let circuit = build_circuit(6, &gates);
        let topo = device(device_choice);
        let options = CompileOptions {
            pipeline: if pipeline_is_trios { Pipeline::Trios } else { Pipeline::Baseline },
            seed,
            lookahead: lookahead.then(LookaheadConfig::default),
            bridge,
            optimize: if optimize_full {
                trios_passes::OptimizeOptions::full()
            } else {
                trios_passes::OptimizeOptions::default()
            },
            ..CompileOptions::default()
        };
        let compiled = Compiler::new(options).compile(&circuit, &topo).unwrap();

        // Legality: hardware gate set, every 2q gate on a coupling edge.
        prop_assert!(compiled.circuit.is_hardware_lowered());
        prop_assert!(check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok());

        // Layout sanity: bijective mappings of the right shape.
        let init = compiled.initial_layout.to_mapping();
        let fin = compiled.final_layout.to_mapping();
        prop_assert_eq!(init.len(), 6);
        prop_assert_eq!(fin.len(), 6);

        // Semantics: the physical circuit implements the logical program.
        let ok = compiled_equivalent(
            &circuit,
            &compiled.circuit,
            &init,
            &fin,
            1,
            seed,
            1e-7,
        ).unwrap();
        prop_assert!(ok, "semantics broken");
    }

    #[test]
    fn all_toffoli_strategies_preserve_semantics(
        placements in proptest::collection::vec(0usize..8, 3..6),
        strategy_choice in 0u8..5,
    ) {
        // A chain of Toffolis over shifting operand windows.
        let mut circuit = Circuit::new(8);
        for w in placements.windows(3) {
            if w[0] != w[1] && w[1] != w[2] && w[0] != w[2] {
                circuit.ccx(w[0], w[1], w[2]);
            }
        }
        if circuit.is_empty() {
            circuit.ccx(0, 1, 2);
        }
        let strategy = ["six", "eight", "standard", "tdepth", "relative-phase"]
            [strategy_choice as usize];
        let topo = johannesburg();
        let options = CompileOptions {
            pipeline: Pipeline::Trios,
            decomposer: Some(strategy.into()),
            direction: DirectionPolicy::MoveFirst,
            ..CompileOptions::default()
        };
        let compiled = Compiler::new(options).compile(&circuit, &topo).unwrap();
        prop_assert!(check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok());
        let ok = compiled_equivalent(
            &circuit,
            &compiled.circuit,
            &compiled.initial_layout.to_mapping(),
            &compiled.final_layout.to_mapping(),
            1,
            5,
            1e-7,
        ).unwrap();
        prop_assert!(ok, "strategy {:?} broke semantics", strategy);
    }

    #[test]
    fn compiled_output_round_trips_through_qasm(
        gates in proptest::collection::vec(arb_gate(5), 1..10),
        seed in 0u64..100,
    ) {
        let circuit = build_circuit(5, &gates);
        let topo = grid(3, 2);
        let compiled = Compiler::builder().seed(seed).build().compile(&circuit, &topo).unwrap();
        let text = trios_qasm::emit(&compiled.circuit);
        let back = trios_qasm::parse(&text).unwrap();
        prop_assert_eq!(back.num_qubits(), compiled.circuit.num_qubits());
        prop_assert_eq!(back.instructions(), compiled.circuit.instructions());
    }

    #[test]
    fn layout_round_trips_through_mapping(
        slots in proptest::collection::vec(0usize..16, 1..12),
    ) {
        // Dedup to an injective assignment of however many qubits survive.
        let mut mapping = Vec::new();
        for p in slots {
            if !mapping.contains(&p) {
                mapping.push(p);
            }
        }
        let layout = Layout::from_mapping(&mapping, 16).unwrap();
        // to_mapping is the exact inverse of from_mapping …
        prop_assert_eq!(layout.to_mapping(), mapping.clone());
        // … and re-importing the exported mapping reproduces the layout.
        let again = Layout::from_mapping(&layout.to_mapping(), 16).unwrap();
        prop_assert_eq!(again, layout.clone());
        // Accessors agree with the mapping in both directions.
        for (l, &p) in mapping.iter().enumerate() {
            prop_assert_eq!(layout.physical(l), p);
            prop_assert_eq!(layout.logical(p), Some(l));
        }
    }

    #[test]
    fn layout_stays_bijective_under_random_swaps(
        slots in proptest::collection::vec(0usize..10, 1..8),
        swaps in proptest::collection::vec((0usize..10, 0usize..10), 0..40),
    ) {
        let mut mapping = Vec::new();
        for p in slots {
            if !mapping.contains(&p) {
                mapping.push(p);
            }
        }
        let n_logical = mapping.len();
        let mut layout = Layout::from_mapping(&mapping, 10).unwrap();
        for (a, b) in swaps {
            layout.swap_physical(a, b);
            // Bijectivity survives every swap (this also exercises the
            // debug_assert invariants inside swap_physical): each logical
            // qubit has a unique home and the inverse map agrees.
            let mut seen = [false; 10];
            for l in 0..n_logical {
                let p = layout.physical(l);
                prop_assert!(!seen[p], "physical {} assigned twice", p);
                seen[p] = true;
                prop_assert_eq!(layout.logical(p), Some(l));
            }
            // And the export/import round trip still holds mid-walk.
            let again = Layout::from_mapping(&layout.to_mapping(), 10).unwrap();
            prop_assert_eq!(again, layout.clone());
        }
    }

    #[test]
    fn structural_hash_is_stable_on_clones_and_rebuilds(
        gates in proptest::collection::vec(arb_gate(6), 1..20),
    ) {
        let circuit = build_circuit(6, &gates);
        // Clone: trivially equal structure.
        prop_assert_eq!(circuit.structural_hash(), circuit.clone().structural_hash());
        // Semantically identical rebuild: same instruction stream pushed
        // through a fresh builder, under a different name.
        let mut rebuilt = Circuit::with_name(6, "rebuilt-under-another-name");
        for &(kind, a, b, c) in &gates {
            let one = build_circuit(6, &[(kind, a, b, c)]);
            rebuilt.append(&one);
        }
        prop_assert_eq!(circuit.structural_hash(), rebuilt.structural_hash());
        // And via from_instructions (the deserialization path).
        let again = Circuit::from_instructions(6, circuit.instructions().to_vec()).unwrap();
        prop_assert_eq!(circuit.structural_hash(), again.structural_hash());
    }

    #[test]
    fn structural_hash_changes_when_gate_order_or_operands_change(
        gates in proptest::collection::vec(arb_gate(6), 2..16),
        swap_at in any::<proptest::sample::Index>(),
    ) {
        let circuit = build_circuit(6, &gates);
        let original = circuit.structural_hash();

        // Swapping two adjacent distinct instructions changes the hash.
        let i = swap_at.index(gates.len() - 1);
        let mut instructions: Vec<Instruction> = circuit.instructions().to_vec();
        instructions.swap(i, i + 1);
        if instructions != circuit.instructions() {
            let reordered = Circuit::from_instructions(6, instructions).unwrap();
            prop_assert_ne!(original, reordered.structural_hash(), "order must be hashed");
        }

        // Rotating every operand label (same width, no fixed points)
        // changes the hash: operands are part of the structure, and no
        // instruction can equal its relabeled self.
        let rotated = circuit.remapped(6, &[1, 2, 3, 4, 5, 0]).unwrap();
        prop_assert_ne!(original, rotated.structural_hash(), "operands must be hashed");
    }

    #[test]
    fn direction_policies_insert_minimal_swaps_for_single_pair(
        a in 0usize..20,
        b in 0usize..20,
        policy_choice in 0u8..4,
    ) {
        prop_assume!(a != b);
        let mut circuit = Circuit::new(20);
        circuit.cx(a, b);
        let topo = johannesburg();
        let policy = match policy_choice {
            0 => DirectionPolicy::MoveFirst,
            1 => DirectionPolicy::MoveSecond,
            2 => DirectionPolicy::Stochastic,
            _ => DirectionPolicy::MeetInMiddle,
        };
        let options = CompileOptions {
            pipeline: Pipeline::Baseline,
            direction: policy,
            optimize: trios_passes::OptimizeOptions::none(),
            ..CompileOptions::default()
        };
        let compiled = Compiler::new(options).compile(&circuit, &topo).unwrap();
        // A single CX at distance d needs exactly d−1 SWAPs under every policy.
        let d = topo.distance(a, b).unwrap();
        prop_assert_eq!(compiled.stats.swap_count, d - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sparse backend is a drop-in for the dense one wherever both
    /// apply: on random clifford-t/layered-style programs up to 16
    /// qubits, the full statevectors agree amplitude-for-amplitude and
    /// the two backends return identical equivalence verdicts — for
    /// pairs that are equivalent and pairs that provably are not.
    #[test]
    fn sparse_and_dense_backends_agree_up_to_16_qubits(
        n in 4usize..17,
        raw_gates in proptest::collection::vec(arb_gate(16), 1..20),
        tamper in 0u8..2,
        seed in 0u64..100,
    ) {
        use trios_sim::{DenseSimulator, Simulator, SparseSimulator, SparseState, State};

        // Fold the 16-qubit operand stream onto `n` qubits, dropping
        // gates whose operands collide after the fold.
        let gates: Vec<_> = raw_gates
            .into_iter()
            .map(|(kind, a, b, c)| (kind, a % n, b % n, c % n))
            .filter(|&(kind, a, b, c)| match kind {
                0 | 1 => true,
                2..=4 => a != b,
                _ => a != b && b != c && a != c,
            })
            .collect();
        let circuit = build_circuit(n, &gates);

        // Statevector agreement on |0…0⟩.
        let mut sparse = SparseState::zero(n).unwrap();
        sparse.apply_circuit(&circuit).unwrap();
        let mut dense = State::zero(n).unwrap();
        dense.apply_circuit(&circuit).unwrap();
        for (i, (s, d)) in sparse
            .dense_amplitudes()
            .unwrap()
            .iter()
            .zip(dense.amplitudes())
            .enumerate()
        {
            prop_assert!(
                (*s - *d).norm_sqr() <= 1e-18,
                "amplitude {i}: sparse {s:?} vs dense {d:?}"
            );
        }

        // Verdict agreement, on an equivalent pair (CZ = H·CX·H rewrite
        // of itself) and on a tampered pair (an extra X is never a
        // global phase).
        let mut other = build_circuit(n, &gates);
        other.h(0).cz(0, 1).h(1).cx(0, 1).h(1).h(0);
        if tamper == 1 {
            other.x(n - 1);
        }
        let d = DenseSimulator::default();
        let s = SparseSimulator::default();
        let dense_verdict = d.circuits_equivalent(&circuit, &other, 2, seed).unwrap();
        let sparse_verdict = s.circuits_equivalent(&circuit, &other, 2, seed).unwrap();
        // Verdicts must match, and the CZ rewrite is equivalent iff untampered.
        prop_assert_eq!(dense_verdict, sparse_verdict);
        prop_assert_eq!(dense_verdict, tamper == 0);
    }

    /// Blowing the nonzero-amplitude budget is a structured
    /// [`SimError::StateTooDense`], never a wrong verdict: a Hadamard
    /// ladder on `n` qubits needs 2ⁿ terms, so any budget below that
    /// must surface the error from both the raw state and the
    /// equivalence entry points.
    #[test]
    fn sparse_budget_blowup_is_an_error_not_a_verdict(
        n in 8usize..15,
        budget in 2usize..64,
    ) {
        use trios_sim::{SimError, Simulator, SparseSimulator, SparseState};

        let mut ladder = Circuit::new(n);
        for q in 0..n {
            ladder.h(q);
        }
        let mut state = SparseState::zero(n).unwrap().with_max_terms(budget);
        match state.apply_circuit(&ladder) {
            Err(SimError::StateTooDense { terms, max_terms }) => {
                prop_assert_eq!(max_terms, budget);
                prop_assert!(terms > budget);
            }
            other => prop_assert!(false, "expected StateTooDense, got {:?}", other),
        }

        let sim = SparseSimulator::with_max_terms(budget);
        let verdict = sim.circuits_equivalent(&ladder, &ladder, 1, 7);
        prop_assert!(
            matches!(verdict, Err(SimError::StateTooDense { .. })),
            "equivalence must refuse, not guess: {:?}",
            verdict
        );
    }
}

/// A distinguishable cached value: `tag` H gates, so two entries with
/// different tags compare unequal through the cache.
fn tagged_entry(tag: usize) -> CachedCompilation {
    let mut circuit = Circuit::new(2);
    for _ in 0..tag {
        circuit.h(0);
    }
    let program = CompiledProgram {
        circuit,
        initial_layout: Layout::trivial(2, 2),
        final_layout: Layout::trivial(2, 2),
        stats: CompileStats::default(),
    };
    (
        program,
        CompileReport::new(Vec::new(), CompileStats::default()),
    )
}

fn tag_of(entry: &CachedCompilation) -> usize {
    entry.0.circuit.instructions().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a single shard, [`ShardedCache`] is observationally identical
    /// to a flat [`CompilationCache`] of the same capacity: every
    /// interleaving of inserts and lookups returns the same values and
    /// leaves the same counters, so sharding is purely a contention
    /// optimization, never a semantic change (LRU order included — the
    /// key range deliberately exceeds the capacity range to force
    /// evictions).
    #[test]
    fn single_shard_cache_matches_the_flat_cache(
        capacity in 0usize..6,
        ops in proptest::collection::vec((any::<bool>(), 0u64..16, 1usize..8), 0..60),
    ) {
        let sharded = ShardedCache::new(1, capacity);
        let flat = CompilationCache::new(capacity);
        for &(is_insert, key, tag) in &ops {
            if is_insert {
                sharded.insert(key, tagged_entry(tag));
                flat.insert(key, tagged_entry(tag));
            } else {
                let a = sharded.get(key).as_ref().map(tag_of);
                let b = flat.get(key).as_ref().map(tag_of);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(sharded.stats(), flat.stats());
            prop_assert_eq!(sharded.len(), flat.len());
        }
    }

    /// Shard routing is a pure function of the key: stable across calls,
    /// across instances, and under arbitrary cache mutation — only the
    /// shard count matters. (Inserts landing where later lookups route is
    /// what makes the per-shard counters in `serve` stats trustworthy.)
    #[test]
    fn shard_routing_is_a_pure_function_of_the_key(
        shards in 1usize..16,
        keys in proptest::collection::vec(any::<u64>(), 1..40),
        tag in 1usize..4,
    ) {
        let a = ShardedCache::new(shards, 2);
        let b = ShardedCache::new(shards, 2);
        let routed: Vec<usize> = keys.iter().map(|&k| a.shard_of(k)).collect();
        for (&key, &shard) in keys.iter().zip(&routed) {
            prop_assert!(shard < a.num_shards());
            prop_assert_eq!(shard, b.shard_of(key));
            // Mutate both caches between observations …
            a.insert(key, tagged_entry(tag));
            let _ = b.get(key);
        }
        // … and every key still routes exactly where it did before.
        for (&key, &shard) in keys.iter().zip(&routed) {
            prop_assert_eq!(a.shard_of(key), shard);
            prop_assert_eq!(b.shard_of(key), shard);
        }
    }
}

/// Generated circuits with distinct seeds must never false-hit the
/// compilation cache: every random-family case gets its own key, and a
/// warm batch over the full set replays each case's own result.
#[test]
fn generated_circuits_with_distinct_seeds_never_false_hit_the_cache() {
    use orchestrated_trios::gen::Family;

    let topo = line(8);
    let options = CompileOptions::default();
    let mut keys = std::collections::HashSet::new();
    let mut circuits = Vec::new();
    for family in [Family::Layered, Family::CliffordT, Family::Qaoa] {
        for seed in 0..24 {
            let case = family.generate_case(seed);
            assert!(
                keys.insert(CompilationCache::key(&case.circuit, &topo, &options)),
                "{} seed {seed} collided with an earlier case",
                family.name()
            );
            if case.circuit.num_qubits() <= topo.num_qubits() {
                circuits.push(case.circuit);
            }
        }
    }

    // Cold batch fills the cache; a warm rerun must hit every job and
    // return exactly the cold results (a false hit would splice another
    // case's program in).
    let compiler = Compiler::new(options);
    let cache = CompilationCache::new(circuits.len());
    let cold = compiler
        .compile_batch_parallel_with_cache(&circuits, &topo, 4, Some(&cache))
        .unwrap();
    assert_eq!(cold.report.cache_hits, 0, "distinct cases must all miss");
    let warm = compiler
        .compile_batch_parallel_with_cache(&circuits, &topo, 4, Some(&cache))
        .unwrap();
    assert_eq!(warm.report.cache_hits as usize, circuits.len());
    assert_eq!(warm.results, cold.results);
}

/// The nested-`Vec` per-source BFS the flat row-major distance matrix
/// replaced, reimplemented verbatim as the reference.
fn nested_bfs_distances(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut dist = vec![vec![u32::MAX; n]; n];
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if row[v] == u32::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every member of the heavy-hex family — not just the published
    // 127/433/1121 sizes — is connected, triangle-free, degree ≤ 3, and
    // has exactly 10c² + 12c + 1 qubits.
    #[test]
    fn heavy_hex_family_invariants(c in 1usize..11) {
        let d = 2 * c + 1;
        let topo = trios_topology::heavy_hex(d);
        prop_assert_eq!(topo.num_qubits(), 10 * c * c + 12 * c + 1);
        prop_assert_eq!(topo.num_qubits(), trios_topology::heavy_hex_qubits(d));
        prop_assert!(topo.is_connected());
        prop_assert!(!topo.has_triangle());
        for q in 0..topo.num_qubits() {
            prop_assert!(topo.degree(q) <= 3, "qubit {} has degree {}", q, topo.degree(q));
        }
        // And the spec grammar round-trips the family.
        let respecced = trios_topology::parse_spec(
            &format!("heavy-hex:{}", topo.num_qubits()),
        ).unwrap();
        prop_assert_eq!(respecced.num_qubits(), topo.num_qubits());
    }

    // The flat row-major distance matrix answers exactly what the old
    // nested per-source BFS answered, on arbitrary (possibly
    // disconnected) graphs.
    #[test]
    fn flat_distance_matrix_matches_nested_bfs(
        n in 2usize..24,
        raw_edges in proptest::collection::vec((0usize..24, 0usize..24), 0..60),
    ) {
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .collect();
        let topo = Topology::from_edges("random", n, &edges).unwrap();
        let reference = nested_bfs_distances(n, &edges);
        for (a, row) in reference.iter().enumerate() {
            for (b, &value) in row.iter().enumerate() {
                let expected = match value {
                    u32::MAX => None,
                    d => Some(d as usize),
                };
                prop_assert_eq!(topo.distance(a, b), expected);
            }
        }
        // Connectivity and diameter are derived from the same matrix.
        let reachable_all = (0..n).all(|b| reference[0][b] != u32::MAX);
        prop_assert_eq!(topo.is_connected(), reachable_all);
    }
}
