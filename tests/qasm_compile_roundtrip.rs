//! QASM round-trip through the compiler: parse an OpenQASM 2.0 program,
//! compile it with both pipelines via the builder API, emit the compiled
//! circuit as QASM, re-parse it, and check the re-parsed circuit is still
//! semantically equivalent to the original program.

use orchestrated_trios::core::{Compiler, DecomposerRegistry, PaperConfig};
use orchestrated_trios::qasm::{emit, parse};
use orchestrated_trios::route::verify_legal;
use orchestrated_trios::sim::compiled_equivalent;
use orchestrated_trios::topology::{grid, johannesburg};

const PROGRAM: &str = "OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[5];
h q[0];
cx q[0], q[1];
ccx q[0], q[1], q[2];
rz(0.25) q[3];
cswap q[2], q[3], q[4];
ccz q[0], q[2], q[4];
";

#[test]
fn parsed_programs_compile_and_round_trip_on_both_pipelines() {
    let program = parse(PROGRAM).unwrap();
    for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
        for topo in [johannesburg(), grid(3, 2)] {
            let compiled = Compiler::builder()
                .seed(6)
                .config(config)
                .build()
                .compile(&program, &topo)
                .unwrap_or_else(|e| panic!("{config:?} on {}: {e}", topo.name()));

            // Emit the compiled circuit and re-parse it: the round trip
            // must preserve the instruction stream exactly.
            let text = emit(&compiled.circuit);
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
            assert_eq!(reparsed.num_qubits(), compiled.circuit.num_qubits());
            assert_eq!(
                reparsed.instructions(),
                compiled.circuit.instructions(),
                "{config:?} on {}",
                topo.name()
            );

            // And the re-parsed circuit still implements the original
            // program through the compiler's layouts.
            let ok = compiled_equivalent(
                &program,
                &reparsed,
                &compiled.initial_layout.to_mapping(),
                &compiled.final_layout.to_mapping(),
                2,
                17,
                1e-7,
            )
            .unwrap();
            assert!(ok, "{config:?} on {}: semantics broken", topo.name());
        }
    }
}

/// Satellite of the DecompositionStrategy refactor: every executable
/// lowering's output is hardware-legal (`verify_legal`: native gate set,
/// coupling-map edges only — no unlowered ccx/ccz/cswap escapes) and
/// survives a QASM emit → parse round trip byte-exactly, still
/// implementing the source program.
#[test]
fn every_executable_lowering_emits_legal_round_trippable_qasm() {
    let program = parse(PROGRAM).unwrap();
    let registry = DecomposerRegistry::standard();
    let topo = johannesburg();
    for name in registry.names() {
        if !registry.get(name).unwrap().executable() {
            continue;
        }
        let compiled = Compiler::builder()
            .seed(9)
            .decomposer(name)
            .build()
            .compile(&program, &topo)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        verify_legal(&compiled.circuit, &topo)
            .unwrap_or_else(|e| panic!("{name} emitted an illegal circuit: {e}"));

        let text = emit(&compiled.circuit);
        let reparsed =
            parse(&text).unwrap_or_else(|e| panic!("{name} re-parse failed: {e}\n{text}"));
        assert_eq!(
            reparsed.instructions(),
            compiled.circuit.instructions(),
            "{name}: QASM round trip changed the instruction stream"
        );

        let ok = compiled_equivalent(
            &program,
            &reparsed,
            &compiled.initial_layout.to_mapping(),
            &compiled.final_layout.to_mapping(),
            2,
            23,
            1e-7,
        )
        .unwrap();
        assert!(ok, "{name}: semantics broken after round trip");
    }
}

#[test]
fn qasm_files_survive_two_compile_emit_cycles() {
    // Emit → parse → compile again: the compiled artifact is itself a
    // valid compiler input (idempotent tooling pipelines).
    let program = parse(PROGRAM).unwrap();
    let topo = johannesburg();
    let compiler = Compiler::builder().seed(1).build();
    let first = compiler.compile(&program, &topo).unwrap();
    let reparsed = parse(&emit(&first.circuit)).unwrap();
    let second = compiler.compile(&reparsed, &topo).unwrap();
    assert!(second.circuit.is_hardware_lowered());
    assert_eq!(second.stats.measurements, first.stats.measurements);
}
