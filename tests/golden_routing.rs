//! Golden test pinning the compiler's routed output on the full paper
//! suite, byte for byte.
//!
//! The fixture (`tests/golden/paper_suite_hashes.txt`) was captured from
//! the compiler *before* the kiloqubit hot-path refactor (flat distance
//! matrix, heap Dijkstra, in-place lookahead scoring, frontier-pruned
//! placement), so this suite proves the refactor is a pure performance
//! change: every benchmark × paper device × registered router × seed must
//! still compile to exactly the same circuit, layouts, and SWAP count.
//!
//! Regenerate with `GOLDEN_ROUTING_REGEN=1 cargo test --test
//! golden_routing -- --nocapture` — but only do that for an *intentional*
//! routing-behavior change, never to paper over a hot-path regression.

use trios_benchmarks::Benchmark;
use trios_core::{Compiler, StrategyRegistry};
use trios_route::{initial_layout, InitialMapping};
use trios_topology::PaperDevice;

/// One fingerprint line: everything that identifies a compiled program.
fn fingerprint(compiler: &Compiler, b: Benchmark, device: &trios_topology::Topology) -> String {
    let program = compiler
        .compile(&b.build(), device)
        .unwrap_or_else(|e| panic!("compile failed for {b} on {}: {e}", device.name()));
    format!(
        "{:016x} swaps={} init={:?} final={:?}",
        program.circuit.structural_hash(),
        program.stats.swap_count,
        program.initial_layout.to_mapping(),
        program.final_layout.to_mapping(),
    )
}

fn current_table() -> String {
    let mut lines = Vec::new();
    for device in PaperDevice::ALL {
        let topo = device.build();
        for router in StrategyRegistry::standard().names() {
            for b in Benchmark::ALL {
                for seed in [0u64, 7] {
                    let compiler = Compiler::builder().router(router).seed(seed).build();
                    lines.push(format!(
                        "{} {router} {} seed={seed}: {}",
                        topo.name(),
                        b.name(),
                        fingerprint(&compiler, b, &topo)
                    ));
                }
            }
        }
    }
    // Greedy and noise-aware placement are not on the default pipeline
    // (mapping defaults to Trivial), so pin them separately: the frontier
    // pruning in `greedy_layout` must not move a single qubit on the
    // paper-scale devices.
    for device in PaperDevice::ALL {
        let topo = device.build();
        let edge_errors: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&(a, b)| 0.001 + 0.002 * ((a * 13 + b * 5) % 7) as f64)
            .collect();
        for b in Benchmark::ALL {
            let circuit = b.build();
            let greedy = initial_layout(&circuit, &topo, &InitialMapping::GreedyInteraction)
                .expect("greedy placement succeeds");
            let noise = initial_layout(
                &circuit,
                &topo,
                &InitialMapping::NoiseAware {
                    edge_errors: edge_errors.clone(),
                },
            )
            .expect("noise-aware placement succeeds");
            lines.push(format!(
                "{} mapping {}: greedy={:?} noise={:?}",
                topo.name(),
                b.name(),
                greedy.to_mapping(),
                noise.to_mapping()
            ));
        }
    }
    lines.join("\n") + "\n"
}

#[test]
fn routed_paper_suite_is_byte_identical_to_prerefactor_golden() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/paper_suite_hashes.txt"
    );
    let table = current_table();
    if std::env::var_os("GOLDEN_ROUTING_REGEN").is_some() {
        std::fs::write(fixture, &table).expect("write golden fixture");
        println!("regenerated {fixture}");
        return;
    }
    let golden = std::fs::read_to_string(fixture).expect("golden fixture exists");
    if table != golden {
        let diffs: Vec<&str> = table
            .lines()
            .zip(golden.lines())
            .filter(|(now, was)| now != was)
            .map(|(now, _)| now)
            .collect();
        panic!(
            "routed output diverged from the pre-refactor golden on {} of {} cells; first: {}",
            diffs.len(),
            golden.lines().count(),
            diffs.first().unwrap_or(&"(line counts differ)")
        );
    }
}
