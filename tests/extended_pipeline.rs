//! Integration tests for the extension features: the extended benchmark
//! suite (QFT, Toffoli chains, random circuits, CCZ/Fredkin workloads)
//! through both pipelines on every paper device plus heavy-hex, the
//! lookahead router, and the commutation-aware optimizer.

use orchestrated_trios::benchmarks::ExtendedBenchmark;
use orchestrated_trios::core::{CompileOptions, Compiler, PaperConfig, Pipeline};
use orchestrated_trios::passes::OptimizeOptions;
use orchestrated_trios::route::{check_legal, LookaheadConfig, ToffoliPolicy};
use orchestrated_trios::sim::compiled_equivalent;
use orchestrated_trios::topology::{heavy_hex_falcon27, PaperDevice, Topology};

fn all_devices() -> Vec<Topology> {
    PaperDevice::ALL
        .into_iter()
        .map(PaperDevice::build)
        .chain(std::iter::once(heavy_hex_falcon27()))
        .collect()
}

#[test]
fn extended_suite_compiles_legally_everywhere() {
    for b in ExtendedBenchmark::ALL {
        let circuit = b.build();
        for topo in all_devices() {
            for pipeline in [Pipeline::Baseline, Pipeline::Trios] {
                let compiled = Compiler::builder()
                    .pipeline(pipeline)
                    .seed(11)
                    .build()
                    .compile(&circuit, &topo)
                    .unwrap_or_else(|e| panic!("{b} on {}: {e}", topo.name()));
                assert!(compiled.circuit.is_hardware_lowered(), "{b}");
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid)
                    .unwrap_or_else(|v| panic!("{b} on {}: {v}", topo.name()));
            }
        }
    }
}

#[test]
fn small_extended_benchmarks_are_semantically_preserved() {
    // The CCZ and Fredkin workloads are the new code paths; verify them
    // end to end on right-sized devices (simulation cost scales with the
    // physical register).
    use orchestrated_trios::topology::{grid, line};
    for b in [
        ExtendedBenchmark::HypergraphState12,
        ExtendedBenchmark::FredkinNetwork11,
    ] {
        let circuit = b.build();
        for topo in [line(circuit.num_qubits()), grid(4, 3)] {
            for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
                let compiled = Compiler::builder()
                    .seed(5)
                    .config(config)
                    .build()
                    .compile(&circuit, &topo)
                    .unwrap();
                let ok = compiled_equivalent(
                    &circuit,
                    &compiled.circuit,
                    &compiled.initial_layout.to_mapping(),
                    &compiled.final_layout.to_mapping(),
                    1,
                    42,
                    1e-7,
                )
                .unwrap();
                assert!(ok, "{b} on {} ({config:?}): semantics broken", topo.name());
            }
        }
    }
}

#[test]
fn trios_wins_on_three_qubit_extended_benchmarks() {
    // The §4 extension carries the paper's headline property over to CCZ
    // and Fredkin workloads: geomean two-qubit counts improve on every
    // device.
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
    for topo in all_devices() {
        let mut ratios = Vec::new();
        for b in ExtendedBenchmark::ALL {
            if !b.uses_three_qubit() {
                continue;
            }
            let circuit = b.build();
            let base = Compiler::builder()
                .config(PaperConfig::QiskitBaseline)
                .build()
                .compile(&circuit, &topo)
                .unwrap();
            let trios = Compiler::builder()
                .config(PaperConfig::Trios)
                .build()
                .compile(&circuit, &topo)
                .unwrap();
            ratios.push(base.stats.two_qubit_gates as f64 / trios.stats.two_qubit_gates as f64);
        }
        assert!(
            geo(&ratios) > 1.0,
            "{}: no suite-level reduction ({:.3})",
            topo.name(),
            geo(&ratios)
        );
    }
}

#[test]
fn qft_sees_no_change_from_trios() {
    // No three-qubit gates → identical pipelines (the extension keeps the
    // paper's no-overhead property).
    let circuit = ExtendedBenchmark::Qft16.build();
    for topo in all_devices() {
        let base = Compiler::builder()
            .seed(3)
            .config(PaperConfig::QiskitBaseline)
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        let trios = Compiler::builder()
            .seed(3)
            .config(PaperConfig::Trios)
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        assert_eq!(
            base.stats.two_qubit_gates,
            trios.stats.two_qubit_gates,
            "{}",
            topo.name()
        );
    }
}

#[test]
fn lookahead_and_full_optimization_compose_with_trios() {
    // Every extension can be stacked; the result stays legal and correct.
    let circuit = ExtendedBenchmark::FredkinNetwork11.build();
    let topo = PaperDevice::Grid.build();
    let compiled = Compiler::builder()
        .seed(2)
        .lookahead(Some(LookaheadConfig::default()))
        .optimize(OptimizeOptions::full())
        .build()
        .compile(&circuit, &topo)
        .unwrap();
    check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).unwrap();
    let ok = compiled_equivalent(
        &circuit,
        &compiled.circuit,
        &compiled.initial_layout.to_mapping(),
        &compiled.final_layout.to_mapping(),
        1,
        9,
        1e-7,
    )
    .unwrap();
    assert!(ok);
}

#[test]
fn full_optimization_never_increases_gate_counts() {
    for b in ExtendedBenchmark::ALL {
        let circuit = b.build();
        let topo = PaperDevice::Johannesburg.build();
        let light = Compiler::new(CompileOptions::with_seed(0))
            .compile(&circuit, &topo)
            .unwrap();
        let full = Compiler::builder()
            .optimize(OptimizeOptions::full())
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        let total =
            |s: &orchestrated_trios::core::CompileStats| s.one_qubit_gates + s.two_qubit_gates;
        assert!(
            total(&full.stats) <= total(&light.stats),
            "{b}: full {} > light {}",
            total(&full.stats),
            total(&light.stats)
        );
    }
}
