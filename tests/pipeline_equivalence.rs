//! Cross-crate integration tests: every benchmark, through both
//! pipelines, on every paper device, must produce a hardware-legal
//! circuit; the smaller ones are additionally verified semantically
//! against the original program with the statevector simulator.

use orchestrated_trios::benchmarks::Benchmark;
use orchestrated_trios::core::{Compiler, PaperConfig, Pipeline};
use orchestrated_trios::route::{check_legal, ToffoliPolicy};
use orchestrated_trios::sim::compiled_equivalent;
use orchestrated_trios::topology::PaperDevice;

fn configs() -> [(Pipeline, PaperConfig); 2] {
    [
        (Pipeline::Baseline, PaperConfig::QiskitBaseline),
        (Pipeline::Trios, PaperConfig::Trios),
    ]
}

/// One configured compiler per paper config — built once, reused across
/// every circuit and device in these tests.
fn compiler(config: PaperConfig, seed: u64) -> Compiler {
    Compiler::builder().seed(seed).config(config).build()
}

#[test]
fn every_benchmark_compiles_legally_on_every_device() {
    for b in Benchmark::ALL {
        let circuit = b.build();
        for device in PaperDevice::ALL {
            let topo = device.build();
            for (_, config) in configs() {
                let compiled = compiler(config, 7)
                    .compile(&circuit, &topo)
                    .unwrap_or_else(|e| panic!("{b} on {device:?} ({config:?}): {e}"));
                assert!(
                    compiled.circuit.is_hardware_lowered(),
                    "{b} on {device:?} ({config:?}): not lowered"
                );
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).unwrap_or_else(|v| {
                    panic!("{b} on {device:?} ({config:?}): illegal output: {v}")
                });
            }
        }
    }
}

#[test]
fn small_benchmarks_are_semantically_preserved() {
    // Benchmarks small enough for full statevector verification on the
    // 20-qubit devices would need 2^20 amplitudes per trial; keep the
    // simulated set to programs of ≤ 11 logical qubits and verify each on
    // every device (the physical register is what is simulated).
    let small = [
        Benchmark::CnxInplace4,
        Benchmark::IncrementerBorrowedbit5,
        Benchmark::Grovers9,
        Benchmark::QaoaComplete10,
        Benchmark::CnxDirty11,
    ];
    for b in small {
        let circuit = b.build();
        // Keep runtime in check: verify on the two extreme devices.
        for device in [PaperDevice::Line, PaperDevice::Johannesburg] {
            let topo = device.build();
            for (_, config) in configs() {
                let compiled = compiler(config, 13).compile(&circuit, &topo).unwrap();
                let ok = compiled_equivalent(
                    &circuit,
                    &compiled.circuit,
                    &compiled.initial_layout.to_mapping(),
                    &compiled.final_layout.to_mapping(),
                    1,
                    999,
                    1e-7,
                )
                .unwrap();
                assert!(ok, "{b} on {device:?} ({config:?}): semantics broken");
            }
        }
    }
}

#[test]
fn trios_never_loses_on_toffoli_benchmarks() {
    // The paper's core claim. Both routers are stochastic, so a single
    // seed can flip an individual pair (the paper itself reports "a small
    // number of cases where Trios performs worse"); compare geomeans over
    // several seeds, allowing 5% per benchmark×device and requiring a
    // strict win per device at the suite level.
    let seeds = [0u64, 1, 2];
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
    for device in PaperDevice::ALL {
        let topo = device.build();
        let mut suite_ratios = Vec::new();
        for b in Benchmark::toffoli_suite() {
            let circuit = b.build();
            let mut base_counts = Vec::new();
            let mut trios_counts = Vec::new();
            for &seed in &seeds {
                let base = compiler(PaperConfig::QiskitBaseline, seed)
                    .compile(&circuit, &topo)
                    .unwrap();
                let trios = compiler(PaperConfig::Trios, seed)
                    .compile(&circuit, &topo)
                    .unwrap();
                base_counts.push(base.stats.two_qubit_gates as f64);
                trios_counts.push(trios.stats.two_qubit_gates as f64);
            }
            let (gb, gt) = (geo(&base_counts), geo(&trios_counts));
            assert!(
                gt <= gb * 1.05,
                "{b} on {device:?}: trios {gt:.1} > baseline {gb:.1}"
            );
            suite_ratios.push(gb / gt);
        }
        assert!(
            geo(&suite_ratios) > 1.0,
            "{device:?}: no suite-level gate reduction"
        );
    }
}

#[test]
fn toffoli_free_benchmarks_see_no_change() {
    // "On programs containing no Toffoli gates, Trios has no effect"
    // (paper §6.2) — with identical options the pipelines coincide.
    for b in [
        Benchmark::QftAdder16,
        Benchmark::Bv20,
        Benchmark::QaoaComplete10,
    ] {
        let circuit = b.build();
        for device in PaperDevice::ALL {
            let topo = device.build();
            let base = compiler(PaperConfig::QiskitBaseline, 7)
                .compile(&circuit, &topo)
                .unwrap();
            let trios = compiler(PaperConfig::Trios, 7)
                .compile(&circuit, &topo)
                .unwrap();
            assert_eq!(
                base.stats.two_qubit_gates, trios.stats.two_qubit_gates,
                "{b} on {device:?}"
            );
        }
    }
}

#[test]
fn line_topology_shows_largest_reduction() {
    // Paper §6.1: "the maximum gain obtained for linear devices".
    let mut reductions = std::collections::HashMap::new();
    for device in PaperDevice::ALL {
        let topo = device.build();
        let mut ratios = Vec::new();
        for b in Benchmark::toffoli_suite() {
            let circuit = b.build();
            let base = compiler(PaperConfig::QiskitBaseline, 7)
                .compile(&circuit, &topo)
                .unwrap();
            let trios = compiler(PaperConfig::Trios, 7)
                .compile(&circuit, &topo)
                .unwrap();
            ratios.push(base.stats.two_qubit_gates as f64 / trios.stats.two_qubit_gates as f64);
        }
        let geo: f64 = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        reductions.insert(device, geo);
    }
    let line = reductions[&PaperDevice::Line];
    for (device, r) in &reductions {
        assert!(
            line >= *r,
            "line ({line:.3}) should dominate {device:?} ({r:.3})"
        );
    }
    // Clusters should show the smallest benefit (richest connectivity).
    let clusters = reductions[&PaperDevice::Clusters];
    for (device, r) in &reductions {
        if *device != PaperDevice::Clusters {
            assert!(
                clusters <= *r,
                "clusters ({clusters:.3}) should trail {device:?} ({r:.3})"
            );
        }
    }
}

#[test]
fn compilation_is_deterministic_per_seed() {
    let circuit = Benchmark::CuccaroAdder20.build();
    let topo = PaperDevice::Johannesburg.build();
    let trios = compiler(PaperConfig::Trios, 42);
    let a = trios.compile(&circuit, &topo).unwrap();
    let b = trios.compile(&circuit, &topo).unwrap();
    assert_eq!(a.circuit, b.circuit);
    assert_eq!(a.final_layout, b.final_layout);
}
