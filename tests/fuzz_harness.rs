//! The differential fuzz harness, end to end: fixed-seed runs over every
//! registered router must be clean and byte-identical across worker
//! counts, and an injected known-bad strategy must be caught and shrunk
//! to a minimal QASM reproducer.

use orchestrated_trios::core::fuzz::{run_fuzz, run_fuzz_with_registry, FuzzFailureKind, FuzzSpec};
use orchestrated_trios::core::Compiler;
use orchestrated_trios::gen::Family;
use orchestrated_trios::ir::Circuit;
use orchestrated_trios::route::{
    Layout, OrchestratedTrios, RouteError, RoutedCircuit, RouterOptions, RoutingStrategy,
    RoutingTrace, StrategyRegistry,
};
use orchestrated_trios::sim::compiled_equivalent;
use orchestrated_trios::topology::{johannesburg, line, Topology};

#[test]
fn fixed_seed_fuzz_is_clean_over_every_router_and_family() {
    // The acceptance grid, scaled for test time: every family, every
    // registered router, a fully simulable device. Zero failures
    // expected — this is the "the compiler is actually correct on
    // adversarial inputs" assertion.
    let spec = FuzzSpec {
        cases: 10,
        seed: 42,
        devices: vec![("line:8".into(), line(8))],
        jobs: 2,
        shrink: true,
        ..FuzzSpec::new()
    };
    assert_eq!(spec.families.len(), Family::ALL.len(), "all families");
    assert_eq!(spec.routers.len(), 4, "all registered routers");
    let report = run_fuzz(&spec).unwrap();
    assert!(report.passed(), "{report}");
    // The clifford family generates up to 20 qubits, so its wide cases
    // skip line:8; everything that fits is compiled and dense-checked.
    assert_eq!(
        report.cells + report.skipped,
        10 * 4,
        "every (case, router) cell compiled or counted as skipped"
    );
    assert_eq!(
        report.equivalence_checked, report.cells,
        "an 8-qubit device simulates every fitting cell"
    );
    // Clifford pairs go to the stabilizer regardless of width; everything
    // else fits under the dense cap on line:8, so nothing needs sparse.
    assert_eq!(
        report.equivalence_dense + report.equivalence_stabilizer,
        report.cells,
        "{report}"
    );
    assert!(
        report.skips.is_empty(),
        "no cell silently skipped: {report}"
    );
}

#[test]
fn every_family_verifies_at_full_johannesburg_width() {
    // The acceptance criterion of the sparse backend: every paper
    // benchmark family — including the non-Clifford ones that the
    // stabilizer cannot touch and the dense backend cannot fit — is
    // equivalence-checked at the full 20-qubit Johannesburg width, with
    // zero silently-skipped cells.
    // Cases cycle through the family list, so 6 cases touch every family
    // exactly once.
    let spec = FuzzSpec {
        cases: 6,
        seed: 11,
        devices: vec![("johannesburg".into(), johannesburg())],
        jobs: 2,
        ..FuzzSpec::new()
    };
    assert_eq!(spec.families.len(), Family::ALL.len(), "all families");
    let report = run_fuzz(&spec).unwrap();
    assert!(report.passed(), "{report}");
    assert_eq!(report.skipped, 0, "everything fits a 20-qubit device");
    assert!(
        report.skips.is_empty(),
        "no equivalence check skipped: {report}"
    );
    assert_eq!(
        report.equivalence_checked, report.cells,
        "every compiled cell verified at device width:\n{report}"
    );
    assert!(
        report.equivalence_sparse > 0,
        "wide non-Clifford cells go through the sparse backend:\n{report}"
    );
    assert!(
        report.equivalence_stabilizer > 0,
        "Clifford cells keep the tableau fast path:\n{report}"
    );
}

#[test]
fn full_johannesburg_clifford_fuzz_passes_through_the_stabilizer_backend() {
    // The acceptance criterion of the simulator refactor: routed-vs-input
    // equivalence on the full 20-qubit Johannesburg device — impossible
    // under the old 8-qubit dense wall — for every registered router.
    let spec = FuzzSpec {
        cases: 4,
        seed: 42,
        families: vec![Family::Clifford],
        devices: vec![("johannesburg".into(), johannesburg())],
        jobs: 2,
        ..FuzzSpec::new()
    };
    assert_eq!(spec.routers.len(), 4, "all registered routers");
    let report = run_fuzz(&spec).unwrap();
    assert!(report.passed(), "{report}");
    assert_eq!(report.cells, 4 * 4);
    assert_eq!(
        report.equivalence_stabilizer, report.cells,
        "every cell tableau-checked at device width:\n{report}"
    );
    assert_eq!(report.skipped, 0);
}

#[test]
fn fuzz_reports_are_byte_identical_across_worker_counts() {
    let spec_for = |jobs: usize| FuzzSpec {
        cases: 6,
        seed: 7,
        families: vec![Family::Qft, Family::CliffordT, Family::ToffoliRipple],
        devices: vec![("line:8".into(), line(8))],
        jobs,
        ..FuzzSpec::new()
    };
    let reference = run_fuzz(&spec_for(1)).unwrap();
    for jobs in [2, 4, 8] {
        let report = run_fuzz(&spec_for(jobs)).unwrap();
        assert_eq!(report, reference, "jobs = {jobs}");
        assert_eq!(
            report.to_string(),
            reference.to_string(),
            "rendered report must be byte-identical at jobs = {jobs}"
        );
    }
}

/// A deliberately broken trio router: routes correctly, then flips
/// physical qubit 0 whenever the program contained a three-qubit gate —
/// the shape of a real "trio decomposition emitted one gate too many"
/// bug. Legality is untouched (an X is always legal), so only the
/// statevector check can catch it.
struct BrokenTrios;

impl RoutingStrategy for BrokenTrios {
    fn name(&self) -> &str {
        "broken-trios"
    }

    fn route(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        layout: Layout,
        options: &RouterOptions,
        trace: &mut RoutingTrace,
    ) -> Result<RoutedCircuit, RouteError> {
        let mut routed = OrchestratedTrios.route(circuit, topology, layout, options, trace)?;
        if circuit.counts().three_qubit > 0 {
            routed.circuit.x(0);
        }
        Ok(routed)
    }
}

#[test]
fn injected_bad_strategy_yields_a_minimized_reproducer() {
    let mut registry = StrategyRegistry::standard();
    registry.register("broken-trios", || Box::new(BrokenTrios));
    let spec = FuzzSpec {
        cases: 6,
        seed: 1,
        families: vec![Family::ToffoliRipple, Family::Layered],
        routers: vec!["broken-trios".into()],
        devices: vec![("line:8".into(), line(8))],
        jobs: 2,
        shrink: true,
        ..FuzzSpec::new()
    };
    let report = run_fuzz_with_registry(&spec, &registry).unwrap();
    assert!(!report.passed(), "the planted bug must be found:\n{report}");

    let failure = report
        .failures
        .iter()
        .find(|f| f.kind == FuzzFailureKind::Equivalence)
        .expect("the planted bug is an equivalence bug");
    assert_eq!(failure.router, "broken-trios");
    let repro = failure
        .reproducer
        .as_ref()
        .expect("shrink was on, so the failure carries a reproducer");

    // The acceptance bound — and, for this bug, the exact minimum: one
    // three-qubit gate on three qubits (everything else shrinks away,
    // because the tamper only fires when a 3q gate is present).
    assert!(repro.gates <= 10, "reproducer has {} gates", repro.gates);
    assert_eq!(repro.gates, 1, "{}", repro.qasm);
    assert_eq!(repro.qubits, 3, "{}", repro.qasm);

    // The reproducer is real: it parses back and still exposes the bug
    // through a fresh compile.
    let minimal = orchestrated_trios::qasm::parse(&repro.qasm).unwrap();
    assert_eq!(minimal.counts().three_qubit, 1);
    let compiler = Compiler::builder()
        .router("broken-trios")
        .seed(spec.seed)
        .strategies(registry.clone())
        .build();
    let compiled = compiler.compile(&minimal, &line(8)).unwrap();
    let equivalent = compiled_equivalent(
        &minimal,
        &compiled.circuit,
        &compiled.initial_layout.to_mapping(),
        &compiled.final_layout.to_mapping(),
        2,
        spec.seed,
        1e-7,
    )
    .unwrap();
    assert!(!equivalent, "the minimized reproducer must still fail");

    // The report text carries the reproducer for copy-paste.
    let text = report.to_string();
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("OPENQASM 2.0;"), "{text}");
}

#[test]
fn failure_rows_name_the_exact_cell() {
    let mut registry = StrategyRegistry::standard();
    registry.register("broken-trios", || Box::new(BrokenTrios));
    let spec = FuzzSpec {
        cases: 2,
        seed: 9,
        families: vec![Family::ToffoliRipple],
        routers: vec!["trios".into(), "broken-trios".into()],
        devices: vec![("line:8".into(), line(8))],
        jobs: 1,
        ..FuzzSpec::new()
    };
    let report = run_fuzz_with_registry(&spec, &registry).unwrap();
    // The healthy router is clean; only the broken one fails.
    assert_eq!(report.failures.len(), 2, "{report}");
    for failure in &report.failures {
        assert_eq!(failure.router, "broken-trios");
        assert_eq!(failure.family, "toffoli-ripple");
        assert_eq!(failure.device, "line:8");
        assert!(
            failure.case.contains(&format!("s{}", failure.seed)),
            "case name {} must embed seed {}",
            failure.case,
            failure.seed
        );
        // Regenerating from the recorded (family, seed) reproduces the
        // exact input circuit — the determinism guarantee in action.
        let regenerated = Family::ToffoliRipple.generate_case(failure.seed);
        assert_eq!(regenerated.name, failure.case);
    }
}

#[test]
fn generated_qasm_is_byte_identical_per_seed() {
    for family in Family::ALL {
        let a = orchestrated_trios::qasm::emit(&family.generate_case(42).circuit);
        let b = orchestrated_trios::qasm::emit(&family.generate_case(42).circuit);
        assert_eq!(a, b, "{family}: same seed must emit identical QASM");
        // And the emitted text round-trips through the parser.
        let parsed = orchestrated_trios::qasm::parse(&a).unwrap();
        assert_eq!(
            parsed.instructions(),
            family.generate_case(42).circuit.instructions(),
            "{family}"
        );
    }
}
