//! Golden tests for the pluggable routing engine:
//!
//! 1. The registry's `"baseline"` and `"trios"` strategies are
//!    **byte-identical** to the pre-refactor free functions
//!    (`route_baseline` / `route_trios`) on the full paper suite.
//! 2. The end-to-end `Compiler` produces identical programs whether a
//!    strategy is chosen by `Pipeline` or by registry name.
//! 3. Batch-compilation cache keys incorporate the strategy: a warm cache
//!    never serves one strategy's result for another.

use trios_benchmarks::Benchmark;
use trios_core::{CompilationCache, CompileOptions, Compiler, Pipeline, StrategyRegistry};
use trios_passes::{decompose_toffolis, SixCnotDecomposition};
use trios_route::{route_baseline, route_trios, Layout, RouterOptions, RoutingTrace};
use trios_topology::johannesburg;

#[test]
fn registry_baseline_and_trios_match_free_functions_on_paper_suite() {
    let topo = johannesburg();
    let registry = StrategyRegistry::standard();
    for b in Benchmark::ALL {
        let toffoli_level = b.build();
        let decomposed = decompose_toffolis(&toffoli_level, &SixCnotDecomposition);
        for seed in [0u64, 7] {
            // Stochastic direction (the default) so the shared RNG stream
            // is part of the byte-for-byte comparison.
            let opts = RouterOptions::with_seed(seed);
            let layout = Layout::trivial(toffoli_level.num_qubits(), topo.num_qubits());

            let golden = route_trios(&toffoli_level, &topo, layout.clone(), &opts).unwrap();
            let via_registry = registry
                .get("trios")
                .unwrap()
                .route(
                    &toffoli_level,
                    &topo,
                    layout.clone(),
                    &opts,
                    &mut RoutingTrace::new(),
                )
                .unwrap();
            assert_eq!(via_registry, golden, "trios diverged on {b} seed {seed}");

            let golden = route_baseline(&decomposed, &topo, layout.clone(), &opts).unwrap();
            let via_registry = registry
                .get("baseline")
                .unwrap()
                .route(&decomposed, &topo, layout, &opts, &mut RoutingTrace::new())
                .unwrap();
            assert_eq!(via_registry, golden, "baseline diverged on {b} seed {seed}");
        }
    }
}

#[test]
fn named_strategies_match_pipeline_compilation_on_paper_suite() {
    let topo = johannesburg();
    for b in Benchmark::ALL {
        let circuit = b.build();
        let by_pipeline = Compiler::builder()
            .seed(3)
            .pipeline(Pipeline::Trios)
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        let by_name = Compiler::builder()
            .seed(3)
            .router("trios")
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        assert_eq!(by_pipeline, by_name, "trios diverged on {b}");

        let by_pipeline = Compiler::builder()
            .seed(3)
            .pipeline(Pipeline::Baseline)
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        let by_name = Compiler::builder()
            .seed(3)
            .router("baseline")
            .build()
            .compile(&circuit, &topo)
            .unwrap();
        assert_eq!(by_pipeline, by_name, "baseline diverged on {b}");
    }
}

#[test]
fn every_registered_strategy_compiles_the_paper_suite() {
    let topo = johannesburg();
    for router in StrategyRegistry::standard().names() {
        for b in Benchmark::ALL {
            let compiled = Compiler::builder()
                .seed(0)
                .router(router)
                .build()
                .compile(&b.build(), &topo)
                .unwrap_or_else(|e| panic!("{router} failed on {b}: {e}"));
            assert!(compiled.circuit.is_hardware_lowered(), "{router} on {b}");
        }
    }
}

#[test]
fn warm_cache_never_serves_one_strategy_for_another() {
    let topo = johannesburg();
    let mut circuit = trios_core::Circuit::new(4);
    circuit.h(0).ccx(0, 1, 2).cx(2, 3);
    let routers = ["baseline", "trios", "trios-lookahead", "trios-noise"];

    // Key-level separation across all pairs.
    let keys: Vec<u64> = routers
        .iter()
        .map(|name| {
            let options = CompileOptions {
                router: Some(name.to_string()),
                ..CompileOptions::default()
            };
            CompilationCache::key(&circuit, &topo, &options)
        })
        .collect();
    for (i, a) in keys.iter().enumerate() {
        for (j, b) in keys.iter().enumerate() {
            assert_eq!(i == j, a == b, "{} vs {}", routers[i], routers[j]);
        }
    }

    // Behavior-level: one shared cache across strategy sweeps. Cold pass
    // fills one entry per strategy; warm pass replays each strategy's own
    // result exactly.
    let cache = CompilationCache::new(16);
    let batch = vec![circuit.clone()];
    let mut cold = Vec::new();
    for router in routers {
        let compiler = Compiler::builder().seed(0).router(router).build();
        let outcome = compiler
            .compile_batch_parallel_with_cache(&batch, &topo, 2, Some(&cache))
            .unwrap();
        assert_eq!(
            outcome.report.cache_hits, 0,
            "{router} must not hit another strategy's entry"
        );
        cold.push(outcome.results[0].clone());
    }
    assert_eq!(cache.len(), routers.len(), "one entry per strategy");
    for (router, cold_result) in routers.iter().zip(&cold) {
        let compiler = Compiler::builder().seed(0).router(*router).build();
        let outcome = compiler
            .compile_batch_parallel_with_cache(&batch, &topo, 2, Some(&cache))
            .unwrap();
        assert_eq!(outcome.report.cache_hits, 1, "{router} warm hit");
        assert_eq!(&outcome.results[0], cold_result, "{router} replay");
    }
    // The strategies genuinely differ on this input: baseline pays more
    // 2q gates than trios, so a cross-served entry would be observable.
    let gates = |i: usize| -> usize { cold[i].0.stats.two_qubit_gates };
    assert!(
        gates(0) > gates(1),
        "baseline {} vs trios {}",
        gates(0),
        gates(1)
    );
}
