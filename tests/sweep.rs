//! Property tests for the evaluation sweep subsystem:
//!
//! * `SweepReport` round-trips through its JSON serialization — arbitrary
//!   names (quotes, backslashes, multibyte), floats, and optional fields;
//! * sweep results are byte-identical regardless of the worker count
//!   (piggybacking on the parallel == sequential batch property);
//! * the Monte Carlo cross-check upper-bounds the analytic §2.6 product
//!   on every simulable cell.

use proptest::collection;
use proptest::prelude::*;
use trios_benchmarks::Benchmark;
use trios_core::{
    run_sweep, Calibration, RatioRow, RouterGeomean, SweepBenchmark, SweepCell, SweepMonteCarlo,
    SweepReport, SweepSpec,
};
use trios_topology::line;

/// Deterministically fills a report from pools of random primitives, so
/// the round-trip property exercises every field shape (including `None`
/// vs `Some` and present vs absent Monte Carlo blocks) without a
/// 21-field tuple strategy.
fn build_report(names: &[String], floats: &[f64], ints: &[usize], flags: &[bool]) -> SweepReport {
    let name = |i: usize| names[i % names.len()].clone();
    let f = |i: usize| floats[i % floats.len()];
    let n = |i: usize| ints[i % ints.len()];
    let b = |i: usize| flags[i % flags.len()];

    let cells: Vec<SweepCell> = (0..names.len().min(3))
        .map(|i| SweepCell {
            benchmark: name(i),
            device: name(i + 1),
            router: name(i + 2),
            decomposer: name(i + 4),
            calibration: name(i + 3),
            probability: f(i),
            p_gates: f(i + 1),
            p_readout: f(i + 2),
            p_coherence: f(i + 3),
            duration_us: f(i + 4),
            two_qubit_gates: n(i),
            one_qubit_gates: n(i + 1),
            measurements: n(i + 2),
            swap_count: n(i + 3),
            depth: n(i + 4),
            gates_in: n(i + 5),
            two_qubit_in: n(i + 6),
            two_qubit_delta: n(i + 7) as isize - n(i + 8) as isize,
            depth_delta: n(i + 9) as isize - n(i + 10) as isize,
            mean_gather_distance: b(i).then(|| f(i + 5)),
            compile_time_s: f(i + 6),
            monte_carlo: b(i + 1).then(|| SweepMonteCarlo {
                shots: n(i + 11),
                mean_fidelity: f(i + 7),
                std_error: f(i + 8),
                error_free_fraction: f(i + 9),
                analytic_error_free: f(i + 10),
                bound_ok: b(i + 2),
            }),
        })
        .collect();
    let ratios: Vec<RatioRow> = (0..names.len().min(2))
        .map(|i| RatioRow {
            benchmark: name(i),
            device: name(i + 1),
            calibration: name(i + 2),
            router: name(i + 3),
            decomposer: name(i + 4),
            baseline_probability: f(i),
            probability: f(i + 1),
            ratio: f(i + 2),
        })
        .collect();
    let geomeans: Vec<RouterGeomean> = (0..names.len().min(2))
        .map(|i| RouterGeomean {
            router: name(i),
            decomposer: name(i + 1),
            geomean: f(i),
            cells: n(i),
        })
        .collect();
    SweepReport {
        benchmarks: names.to_vec(),
        devices: names.iter().rev().cloned().collect(),
        routers: vec![name(0)],
        decomposers: vec![name(1)],
        calibrations: vec![name(1)],
        crosstalk: name(2),
        seed: n(0) as u64,
        shots: b(0).then(|| n(1)),
        cells,
        ratios,
        geomeans,
        cache_hits: n(2) as u64,
        cache_misses: n(3) as u64,
        wall_time_s: f(0).abs(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_report_round_trips_through_serde_json(
        names in collection::vec("\\PC{1,12}", 1..5),
        floats in collection::vec(-1.0e9f64..1.0e9, 12..24),
        ints in collection::vec(0usize..1_000_000_000, 12..24),
        flags in collection::vec(any::<bool>(), 8..16),
    ) {
        let report = build_report(&names, &floats, &ints, &flags);
        let compact = SweepReport::from_json(&report.to_json());
        prop_assert_eq!(compact.as_ref(), Ok(&report));
        let pretty = SweepReport::from_json(&report.to_json_pretty());
        prop_assert_eq!(pretty.as_ref(), Ok(&report));
    }
}

fn jobs_spec(seed: u64, jobs: usize, shots: Option<usize>) -> SweepSpec {
    SweepSpec {
        benchmarks: vec![
            SweepBenchmark::measured("cnx_inplace-4", Benchmark::CnxInplace4.build()),
            SweepBenchmark::measured(
                "incrementer_borrowedbit-5",
                Benchmark::IncrementerBorrowedbit5.build(),
            ),
        ],
        devices: vec![("line-6".into(), line(6))],
        routers: vec!["baseline".into(), "trios".into()],
        calibrations: vec![("now".into(), Calibration::johannesburg_2020_08_19())],
        seed,
        jobs,
        monte_carlo_shots: shots,
        ..SweepSpec::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sweep inherits the batch compiler's parallel == sequential
    /// guarantee: modulo timings, two runs of one spec produce
    /// byte-identical JSON no matter the worker counts.
    #[test]
    fn sweep_results_are_byte_identical_regardless_of_jobs(
        jobs_a in 1usize..5,
        jobs_b in 1usize..5,
        seed in 0u64..3,
    ) {
        let a = run_sweep(&jobs_spec(seed, jobs_a, Some(25))).unwrap().normalized();
        let b = run_sweep(&jobs_spec(seed, jobs_b, Some(25))).unwrap().normalized();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}

/// The acceptance cross-check: on every ≤8-qubit cell, Monte Carlo mean
/// fidelity upper-bounds the analytic error-free product of the §2.6
/// noise channels within statistical error — the "success = nothing went
/// wrong" model is a lower bound on what the trajectory simulation
/// measures.
#[test]
fn monte_carlo_mean_fidelity_upper_bounds_analytic_product() {
    let report = run_sweep(&jobs_spec(0, 2, Some(300))).unwrap();
    assert_eq!(report.cells.len(), 4);
    for cell in &report.cells {
        let mc = cell
            .monte_carlo
            .expect("every cell compiles onto 6 qubits and must be cross-checked");
        assert_eq!(mc.shots, 300);
        assert!(mc.analytic_error_free > 0.0 && mc.analytic_error_free < 1.0);
        let sigma =
            (mc.analytic_error_free * (1.0 - mc.analytic_error_free) / mc.shots as f64).sqrt();
        assert!(
            mc.mean_fidelity + 4.0 * sigma + 1e-9 >= mc.analytic_error_free,
            "cell {}/{}: fidelity {} below analytic error-free product {} (4σ = {})",
            cell.benchmark,
            cell.router,
            mc.mean_fidelity,
            mc.analytic_error_free,
            4.0 * sigma
        );
        assert!(mc.bound_ok);
        // Error-free trajectories have fidelity 1, so the fraction can
        // never exceed the mean — and it estimates the analytic product
        // without bias.
        assert!(mc.error_free_fraction <= mc.mean_fidelity + 1e-12);
        assert!(
            (mc.error_free_fraction - mc.analytic_error_free).abs() <= 4.0 * sigma,
            "cell {}/{}: fraction {} vs analytic {} (4σ = {})",
            cell.benchmark,
            cell.router,
            mc.error_free_fraction,
            mc.analytic_error_free,
            4.0 * sigma
        );
    }
    // Trios must not lose to baseline on this Toffoli-bearing grid.
    assert!(report.geomean_for("trios").unwrap() >= 1.0);
}
