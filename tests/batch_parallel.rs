//! Property tests for the parallel batch-compilation subsystem:
//!
//! * `compile_batch_parallel` is byte-identical to the sequential
//!   `compile_batch` — any worker count, any device, any seed;
//! * cache hits replay results byte-identical to cold compiles, and a
//!   repeated batch over a warm cache is answered entirely from it.

use proptest::prelude::*;
use trios_core::{CompilationCache, CompileReport, CompiledProgram, Compiler, PaperConfig};
use trios_ir::Circuit;
use trios_topology::{clusters, grid, line, ring, Topology};

/// Reports are deterministic *modulo timing*: pass structure, gate counts,
/// depths, and final stats must match; wall times never reproduce.
fn reports_match(a: &CompileReport, b: &CompileReport) -> bool {
    a.stats == b.stats
        && a.passes.len() == b.passes.len()
        && a.passes.iter().zip(&b.passes).all(|(x, y)| {
            x.pass == y.pass
                && x.gates_before == y.gates_before
                && x.gates_after == y.gates_after
                && x.depth_before == y.depth_before
                && x.depth_after == y.depth_after
        })
}

fn results_match(
    a: &[(CompiledProgram, CompileReport)],
    b: &[(CompiledProgram, CompileReport)],
) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((pa, ra), (pb, rb))| pa == pb && reports_match(ra, rb))
}

/// A random gate on up to `n` qubits (same shape as `tests/properties.rs`);
/// kinds 5–7 are the three-qubit set (`ccx`, `ccz`, `cswap`).
fn arb_gate(n: usize) -> impl Strategy<Value = (u8, usize, usize, usize)> {
    (0u8..8, 0..n, 0..n, 0..n).prop_filter("distinct operands", |(kind, a, b, c)| match kind {
        0 | 1 => true,
        2..=4 => a != b,
        _ => a != b && b != c && a != c,
    })
}

fn build_circuit(n: usize, gates: &[(u8, usize, usize, usize)]) -> Circuit {
    let mut circuit = Circuit::new(n);
    for &(kind, a, b, c) in gates {
        match kind {
            0 => {
                circuit.h(a);
            }
            1 => {
                circuit.t(a);
            }
            2 => {
                circuit.cx(a, b);
            }
            3 => {
                circuit.cz(a, b);
            }
            4 => {
                circuit.cp(0.37, a, b);
            }
            5 => {
                circuit.ccx(a, b, c);
            }
            6 => {
                circuit.ccz(a, b, c);
            }
            _ => {
                circuit.cswap(a, b, c);
            }
        }
    }
    circuit
}

/// Small devices only: these properties compile whole batches per case.
fn device(choice: u8) -> Topology {
    match choice % 4 {
        0 => line(8),
        1 => ring(8),
        2 => grid(4, 2),
        _ => clusters(2, 4),
    }
}

fn arb_batch() -> impl Strategy<Value = Vec<Circuit>> {
    proptest::collection::vec(proptest::collection::vec(arb_gate(5), 1..10), 1..6).prop_map(
        |gate_lists| {
            gate_lists
                .into_iter()
                .map(|gates| build_circuit(5, &gates))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_batches_are_byte_identical_to_sequential(
        circuits in arb_batch(),
        device_choice in 0u8..4,
        jobs in 1usize..6,
        seed in 0u64..1000,
        trios in any::<bool>(),
    ) {
        let topo = device(device_choice);
        let config = if trios { PaperConfig::Trios } else { PaperConfig::QiskitBaseline };
        let compiler = Compiler::builder().seed(seed).config(config).build();
        let sequential = compiler.compile_batch(&circuits, &topo);
        let parallel = compiler.compile_batch_parallel(&circuits, &topo, jobs);
        match (sequential, parallel) {
            (Ok(s), Ok(p)) => prop_assert_eq!(s, p),
            (Err(s), Err(p)) => prop_assert_eq!(s.index, p.index),
            (s, p) => prop_assert!(
                false,
                "sequential and parallel disagree on success: {:?} vs {:?}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }

    #[test]
    fn cache_hits_replay_cold_compiles_exactly(
        circuits in arb_batch(),
        device_choice in 0u8..4,
        jobs in 1usize..4,
        seed in 0u64..1000,
    ) {
        let topo = device(device_choice);
        let compiler = Compiler::builder().seed(seed).build();
        // Cold reference: no cache at all.
        let cold = compiler
            .compile_batch_parallel_with_cache(&circuits, &topo, jobs, None)
            .unwrap();
        prop_assert_eq!(cold.report.cache_hits, 0);
        prop_assert_eq!(cold.report.cache_misses, circuits.len() as u64);

        // First cached run compiles (some jobs may hit if the batch holds
        // duplicate structures); second run must be answered from cache.
        let cache = CompilationCache::new(64);
        let first = compiler
            .compile_batch_parallel_with_cache(&circuits, &topo, jobs, Some(&cache))
            .unwrap();
        let warm = compiler
            .compile_batch_parallel_with_cache(&circuits, &topo, jobs, Some(&cache))
            .unwrap();
        prop_assert_eq!(warm.report.cache_hits, circuits.len() as u64);
        prop_assert_eq!(warm.report.cache_misses, 0);

        // Programs are byte-identical across cold, cached-cold, and warm
        // runs; reports match modulo wall times (two workers racing on
        // duplicate circuits may store either racer's timings).
        prop_assert!(results_match(&first.results, &cold.results));
        prop_assert!(results_match(&warm.results, &cold.results));
        for ((warm_program, _), (cold_program, _)) in warm.results.iter().zip(&cold.results) {
            prop_assert_eq!(warm_program, cold_program);
        }
    }
}

/// The acceptance workload: the full paper suite, parallel vs. sequential,
/// plus a warm-cache repeat. Not a proptest (the inputs are fixed), but it
/// lives here with the properties it completes.
#[test]
fn paper_suite_parallel_and_cached_matches_sequential() {
    use orchestrated_trios::benchmarks::{Benchmark, ExtendedBenchmark};
    use orchestrated_trios::topology::johannesburg;

    let circuits: Vec<Circuit> = Benchmark::ALL
        .into_iter()
        .map(|b| b.build())
        .chain(ExtendedBenchmark::ALL.into_iter().map(|b| b.build()))
        .collect();
    let topo = johannesburg();
    let compiler = Compiler::builder().seed(0).build();
    let sequential = compiler.compile_batch(&circuits, &topo).unwrap();
    for jobs in [2, 4] {
        let parallel = compiler
            .compile_batch_parallel(&circuits, &topo, jobs)
            .unwrap();
        assert_eq!(parallel, sequential, "jobs = {jobs}");
    }
    // Repeated batch over one cache: the second run must exceed a 90% hit
    // rate (it is in fact 100%: every job was inserted by the first run).
    let cache = CompilationCache::new(64);
    compiler
        .compile_batch_parallel_with_cache(&circuits, &topo, 2, Some(&cache))
        .unwrap();
    let warm = compiler
        .compile_batch_parallel_with_cache(&circuits, &topo, 2, Some(&cache))
        .unwrap();
    let rate = warm.report.cache_hit_rate().unwrap();
    assert!(rate > 0.9, "warm hit rate {rate} not > 0.9");
    assert_eq!(
        warm.results
            .iter()
            .map(|(p, _)| p.clone())
            .collect::<Vec<_>>(),
        sequential,
        "cached results must equal sequential compilation"
    );
}
