//! Malformed-QASM corpus: every broken input must surface as the
//! *specific* [`QasmError`] variant describing it — never a panic, and
//! never a misleading catch-all. This is the parser half of the
//! adversarial-input story: the fuzz harness feeds the compiler
//! generated circuits, and this corpus feeds the front end generated
//! garbage.

use orchestrated_trios::qasm::{parse, QasmError};

#[test]
fn truncated_headers_are_unsupported_version_errors() {
    for source in [
        "",
        "OPENQASM",
        "OPENQASM;",
        "qreg q[2];",
        "// only a comment\n",
    ] {
        assert!(
            matches!(parse(source), Err(QasmError::UnsupportedVersion { .. })),
            "source {source:?} should be UnsupportedVersion, got {:?}",
            parse(source)
        );
    }
    // A wrong version number is also an UnsupportedVersion, and the
    // message names what was found.
    let err = parse("OPENQASM 3.0;\nqreg q[2];").unwrap_err();
    assert!(matches!(err, QasmError::UnsupportedVersion { .. }));
    assert!(err.to_string().contains('3'), "{err}");
}

#[test]
fn truncated_statements_are_unexpected_token_errors() {
    for source in [
        "OPENQASM 2.0;\nqreg q[2",              // register never closed
        "OPENQASM 2.0;\nqreg q[2;",             // missing ']'
        "OPENQASM 2.0;\nqreg q[2]; h q[0]",     // missing ';'
        "OPENQASM 2.0;\ninclude",               // include without a path
        "OPENQASM 2.0;\nqreg q[1]; rz( q[0];",  // unclosed parameter list
        "OPENQASM 2.0;\ngate foo a { h a;",     // gate body never closed
        "OPENQASM 2.0;\nqreg q[1]; \"dangling", // unterminated string
    ] {
        assert!(
            matches!(parse(source), Err(QasmError::Unexpected { .. })),
            "source {source:?} should be Unexpected, got {:?}",
            parse(source)
        );
    }
}

#[test]
fn unexpected_errors_carry_line_numbers() {
    let source = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1\n";
    match parse(source).unwrap_err() {
        QasmError::Unexpected { line, .. } => {
            assert_eq!(line, 4, "error should point at the broken line")
        }
        other => panic!("expected Unexpected, got {other:?}"),
    }
}

#[test]
fn unknown_gates_name_the_offender() {
    let err = parse("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];").unwrap_err();
    match &err {
        QasmError::UnknownGate { line, name } => {
            assert_eq!(*line, 3);
            assert_eq!(name, "frobnicate");
        }
        other => panic!("expected UnknownGate, got {other:?}"),
    }
    // A gate declared in-file but applied is still unknown (bodies are
    // not expanded), and the message says so.
    let err = parse("OPENQASM 2.0;\ngate foo a { h a; }\nqreg q[1];\nfoo q[0];").unwrap_err();
    match &err {
        QasmError::UnknownGate { name, .. } => {
            assert!(name.contains("declared in-file"), "{name}")
        }
        other => panic!("expected UnknownGate, got {other:?}"),
    }
}

#[test]
fn bad_register_indices_are_bad_references() {
    for source in [
        "OPENQASM 2.0;\nqreg q[2];\nh q[2];",        // index == size
        "OPENQASM 2.0;\nqreg q[2];\nh q[99];",       // far out of range
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0], r[0];", // undeclared register
        "OPENQASM 2.0;\nqreg q[1];\nmeasure q[0] -> c[0];", // undeclared creg
        "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure q[0] -> c[5];", // creg index
    ] {
        assert!(
            matches!(parse(source), Err(QasmError::BadReference { .. })),
            "source {source:?} should be BadReference, got {:?}",
            parse(source)
        );
    }
    // The reference description names the register.
    let err = parse("OPENQASM 2.0;\nqreg q[2];\ncx q[0], r[0];").unwrap_err();
    assert!(err.to_string().contains("'r'"), "{err}");
}

#[test]
fn arity_mismatches_are_wrong_arity_errors() {
    for source in [
        "OPENQASM 2.0;\nqreg q[3];\ncx q[0], q[1], q[2];", // too many qubits
        "OPENQASM 2.0;\nqreg q[3];\nccx q[0], q[1];",      // too few qubits
        "OPENQASM 2.0;\nqreg q[1];\nrz q[0];",             // missing parameter
        "OPENQASM 2.0;\nqreg q[1];\nh(0.5) q[0];",         // spurious parameter
        "OPENQASM 2.0;\nqreg q[1];\nu3(1.0, 2.0) q[0];",   // wrong param count
    ] {
        assert!(
            matches!(parse(source), Err(QasmError::WrongArity { .. })),
            "source {source:?} should be WrongArity, got {:?}",
            parse(source)
        );
    }
    let err = parse("OPENQASM 2.0;\nqreg q[3];\nccx q[0], q[1];").unwrap_err();
    match err {
        QasmError::WrongArity {
            line,
            name,
            expected,
            found,
        } => {
            assert_eq!((line, name.as_str(), expected, found), (3, "ccx", 3, 2));
        }
        other => panic!("expected WrongArity, got {other:?}"),
    }
}

#[test]
fn duplicate_register_names_shadow_consistently_or_error() {
    // Two qregs with the same name: the parser keeps both declarations in
    // one flattened index space and resolves references to the first
    // match, so indices past the first register's size are BadReference —
    // pinned here so a future rewrite fails loudly if it changes.
    let source = "OPENQASM 2.0;\nqreg q[2];\nqreg q[2];\nh q[3];";
    assert!(
        matches!(parse(source), Err(QasmError::BadReference { .. })),
        "got {:?}",
        parse(source)
    );
    // In-range references to the shadowed name still parse.
    let ok = parse("OPENQASM 2.0;\nqreg q[2];\nqreg q[2];\nh q[1];").unwrap();
    assert_eq!(ok.num_qubits(), 4, "both registers occupy the index space");
}

#[test]
fn classical_control_and_degenerate_registers_are_rejected() {
    assert!(matches!(
        parse("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 1) x q[0];"),
        Err(QasmError::Unexpected { .. })
    ));
    for source in [
        "OPENQASM 2.0;\nqreg q[0];",   // zero-size register
        "OPENQASM 2.0;\nqreg q[-1];",  // negative size
        "OPENQASM 2.0;\nqreg q[1.5];", // fractional size
    ] {
        assert!(
            matches!(parse(source), Err(QasmError::Unexpected { .. })),
            "source {source:?} should be Unexpected, got {:?}",
            parse(source)
        );
    }
}

#[test]
fn error_displays_are_informative() {
    // Every variant's Display carries the line and enough context to fix
    // the file without reading parser source.
    let cases: Vec<(&str, &str)> = vec![
        ("OPENQASM 2.0;\nqreg q[2];\nh q[9];", "line 3"),
        ("OPENQASM 2.0;\nqreg q[1];\nmystery q[0];", "mystery"),
        ("OPENQASM 2.0;\nqreg q[1];\nrz q[0];", "rz"),
        ("OPENQASM 2.0;\nqreg q[2", "expected"),
    ];
    for (source, needle) in cases {
        let message = parse(source).unwrap_err().to_string();
        assert!(message.contains(needle), "{source:?} -> {message}");
    }
}
