//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Reasons a simulation request can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The register is too large for dense simulation.
    TooManyQubits {
        /// Requested register width.
        requested: usize,
        /// Hard cap for this simulator.
        max: usize,
    },
    /// A non-unitary instruction (measurement) reached a unitary-only path.
    NonUnitary {
        /// Index of the instruction in its circuit.
        instruction: usize,
    },
    /// Circuit widths (or a layout length) disagree.
    WidthMismatch {
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// A gate is outside the backend's supported set (e.g. a T gate on
    /// the stabilizer backend).
    UnsupportedGate {
        /// Display form of the offending gate.
        gate: String,
        /// Backend that rejected it.
        backend: &'static str,
    },
    /// The sparse state grew past its nonzero-amplitude budget; the
    /// circuit is too entangling for sparse simulation at this budget.
    StateTooDense {
        /// Nonzero amplitudes reached when the budget tripped.
        terms: usize,
        /// The configured budget.
        max_terms: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, max } => write!(
                f,
                "dense simulation of {requested} qubits exceeds the {max}-qubit cap"
            ),
            SimError::NonUnitary { instruction } => write!(
                f,
                "instruction {instruction} is a measurement; this operation requires a unitary circuit"
            ),
            SimError::WidthMismatch { expected, actual } => {
                write!(f, "expected width {expected}, got {actual}")
            }
            SimError::UnsupportedGate { gate, backend } => {
                write!(f, "gate {gate} is not supported by the {backend} backend")
            }
            SimError::StateTooDense { terms, max_terms } => write!(
                f,
                "sparse state reached {terms} nonzero amplitudes, over the {max_terms}-term budget"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::TooManyQubits {
            requested: 40,
            max: 26,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("26"));
    }
}
