//! The [`Simulator`] trait: backend-agnostic circuit verification.
//!
//! Three implementations ship:
//!
//! | backend | engine | width | gate set |
//! |---|---|---|---|
//! | [`DenseSimulator`] | statevector ([`State`]) | ≤ [`MAX_QUBITS`] | any unitary |
//! | [`StabilizerSimulator`] | CHP tableau ([`Tableau`]) | hundreds of qubits | Clifford |
//! | [`SparseSimulator`] | term map ([`SparseState`]) | ≤ [`SPARSE_MAX_QUBITS`] (more via compaction) | any unitary, ≤ `max_terms` amplitudes |
//!
//! The fuzz harness asks [`auto_backend`] to pick per cell: stabilizer
//! whenever the pair is all-Clifford (exact and effectively free at any
//! width), dense while the device fits under the dense cap (exhaustive
//! gate coverage), and sparse for non-Clifford circuits on wide devices —
//! which is exactly the situation for routed Toffoli networks on the
//! 20-qubit Johannesburg device or 127-qubit-class heavy-hex grids. Only
//! a sparse budget blow-up leaves a cell unverified.
//!
//! [`SparseState`]: crate::SparseState
//! [`SPARSE_MAX_QUBITS`]: crate::SPARSE_MAX_QUBITS

use crate::sparse::SparseSimulator;
use crate::state::SplitMix64;
use crate::tableau::first_non_clifford;
use crate::{SimError, Tableau, MAX_QUBITS};
use trios_ir::Circuit;

/// What a backend can simulate, for selection and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// Backend name used in reports and error messages.
    pub name: &'static str,
    /// Hard width limit, or `None` when width is memory-bound only.
    pub max_qubits: Option<usize>,
    /// Human description of the supported gate set.
    pub gate_set: &'static str,
}

/// Which simulation backend to use for equivalence checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick per circuit: stabilizer for all-Clifford pairs, dense when
    /// the register fits, sparse for non-Clifford circuits on wide
    /// registers, skip only on a sparse budget blow-up.
    #[default]
    Auto,
    /// Dense statevector only.
    Dense,
    /// Stabilizer tableau only.
    Stabilizer,
    /// Sparse term-map statevector only.
    Sparse,
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Backend::Auto),
            "dense" => Ok(Backend::Dense),
            "stabilizer" => Ok(Backend::Stabilizer),
            "sparse" => Ok(Backend::Sparse),
            other => Err(format!(
                "unknown backend '{other}' (expected auto, dense, stabilizer, or sparse)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Auto => "auto",
            Backend::Dense => "dense",
            Backend::Stabilizer => "stabilizer",
            Backend::Sparse => "sparse",
        })
    }
}

/// A verification backend: reports its capability and checks compiled
/// circuits against originals.
pub trait Simulator {
    /// Width and gate-set limits of this backend.
    fn capability(&self) -> Capability;

    /// `Ok` if this backend can simulate `circuit` (width and gate set).
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] or [`SimError::UnsupportedGate`]
    /// explaining the first obstacle.
    fn supports_circuit(&self, circuit: &Circuit) -> Result<(), SimError>;

    /// Probabilistic unitary-equivalence check on `trials` random inputs
    /// (global phase ignored).
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] if widths differ, plus anything
    /// [`Simulator::supports_circuit`] reports.
    fn circuits_equivalent(
        &self,
        a: &Circuit,
        b: &Circuit,
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError>;

    /// Verifies a routed physical-register circuit against the original
    /// logical circuit through its initial/final layouts, on `trials`
    /// random logical inputs.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] for bad layouts, plus anything
    /// [`Simulator::supports_circuit`] reports.
    fn compiled_equivalent(
        &self,
        original: &Circuit,
        compiled: &Circuit,
        initial_layout: &[usize],
        final_layout: &[usize],
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError>;
}

/// Dense statevector backend (any unitary gate, ≤ [`MAX_QUBITS`]).
#[derive(Debug, Clone, Copy)]
pub struct DenseSimulator {
    /// Amplitude tolerance for equivalence comparisons.
    pub eps: f64,
}

impl Default for DenseSimulator {
    fn default() -> Self {
        DenseSimulator { eps: 1e-7 }
    }
}

impl DenseSimulator {
    /// A dense backend with the given amplitude tolerance.
    pub fn new(eps: f64) -> Self {
        DenseSimulator { eps }
    }
}

impl Simulator for DenseSimulator {
    fn capability(&self) -> Capability {
        Capability {
            name: "dense",
            max_qubits: Some(MAX_QUBITS),
            gate_set: "any unitary gate",
        }
    }

    fn supports_circuit(&self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: circuit.num_qubits(),
                max: MAX_QUBITS,
            });
        }
        Ok(())
    }

    fn circuits_equivalent(
        &self,
        a: &Circuit,
        b: &Circuit,
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        crate::circuits_equivalent_sampled(a, b, trials, seed, self.eps)
    }

    fn compiled_equivalent(
        &self,
        original: &Circuit,
        compiled: &Circuit,
        initial_layout: &[usize],
        final_layout: &[usize],
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        crate::compiled_equivalent(
            original,
            compiled,
            initial_layout,
            final_layout,
            trials,
            seed,
            self.eps,
        )
    }
}

/// Stabilizer tableau backend (Clifford gates, hundreds of qubits).
///
/// Equivalence trials prepare seeded random *stabilizer* states (a random
/// word of H/S/CX gates on the logical register), push them through both
/// sides, and compare canonical stabilizer groups exactly — no floating
/// point in the comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct StabilizerSimulator;

impl StabilizerSimulator {
    /// The stabilizer backend.
    pub fn new() -> Self {
        StabilizerSimulator
    }
}

/// A seeded random Clifford word (H/S/CX) on `n` qubits, used to prepare
/// random stabilizer states for equivalence trials.
fn random_clifford_prep(n: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(n);
    let gates = 3 * n + 2;
    for _ in 0..gates {
        let q = (rng.next_u64() % n as u64) as usize;
        match rng.next_u64() % 10 {
            0..=3 => {
                c.h(q);
            }
            4..=6 => {
                c.s(q);
            }
            _ if n >= 2 => {
                let mut t = (rng.next_u64() % (n as u64 - 1)) as usize;
                if t >= q {
                    t += 1;
                }
                c.cx(q, t);
            }
            _ => {
                c.h(q);
            }
        }
    }
    c
}

impl Simulator for StabilizerSimulator {
    fn capability(&self) -> Capability {
        Capability {
            name: "stabilizer",
            max_qubits: None,
            gate_set: "Clifford gates (H, S, Paulis, CX, CZ, SWAP, and any 1q Clifford unitary)",
        }
    }

    fn supports_circuit(&self, circuit: &Circuit) -> Result<(), SimError> {
        match first_non_clifford(circuit) {
            None => Ok(()),
            Some(gate) => Err(SimError::UnsupportedGate {
                gate: gate.to_string(),
                backend: "stabilizer",
            }),
        }
    }

    fn circuits_equivalent(
        &self,
        a: &Circuit,
        b: &Circuit,
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        if a.num_qubits() != b.num_qubits() {
            return Err(SimError::WidthMismatch {
                expected: a.num_qubits(),
                actual: b.num_qubits(),
            });
        }
        let identity: Vec<usize> = (0..a.num_qubits()).collect();
        self.compiled_equivalent(a, b, &identity, &identity, trials, seed)
    }

    fn compiled_equivalent(
        &self,
        original: &Circuit,
        compiled: &Circuit,
        initial_layout: &[usize],
        final_layout: &[usize],
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        let n_log = original.num_qubits();
        let n_phys = compiled.num_qubits();
        for layout in [initial_layout, final_layout] {
            if layout.len() != n_log {
                return Err(SimError::WidthMismatch {
                    expected: n_log,
                    actual: layout.len(),
                });
            }
            if layout.iter().any(|&p| p >= n_phys) {
                return Err(SimError::WidthMismatch {
                    expected: n_phys,
                    actual: layout.iter().copied().max().unwrap_or(0) + 1,
                });
            }
        }
        self.supports_circuit(original)?;
        self.supports_circuit(compiled)?;

        for t in 0..trials.max(1) {
            let prep = random_clifford_prep(n_log, seed.wrapping_add(t as u64));

            // Compiled side: prep embedded through the initial layout,
            // then the physical circuit verbatim.
            let mut got = Tableau::new(n_phys);
            got.apply_circuit_mapped(&prep, initial_layout)?;
            got.apply_circuit(compiled)?;

            // Reference side: prep and original both embedded through the
            // final layout (embedding commutes with circuit application;
            // unmapped physical qubits stay |0⟩ on both sides).
            let mut expected = Tableau::new(n_phys);
            expected.apply_circuit_mapped(&prep, final_layout)?;
            expected.apply_circuit_mapped(original, final_layout)?;

            if !got.state_eq(&expected) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Picks a backend for verifying `circuits` on a `width`-qubit register:
/// stabilizer when every circuit is Clifford (exact and effectively free
/// at any width), else dense while `width ≤ max_dense_qubits`, else
/// sparse with the given `max_terms` budget, else `None` (equivalence
/// must be skipped). A sparse pick can still abort mid-check with
/// [`SimError::StateTooDense`] if the circuits entangle past the budget.
pub fn auto_backend(
    width: usize,
    circuits: &[&Circuit],
    max_dense_qubits: usize,
    max_terms: usize,
) -> Option<Box<dyn Simulator>> {
    let stab = StabilizerSimulator::new();
    if circuits.iter().all(|c| stab.supports_circuit(c).is_ok()) {
        return Some(Box::new(stab));
    }
    if width <= max_dense_qubits.min(MAX_QUBITS) {
        return Some(Box::new(DenseSimulator::default()));
    }
    let sparse = SparseSimulator::with_max_terms(max_terms);
    if circuits.iter().all(|c| sparse.supports_circuit(c).is_ok()) {
        return Some(Box::new(sparse));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_displays() {
        for (s, b) in [
            ("auto", Backend::Auto),
            ("dense", Backend::Dense),
            ("stabilizer", Backend::Stabilizer),
            ("sparse", Backend::Sparse),
        ] {
            assert_eq!(s.parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), s);
        }
        assert!("statevector".parse::<Backend>().is_err());
    }

    #[test]
    fn capabilities_describe_backends() {
        assert_eq!(DenseSimulator::default().capability().name, "dense");
        assert_eq!(
            DenseSimulator::default().capability().max_qubits,
            Some(MAX_QUBITS)
        );
        assert_eq!(StabilizerSimulator::new().capability().max_qubits, None);
    }

    #[test]
    fn support_checks_report_the_obstacle() {
        let mut t_circ = Circuit::new(2);
        t_circ.h(0).t(0).cx(0, 1);
        assert!(DenseSimulator::default().supports_circuit(&t_circ).is_ok());
        assert!(matches!(
            StabilizerSimulator::new().supports_circuit(&t_circ),
            Err(SimError::UnsupportedGate { .. })
        ));
        let wide = Circuit::new(MAX_QUBITS + 4);
        assert!(matches!(
            DenseSimulator::default().supports_circuit(&wide),
            Err(SimError::TooManyQubits { .. })
        ));
        assert!(StabilizerSimulator::new().supports_circuit(&wide).is_ok());
    }

    #[test]
    fn both_backends_agree_on_a_clifford_pair() {
        // CZ = H(t)·CX·H(t): equivalent; CZ vs CX: not.
        let mut cz = Circuit::new(2);
        cz.cz(0, 1);
        let mut hch = Circuit::new(2);
        hch.h(1).cx(0, 1).h(1);
        let mut cx = Circuit::new(2);
        cx.cx(0, 1);
        for sim in [
            Box::new(DenseSimulator::default()) as Box<dyn Simulator>,
            Box::new(StabilizerSimulator::new()),
        ] {
            let name = sim.capability().name;
            assert!(
                sim.circuits_equivalent(&cz, &hch, 4, 11).unwrap(),
                "{name} rejected an equivalent pair"
            );
            assert!(
                !sim.circuits_equivalent(&cz, &cx, 4, 11).unwrap(),
                "{name} accepted an inequivalent pair"
            );
        }
    }

    #[test]
    fn stabilizer_compiled_equivalence_handles_routing_swaps() {
        // Same scenario the dense tests pin: CX(0,1) compiled with a SWAP
        // that moves logical 1 from phys 2 to phys 1.
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut compiled = Circuit::new(3);
        compiled.swap(2, 1).cx(0, 1);
        let sim = StabilizerSimulator::new();
        assert!(sim
            .compiled_equivalent(&original, &compiled, &[0, 2], &[0, 1], 4, 5)
            .unwrap());
        // Claiming data did not move must fail.
        assert!(!sim
            .compiled_equivalent(&original, &compiled, &[0, 2], &[0, 2], 4, 5)
            .unwrap());
    }

    #[test]
    fn stabilizer_detects_a_dropped_gate_at_scale() {
        // 60-qubit line-routed GHZ-ish circuit with one CX removed: the
        // tableau check must notice, far beyond dense reach.
        let n = 60;
        let mut full = Circuit::new(n);
        full.h(0);
        for q in 1..n {
            full.cx(q - 1, q);
        }
        let missing_instrs: Vec<_> = full.iter().take(n - 1).cloned().collect();
        let missing = Circuit::from_instructions(n, missing_instrs).unwrap();
        let identity: Vec<usize> = (0..n).collect();
        let sim = StabilizerSimulator::new();
        assert!(sim
            .compiled_equivalent(&full, &full, &identity, &identity, 2, 3)
            .unwrap());
        assert!(!sim
            .compiled_equivalent(&full, &missing, &identity, &identity, 4, 3)
            .unwrap());
    }

    #[test]
    fn auto_backend_picks_by_gate_set_then_width() {
        let mut cliff = Circuit::new(20);
        cliff.h(0).cx(0, 1);
        let mut t_circ = Circuit::new(20);
        t_circ.h(0).t(0);
        let mut small_t = Circuit::new(4);
        small_t.t(0);
        let budget = crate::DEFAULT_MAX_TERMS;

        // All-Clifford pairs go to the stabilizer at *any* width — even
        // ones a dense simulation could also handle.
        let stab = auto_backend(20, &[&cliff], 8, budget).unwrap();
        assert_eq!(stab.capability().name, "stabilizer");
        let stab_small = auto_backend(4, &[&Circuit::new(4)], 8, budget).unwrap();
        assert_eq!(stab_small.capability().name, "stabilizer");

        // Non-Clifford under the dense cap: dense.
        let dense = auto_backend(4, &[&small_t], 8, budget).unwrap();
        assert_eq!(dense.capability().name, "dense");

        // Non-Clifford past the dense cap: sparse, not a skip.
        let sparse = auto_backend(20, &[&cliff, &t_circ], 8, budget).unwrap();
        assert_eq!(sparse.capability().name, "sparse");
    }

    #[test]
    fn random_prep_is_deterministic_per_seed() {
        let a = random_clifford_prep(6, 9);
        let b = random_clifford_prep(6, 9);
        let c = random_clifford_prep(6, 10);
        assert_eq!(a.instructions(), b.instructions());
        assert_ne!(a.instructions(), c.instructions());
        assert!(first_non_clifford(&a).is_none());
    }

    #[test]
    fn single_qubit_prep_avoids_cx() {
        let c = random_clifford_prep(1, 4);
        assert!(c.iter().all(|i| i.qubits().len() == 1));
    }
}
