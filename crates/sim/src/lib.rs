//! # trios-sim — statevector simulation for compiler verification
//!
//! A small, dependency-free dense statevector simulator. Its job in the
//! Orchestrated Trios reproduction is *verification*: every Toffoli/CnX
//! decomposition and every routed circuit is checked against the original
//! program's semantics (see [`circuits_equivalent`] and
//! [`compiled_equivalent`]), and the Grover example uses it to demonstrate
//! end-to-end correctness of compiled programs.
//!
//! The crate also hosts the 2×2 matrix utilities ([`zyz_decompose`],
//! [`single_qubit_matrix`]) that the optimizer's single-qubit-merge pass
//! uses to resynthesize gate runs into one `u3`.
//!
//! # Examples
//!
//! ```
//! use trios_ir::Circuit;
//! use trios_sim::{circuits_equivalent, State};
//!
//! // CZ = H(t) CX H(t)
//! let mut a = Circuit::new(2);
//! a.cz(0, 1);
//! let mut b = Circuit::new(2);
//! b.h(1).cx(0, 1).h(1);
//! assert!(circuits_equivalent(&a, &b, 1e-9)?);
//! # Ok::<(), trios_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod complex;
mod equivalence;
mod error;
mod matrix;
mod sparse;
mod state;
mod tableau;

pub use backend::{
    auto_backend, Backend, Capability, DenseSimulator, Simulator, StabilizerSimulator,
};
pub use complex::C64;
pub use equivalence::{
    circuits_equivalent, circuits_equivalent_sampled, compiled_equivalent, embed,
};
pub use error::SimError;
pub use matrix::{
    mat2_adjoint, mat2_approx_eq, mat2_eq_up_to_phase, mat2_mul, single_qubit_matrix, u3_matrix,
    xpow_matrix, zyz_decompose, Mat2, ZyzAngles, MAT2_IDENTITY,
};
pub use sparse::{SparseSimulator, SparseState, DEFAULT_MAX_TERMS, SPARSE_MAX_QUBITS};
pub use state::{State, MAX_QUBITS};
pub use tableau::{first_non_clifford, strip_t_gates, Tableau};
