//! A minimal complex-number type.
//!
//! Implemented in-crate (rather than pulling in `num-complex`) to keep the
//! simulator dependency-free; only the operations the simulator and the
//! single-qubit resynthesis pass need are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use trios_sim::C64;
///
/// let i = C64::I;
/// assert!((i * i + C64::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a real number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` with unit magnitude.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// `true` if `self` and `other` differ by less than `eps` in magnitude.
    #[inline]
    pub fn approx_eq(self, other: C64, eps: f64) -> bool {
        (self - other).abs() < eps
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        assert!((a + b - a - b).abs() < 1e-15);
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((-a + a).abs() < 1e-15);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C64::I * C64::I).approx_eq(-C64::ONE, 1e-15));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        assert!((z.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sum_accumulates() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(C64::new(6.0, 4.0), 1e-12));
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(C64::new(1.0, -1.0).to_string(), "1.000000-1.000000i");
    }
}
