//! 2×2 unitary matrices for single-qubit gates, plus the ZYZ resynthesis
//! used by the single-qubit-merge optimization pass.

use crate::C64;
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4, PI};
use trios_ir::Gate;

/// A 2×2 complex matrix in row-major order.
pub type Mat2 = [[C64; 2]; 2];

/// The 2×2 identity.
pub const MAT2_IDENTITY: Mat2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];

/// Matrix product `a · b`.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// Conjugate transpose.
pub fn mat2_adjoint(m: &Mat2) -> Mat2 {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// `true` if `a` and `b` are entrywise equal within `eps`.
pub fn mat2_approx_eq(a: &Mat2, b: &Mat2, eps: f64) -> bool {
    (0..2).all(|r| (0..2).all(|c| a[r][c].approx_eq(b[r][c], eps)))
}

/// `true` if `a = e^{iα} b` for some phase α, within `eps`.
pub fn mat2_eq_up_to_phase(a: &Mat2, b: &Mat2, eps: f64) -> bool {
    // Find the largest entry of b to fix the phase.
    let (mut br, mut bc) = (0, 0);
    for r in 0..2 {
        for c in 0..2 {
            if b[r][c].abs() > b[br][bc].abs() {
                (br, bc) = (r, c);
            }
        }
    }
    if b[br][bc].abs() < eps {
        return mat2_approx_eq(a, b, eps);
    }
    let phase = a[br][bc] / b[br][bc];
    if (phase.abs() - 1.0).abs() > eps {
        return false;
    }
    (0..2).all(|r| (0..2).all(|c| a[r][c].approx_eq(b[r][c] * phase, eps)))
}

/// The matrix of the IBM `u3(θ, φ, λ)` gate.
pub fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        [C64::real(c), -C64::cis(lambda) * s],
        [C64::cis(phi) * s, C64::cis(phi + lambda) * c],
    ]
}

/// The matrix of `X^t` (eigenvalues 1 and `e^{iπt}`), the convention under
/// which `Sx = X^{1/2}` and controlled fractional-X ladders compose exactly.
pub fn xpow_matrix(t: f64) -> Mat2 {
    let e = C64::cis(PI * t);
    let p = (C64::ONE + e).scale(0.5);
    let m = (C64::ONE - e).scale(0.5);
    [[p, m], [m, p]]
}

/// The 2×2 unitary of a single-qubit gate, or `None` for multi-qubit gates
/// and measurement.
pub fn single_qubit_matrix(gate: Gate) -> Option<Mat2> {
    let h = C64::real(FRAC_1_SQRT_2);
    Some(match gate {
        Gate::I => MAT2_IDENTITY,
        Gate::H => [[h, h], [h, -h]],
        Gate::X => [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]],
        Gate::Y => [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]],
        Gate::Z => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]],
        Gate::S => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]],
        Gate::Sdg => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]],
        Gate::T => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(FRAC_PI_4)]],
        Gate::Tdg => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(-FRAC_PI_4)]],
        Gate::Sx => xpow_matrix(0.5),
        Gate::Sxdg => xpow_matrix(-0.5),
        Gate::Rx(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            [
                [C64::real(c), C64::new(0.0, -s)],
                [C64::new(0.0, -s), C64::real(c)],
            ]
        }
        Gate::Ry(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]]
        }
        Gate::Rz(a) => [
            [C64::cis(-a / 2.0), C64::ZERO],
            [C64::ZERO, C64::cis(a / 2.0)],
        ],
        Gate::U1(l) => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(l)]],
        Gate::U2(phi, lam) => u3_matrix(PI / 2.0, phi, lam),
        Gate::U3(t, p, l) => u3_matrix(t, p, l),
        Gate::Xpow(t) => xpow_matrix(t),
        _ => return None,
    })
}

/// Result of [`zyz_decompose`]: `U = e^{iα}·u3(θ, φ, λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzAngles {
    /// Polar rotation angle θ.
    pub theta: f64,
    /// First Z angle φ.
    pub phi: f64,
    /// Second Z angle λ.
    pub lambda: f64,
    /// Global phase α.
    pub phase: f64,
}

/// Decomposes any 2×2 unitary into `e^{iα}·u3(θ, φ, λ)`.
///
/// Used by the single-qubit-merge pass to resynthesize a run of 1q gates
/// into one hardware `u3`.
pub fn zyz_decompose(m: &Mat2) -> ZyzAngles {
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    let det_phase = det.arg() / 2.0;
    // V = e^{-i det_phase} · m has determinant 1 (SU(2)).
    let g = C64::cis(-det_phase);
    let v = [[m[0][0] * g, m[0][1] * g], [m[1][0] * g, m[1][1] * g]];

    let theta = 2.0 * v[1][0].abs().atan2(v[0][0].abs());
    let half = theta / 2.0;
    let (a, b) = if half.sin().abs() < 1e-10 {
        // Diagonal: only φ+λ is determined; put it all in (φ+λ)/2 = arg(v11).
        (v[1][1].arg(), 0.0)
    } else if half.cos().abs() < 1e-10 {
        // Anti-diagonal: only φ−λ is determined.
        (0.0, v[1][0].arg())
    } else {
        (v[1][1].arg(), v[1][0].arg())
    };
    let phi = a + b;
    let lambda = a - b;
    let phase = det_phase - a;
    ZyzAngles {
        theta,
        phi,
        lambda,
        phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_unitary(m: &Mat2) {
        let prod = mat2_mul(&mat2_adjoint(m), m);
        assert!(
            mat2_approx_eq(&prod, &MAT2_IDENTITY, 1e-9),
            "matrix is not unitary: {m:?}"
        );
    }

    #[test]
    fn all_single_qubit_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.7),
            Gate::Ry(1.3),
            Gate::Rz(-0.4),
            Gate::U1(2.0),
            Gate::U2(0.3, 1.1),
            Gate::U3(0.9, -0.2, 0.5),
            Gate::Xpow(0.3),
        ];
        for g in gates {
            assert_unitary(&single_qubit_matrix(g).unwrap());
        }
    }

    #[test]
    fn multi_qubit_gates_have_no_1q_matrix() {
        assert!(single_qubit_matrix(Gate::Cx).is_none());
        assert!(single_qubit_matrix(Gate::Ccx).is_none());
        assert!(single_qubit_matrix(Gate::Measure).is_none());
    }

    #[test]
    fn sx_is_sqrt_x() {
        let sx = single_qubit_matrix(Gate::Sx).unwrap();
        let x = single_qubit_matrix(Gate::X).unwrap();
        assert!(mat2_approx_eq(&mat2_mul(&sx, &sx), &x, 1e-12));
    }

    #[test]
    fn xpow_composes_additively() {
        let a = xpow_matrix(0.3);
        let b = xpow_matrix(0.45);
        let ab = mat2_mul(&a, &b);
        assert!(mat2_approx_eq(&ab, &xpow_matrix(0.75), 1e-12));
    }

    #[test]
    fn inverse_gates_multiply_to_identity() {
        for g in [
            Gate::T,
            Gate::S,
            Gate::Sx,
            Gate::Rx(0.8),
            Gate::U2(0.2, 0.9),
        ] {
            let m = single_qubit_matrix(g).unwrap();
            let mi = single_qubit_matrix(g.inverse().unwrap()).unwrap();
            assert!(
                mat2_eq_up_to_phase(&mat2_mul(&m, &mi), &MAT2_IDENTITY, 1e-9),
                "gate {g:?}"
            );
        }
    }

    #[test]
    fn hadamard_equals_u2_0_pi() {
        let h = single_qubit_matrix(Gate::H).unwrap();
        let u2 = single_qubit_matrix(Gate::U2(0.0, std::f64::consts::PI)).unwrap();
        assert!(mat2_approx_eq(&h, &u2, 1e-12));
    }

    #[test]
    fn zyz_round_trips_named_gates() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(1.234),
            Gate::Ry(-0.77),
            Gate::Rz(2.5),
            Gate::U1(0.4),
            Gate::U2(0.1, -1.9),
            Gate::U3(2.2, 0.6, -0.3),
            Gate::Xpow(0.37),
        ] {
            let m = single_qubit_matrix(g).unwrap();
            let z = zyz_decompose(&m);
            let rebuilt = u3_matrix(z.theta, z.phi, z.lambda);
            let phased: Mat2 = [
                [
                    rebuilt[0][0] * C64::cis(z.phase),
                    rebuilt[0][1] * C64::cis(z.phase),
                ],
                [
                    rebuilt[1][0] * C64::cis(z.phase),
                    rebuilt[1][1] * C64::cis(z.phase),
                ],
            ];
            assert!(
                mat2_approx_eq(&phased, &m, 1e-9),
                "zyz round trip failed for {g:?}: {z:?}"
            );
        }
    }

    #[test]
    fn zyz_round_trips_products() {
        // Deterministic pseudo-random products of gates.
        let gates = [
            Gate::H,
            Gate::T,
            Gate::Sx,
            Gate::Rz(0.9),
            Gate::Ry(1.7),
            Gate::U3(0.8, 2.0, -1.1),
        ];
        let mut m = MAT2_IDENTITY;
        for (i, g) in gates.iter().cycle().take(25).enumerate() {
            m = mat2_mul(&single_qubit_matrix(*g).unwrap(), &m);
            if i % 3 == 0 {
                let z = zyz_decompose(&m);
                let rebuilt = u3_matrix(z.theta, z.phi, z.lambda);
                assert!(mat2_eq_up_to_phase(&m, &rebuilt, 1e-9), "step {i}: {z:?}");
            }
        }
    }
}
