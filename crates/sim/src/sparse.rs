//! Sparse statevector simulation: a hash map over nonzero amplitudes.
//!
//! The dense backend caps out at [`MAX_QUBITS`](crate::MAX_QUBITS) because
//! it materializes all 2^n amplitudes; the stabilizer backend scales to
//! hundreds of qubits but only speaks Clifford. The paper's workloads —
//! ripple-carry adders, Toffoli networks, CnX ladders — are non-Clifford
//! yet *low-entanglement*: pushed through from a basis-ish input they keep
//! a tiny number of nonzero amplitudes at any register width. This module
//! exploits that: [`SparseState`] stores only the nonzero terms, keyed by
//! basis index, and [`SparseSimulator`] verifies compiled circuits exactly
//! at full device width (Johannesburg's 20 qubits, 127-qubit heavy-hex)
//! as long as the term count stays under a [`max_terms`] budget. When a
//! circuit *does* entangle past the budget the simulator reports
//! [`SimError::StateTooDense`] instead of thrashing — never a wrong
//! verdict.
//!
//! Keys are 256-bit basis indices (`[u64; 4]`), hashed with a vendored
//! Fx-style multiply hasher so map behaviour is fully deterministic for a
//! given seed; registers wider than [`SPARSE_MAX_QUBITS`] are handled by
//! compacting onto the qubits a cell actually touches (routed circuits on
//! kiloqubit devices use a small fraction of the register).
//!
//! [`max_terms`]: SparseState::max_terms

use crate::state::SplitMix64;
use crate::{single_qubit_matrix, xpow_matrix, Capability, Mat2, SimError, Simulator, C64};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use trios_ir::{Circuit, Gate, Instruction, Qubit};

/// Widest register a [`SparseState`] can hold directly (the basis-index
/// key is 4×64 bits). [`SparseSimulator`] stretches past this for routed
/// circuits by compacting onto the touched qubits.
pub const SPARSE_MAX_QUBITS: usize = KEY_WORDS * 64;

/// Default nonzero-amplitude budget (~one million terms, comparable in
/// memory to a 20-qubit dense state).
pub const DEFAULT_MAX_TERMS: usize = 1 << 20;

const KEY_WORDS: usize = 4;

/// A 256-bit basis index, little-endian in both words and bits.
type Key = [u64; KEY_WORDS];

const ZERO_KEY: Key = [0; KEY_WORDS];

/// Amplitudes with squared magnitude below this are dropped after each
/// non-permutation gate; interference residue (e.g. the re-merged branches
/// of a decomposed Toffoli's H…H sandwich) sits at ~1e-16, far below any
/// comparison tolerance.
const PRUNE_NORM_SQR: f64 = 1e-28;

#[inline]
fn key_bit(key: &Key, q: usize) -> bool {
    key[q / 64] >> (q % 64) & 1 == 1
}

#[inline]
fn key_flip(mut key: Key, q: usize) -> Key {
    key[q / 64] ^= 1 << (q % 64);
    key
}

/// FxHash-style multiply hasher (vendored: the crate is dependency-free).
/// Unlike `RandomState` it is *deterministic*, so sparse-state behaviour
/// is byte-identical across runs for a given seed.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;
type TermMap = HashMap<Key, C64, FxBuildHasher>;

fn term_map(capacity: usize) -> TermMap {
    TermMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// A statevector stored as a map from basis index to nonzero amplitude.
#[derive(Debug, Clone)]
pub struct SparseState {
    num_qubits: usize,
    terms: TermMap,
    max_terms: usize,
}

impl SparseState {
    /// The all-zeros computational basis state |0…0⟩ on `num_qubits`
    /// qubits, with the default term budget.
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] past [`SPARSE_MAX_QUBITS`].
    pub fn zero(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > SPARSE_MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: SPARSE_MAX_QUBITS,
            });
        }
        let mut terms = term_map(1);
        terms.insert(ZERO_KEY, C64::ONE);
        Ok(SparseState {
            num_qubits,
            terms,
            max_terms: DEFAULT_MAX_TERMS,
        })
    }

    /// Replaces the nonzero-amplitude budget.
    #[must_use]
    pub fn with_max_terms(mut self, max_terms: usize) -> Self {
        self.max_terms = max_terms.max(1);
        self
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Current number of stored nonzero amplitudes.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The nonzero-amplitude budget.
    pub fn max_terms(&self) -> usize {
        self.max_terms
    }

    /// The amplitude of basis state `index` (zero when absent). Only the
    /// low 64 bits of the basis index are addressable through this
    /// convenience form; it exists for tests and benches on ≤64 qubits.
    pub fn amplitude(&self, index: u64) -> C64 {
        let mut key = ZERO_KEY;
        key[0] = index;
        self.terms.get(&key).copied().unwrap_or(C64::ZERO)
    }

    /// The ℓ² norm (1 for any valid quantum state, up to pruning residue).
    pub fn norm(&self) -> f64 {
        self.terms
            .values()
            .map(|a| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// The dense amplitude vector, for cross-checking against [`State`]
    /// in tests and benches.
    ///
    /// [`State`]: crate::State
    ///
    /// # Errors
    ///
    /// [`SimError::TooManyQubits`] when 2^n does not fit in memory
    /// (width over [`MAX_QUBITS`](crate::MAX_QUBITS)).
    pub fn dense_amplitudes(&self) -> Result<Vec<C64>, SimError> {
        if self.num_qubits > crate::MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: self.num_qubits,
                max: crate::MAX_QUBITS,
            });
        }
        let mut amps = vec![C64::ZERO; 1usize << self.num_qubits];
        for (key, &amp) in &self.terms {
            amps[key[0] as usize] = amp;
        }
        Ok(amps)
    }

    /// Applies all unitary instructions of `circuit`, skipping
    /// measurements (mirroring [`State::apply_circuit`]).
    ///
    /// [`State::apply_circuit`]: crate::State::apply_circuit
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] if the circuit is wider than the state,
    /// [`SimError::StateTooDense`] when a gate pushes the nonzero-term
    /// count past the budget, [`SimError::UnsupportedGate`] for gates
    /// without a unitary action.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::WidthMismatch {
                expected: self.num_qubits,
                actual: circuit.num_qubits(),
            });
        }
        for instr in circuit.iter() {
            if instr.gate().is_measurement() {
                continue;
            }
            self.try_apply(instr)?;
        }
        Ok(())
    }

    /// Applies `circuit` with logical qubit `q` acting on physical qubit
    /// `map[q]`, skipping measurements. Mirrors
    /// [`Tableau::apply_circuit_mapped`](crate::Tableau::apply_circuit_mapped).
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] for a short or out-of-range map, plus
    /// anything [`SparseState::try_apply`] reports.
    pub fn apply_circuit_mapped(
        &mut self,
        circuit: &Circuit,
        map: &[usize],
    ) -> Result<(), SimError> {
        if map.len() < circuit.num_qubits() {
            return Err(SimError::WidthMismatch {
                expected: circuit.num_qubits(),
                actual: map.len(),
            });
        }
        if map.iter().any(|&p| p >= self.num_qubits) {
            return Err(SimError::WidthMismatch {
                expected: self.num_qubits,
                actual: map.iter().copied().max().unwrap_or(0) + 1,
            });
        }
        for instr in circuit.iter() {
            if instr.gate().is_measurement() {
                continue;
            }
            let mapped: Vec<Qubit> = instr
                .qubits()
                .iter()
                .map(|q| Qubit::new(map[q.index()]))
                .collect();
            self.try_apply(&Instruction::new(instr.gate(), &mapped))?;
        }
        Ok(())
    }

    /// Applies one unitary instruction.
    ///
    /// Diagonal and permutation gates (the bulk of routed Toffoli
    /// networks) never grow the term count; superposing gates (H, Y, √X,
    /// rotations, controlled powers) at most double it and are followed by
    /// a budget check.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] for out-of-range qubits,
    /// [`SimError::UnsupportedGate`] for measurements or gates without a
    /// matrix, [`SimError::StateTooDense`] past the term budget.
    pub fn try_apply(&mut self, instr: &Instruction) -> Result<(), SimError> {
        let qs = instr.qubits();
        for q in qs {
            if q.index() >= self.num_qubits {
                return Err(SimError::WidthMismatch {
                    expected: self.num_qubits,
                    actual: q.index() + 1,
                });
            }
        }
        let q = |i: usize| qs[i].index();
        match instr.gate() {
            Gate::Measure => Err(SimError::UnsupportedGate {
                gate: instr.gate().to_string(),
                backend: "sparse",
            }),
            Gate::I => Ok(()),
            Gate::X => {
                self.permute(|key| key_flip(key, q(0)));
                Ok(())
            }
            Gate::Cx => {
                let (c, t) = (q(0), q(1));
                self.permute(|key| {
                    if key_bit(&key, c) {
                        key_flip(key, t)
                    } else {
                        key
                    }
                });
                Ok(())
            }
            Gate::Ccx => {
                let (c1, c2, t) = (q(0), q(1), q(2));
                self.permute(|key| {
                    if key_bit(&key, c1) && key_bit(&key, c2) {
                        key_flip(key, t)
                    } else {
                        key
                    }
                });
                Ok(())
            }
            Gate::Swap => {
                let (a, b) = (q(0), q(1));
                self.permute(|key| {
                    if key_bit(&key, a) != key_bit(&key, b) {
                        key_flip(key_flip(key, a), b)
                    } else {
                        key
                    }
                });
                Ok(())
            }
            Gate::Cswap => {
                let (c, a, b) = (q(0), q(1), q(2));
                self.permute(|key| {
                    if key_bit(&key, c) && key_bit(&key, a) != key_bit(&key, b) {
                        key_flip(key_flip(key, a), b)
                    } else {
                        key
                    }
                });
                Ok(())
            }
            Gate::Z => {
                self.phase_where(&[q(0)], -C64::ONE);
                Ok(())
            }
            Gate::S => {
                self.phase_where(&[q(0)], C64::I);
                Ok(())
            }
            Gate::Sdg => {
                self.phase_where(&[q(0)], -C64::I);
                Ok(())
            }
            Gate::T => {
                self.phase_where(&[q(0)], C64::cis(std::f64::consts::FRAC_PI_4));
                Ok(())
            }
            Gate::Tdg => {
                self.phase_where(&[q(0)], C64::cis(-std::f64::consts::FRAC_PI_4));
                Ok(())
            }
            Gate::U1(l) => {
                self.phase_where(&[q(0)], C64::cis(l));
                Ok(())
            }
            Gate::Cz => {
                self.phase_where(&[q(0), q(1)], -C64::ONE);
                Ok(())
            }
            Gate::Cp(l) => {
                self.phase_where(&[q(0), q(1)], C64::cis(l));
                Ok(())
            }
            Gate::Ccz => {
                self.phase_where(&[q(0), q(1), q(2)], -C64::ONE);
                Ok(())
            }
            Gate::Cxpow(t) => {
                let m = xpow_matrix(t);
                self.apply_controlled_1q(q(0), q(1), &m)
            }
            g => match single_qubit_matrix(g) {
                Some(m) => self.apply_1q(q(0), &m),
                None => Err(SimError::UnsupportedGate {
                    gate: g.to_string(),
                    backend: "sparse",
                }),
            },
        }
    }

    /// Rewrites every basis index through the bijection `f` (X/CX/CCX/
    /// SWAP/CSWAP). Term count is preserved exactly.
    fn permute(&mut self, f: impl Fn(Key) -> Key) {
        let mut out = term_map(self.terms.len());
        for (key, amp) in self.terms.drain() {
            out.insert(f(key), amp);
        }
        self.terms = out;
    }

    /// Multiplies the amplitude of every basis state with all of `qubits`
    /// set by `phase` (Z/S/T/U1/CZ/CP/CCZ). Term count is preserved.
    fn phase_where(&mut self, qubits: &[usize], phase: C64) {
        for (key, amp) in self.terms.iter_mut() {
            if qubits.iter().all(|&q| key_bit(key, q)) {
                *amp *= phase;
            }
        }
    }

    /// General single-qubit gate: walks each touched |…0…⟩/|…1…⟩ pair
    /// once and rebuilds the map. A diagonal matrix short-circuits to an
    /// in-place scale.
    fn apply_1q(&mut self, q: usize, m: &Mat2) -> Result<(), SimError> {
        if m[0][1].norm_sqr() < PRUNE_NORM_SQR && m[1][0].norm_sqr() < PRUNE_NORM_SQR {
            let (m00, m11) = (m[0][0], m[1][1]);
            for (key, amp) in self.terms.iter_mut() {
                *amp *= if key_bit(key, q) { m11 } else { m00 };
            }
            return Ok(());
        }
        let mut out = term_map(self.terms.len().saturating_mul(2));
        for (&key, &amp) in &self.terms {
            let set = key_bit(&key, q);
            let lo = if set { key_flip(key, q) } else { key };
            if set && self.terms.contains_key(&lo) {
                continue; // this pair is handled from its |…0…⟩ member
            }
            let hi = key_flip(lo, q);
            let (a0, a1) = if set {
                (C64::ZERO, amp)
            } else {
                (amp, self.terms.get(&hi).copied().unwrap_or(C64::ZERO))
            };
            let n0 = m[0][0] * a0 + m[0][1] * a1;
            let n1 = m[1][0] * a0 + m[1][1] * a1;
            if n0.norm_sqr() >= PRUNE_NORM_SQR {
                out.insert(lo, n0);
            }
            if n1.norm_sqr() >= PRUNE_NORM_SQR {
                out.insert(hi, n1);
            }
        }
        self.terms = out;
        self.check_budget()
    }

    /// Controlled general single-qubit gate on target `t`: terms with the
    /// control clear pass through; the control-set subspace gets the pair
    /// walk of [`SparseState::apply_1q`].
    fn apply_controlled_1q(&mut self, c: usize, t: usize, m: &Mat2) -> Result<(), SimError> {
        let mut out = term_map(self.terms.len().saturating_mul(2));
        for (&key, &amp) in &self.terms {
            if !key_bit(&key, c) {
                out.insert(key, amp);
                continue;
            }
            let set = key_bit(&key, t);
            let lo = if set { key_flip(key, t) } else { key };
            if set && self.terms.contains_key(&lo) {
                continue; // lo also has the control set: handled there
            }
            let hi = key_flip(lo, t);
            let (a0, a1) = if set {
                (C64::ZERO, amp)
            } else {
                (amp, self.terms.get(&hi).copied().unwrap_or(C64::ZERO))
            };
            let n0 = m[0][0] * a0 + m[0][1] * a1;
            let n1 = m[1][0] * a0 + m[1][1] * a1;
            if n0.norm_sqr() >= PRUNE_NORM_SQR {
                out.insert(lo, n0);
            }
            if n1.norm_sqr() >= PRUNE_NORM_SQR {
                out.insert(hi, n1);
            }
        }
        self.terms = out;
        self.check_budget()
    }

    fn check_budget(&self) -> Result<(), SimError> {
        if self.terms.len() > self.max_terms {
            Err(SimError::StateTooDense {
                terms: self.terms.len(),
                max_terms: self.max_terms,
            })
        } else {
            Ok(())
        }
    }

    /// `true` when the two states are equal up to a global phase, with
    /// per-amplitude tolerance `eps`. The reference phase comes from
    /// `other`'s largest amplitude (ties broken by smallest basis index),
    /// so the verdict does not depend on hash-map iteration order.
    pub fn approx_eq_up_to_phase(&self, other: &SparseState, eps: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        let mut reference: Option<(&Key, C64)> = None;
        for (key, &amp) in &other.terms {
            reference = match reference {
                None => Some((key, amp)),
                Some((bk, ba)) => {
                    let d = amp.norm_sqr() - ba.norm_sqr();
                    if d > 0.0 || (d == 0.0 && key < bk) {
                        Some((key, amp))
                    } else {
                        Some((bk, ba))
                    }
                }
            };
        }
        let Some((rk, ra)) = reference else {
            // `other` is (numerically) the zero vector: equal only if we
            // are too.
            return self.terms.values().all(|a| a.abs() < eps);
        };
        let ours = self.terms.get(rk).copied().unwrap_or(C64::ZERO);
        let phase = ours / ra;
        if (phase.abs() - 1.0).abs() > eps {
            return false;
        }
        for (key, &amp) in &self.terms {
            let theirs = other.terms.get(key).copied().unwrap_or(C64::ZERO);
            if !(amp - theirs * phase).abs().is_finite() || (amp - theirs * phase).abs() > eps {
                return false;
            }
        }
        for (key, &amp) in &other.terms {
            if !self.terms.contains_key(key) && amp.abs() > eps {
                return false;
            }
        }
        true
    }
}

/// Sparse-statevector backend: any unitary gate, any width up to
/// [`SPARSE_MAX_QUBITS`] (and wider routed registers via compaction onto
/// the touched qubits), as long as the nonzero-amplitude count stays
/// under [`SparseSimulator::max_terms`].
///
/// Equivalence trials prepare a seeded low-entanglement input — random
/// bit flips, H on a handful of qubits, then a random word of
/// term-preserving S/T/CX mixing — so superpositions and relative phases
/// are both exercised while the input itself stays at ≤ 256 terms.
#[derive(Debug, Clone, Copy)]
pub struct SparseSimulator {
    /// Amplitude tolerance for equivalence comparisons.
    pub eps: f64,
    /// Nonzero-amplitude budget per simulated state.
    pub max_terms: usize,
}

impl Default for SparseSimulator {
    fn default() -> Self {
        SparseSimulator {
            eps: 1e-9,
            max_terms: DEFAULT_MAX_TERMS,
        }
    }
}

impl SparseSimulator {
    /// A sparse backend with the given tolerance and term budget.
    pub fn new(eps: f64, max_terms: usize) -> Self {
        SparseSimulator { eps, max_terms }
    }

    /// A sparse backend with the default tolerance and the given budget.
    pub fn with_max_terms(max_terms: usize) -> Self {
        SparseSimulator {
            max_terms,
            ..SparseSimulator::default()
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Simulator::compiled_equivalent shape
    fn run_layout_trials(
        &self,
        original: &Circuit,
        compiled: &Circuit,
        initial_layout: &[usize],
        final_layout: &[usize],
        n_phys: usize,
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        let n_log = original.num_qubits();
        for t in 0..trials.max(1) {
            let prep = random_sparse_prep(n_log, seed.wrapping_add(t as u64));

            // Compiled side: prep embedded through the initial layout,
            // then the physical circuit verbatim.
            let mut got = SparseState::zero(n_phys)?.with_max_terms(self.max_terms);
            got.apply_circuit_mapped(&prep, initial_layout)?;
            got.apply_circuit(compiled)?;

            // Reference side: prep and original both embedded through the
            // final layout (embedding commutes with circuit application;
            // unmapped physical qubits stay |0⟩ on both sides).
            let mut expected = SparseState::zero(n_phys)?.with_max_terms(self.max_terms);
            expected.apply_circuit_mapped(&prep, final_layout)?;
            expected.apply_circuit_mapped(original, final_layout)?;

            if !got.approx_eq_up_to_phase(&expected, self.eps) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl Simulator for SparseSimulator {
    fn capability(&self) -> Capability {
        Capability {
            name: "sparse",
            max_qubits: None,
            gate_set: "any unitary gate, while nonzero amplitudes stay under the term budget",
        }
    }

    fn supports_circuit(&self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() <= SPARSE_MAX_QUBITS {
            return Ok(());
        }
        // Wider registers are fine as long as the circuit touches few
        // enough qubits to compact onto a direct sparse register.
        let active = circuit.active_qubits().len();
        if active <= SPARSE_MAX_QUBITS {
            Ok(())
        } else {
            Err(SimError::TooManyQubits {
                requested: active,
                max: SPARSE_MAX_QUBITS,
            })
        }
    }

    fn circuits_equivalent(
        &self,
        a: &Circuit,
        b: &Circuit,
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        if a.num_qubits() != b.num_qubits() {
            return Err(SimError::WidthMismatch {
                expected: a.num_qubits(),
                actual: b.num_qubits(),
            });
        }
        let n = a.num_qubits();
        if n <= SPARSE_MAX_QUBITS {
            let identity: Vec<usize> = (0..n).collect();
            return self.run_layout_trials(a, b, &identity, &identity, n, trials, seed);
        }
        // Compact onto the union of touched qubits; both circuits act as
        // the identity on the rest.
        let mut used = vec![false; n];
        for circuit in [a, b] {
            for q in circuit.active_qubits() {
                used[q] = true;
            }
        }
        let (active, compact) = compaction(&used);
        if active.len() > SPARSE_MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: active.len(),
                max: SPARSE_MAX_QUBITS,
            });
        }
        let a_c = remap_for_compaction(a, active.len(), &compact)?;
        let b_c = remap_for_compaction(b, active.len(), &compact)?;
        let identity: Vec<usize> = (0..active.len()).collect();
        self.run_layout_trials(&a_c, &b_c, &identity, &identity, active.len(), trials, seed)
    }

    fn compiled_equivalent(
        &self,
        original: &Circuit,
        compiled: &Circuit,
        initial_layout: &[usize],
        final_layout: &[usize],
        trials: usize,
        seed: u64,
    ) -> Result<bool, SimError> {
        let n_log = original.num_qubits();
        let n_phys = compiled.num_qubits();
        for layout in [initial_layout, final_layout] {
            if layout.len() != n_log {
                return Err(SimError::WidthMismatch {
                    expected: n_log,
                    actual: layout.len(),
                });
            }
            if layout.iter().any(|&p| p >= n_phys) {
                return Err(SimError::WidthMismatch {
                    expected: n_phys,
                    actual: layout.iter().copied().max().unwrap_or(0) + 1,
                });
            }
        }
        if n_log > SPARSE_MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n_log,
                max: SPARSE_MAX_QUBITS,
            });
        }
        if n_phys <= SPARSE_MAX_QUBITS {
            return self.run_layout_trials(
                original,
                compiled,
                initial_layout,
                final_layout,
                n_phys,
                trials,
                seed,
            );
        }
        // Kiloqubit devices: compact the physical register onto the
        // qubits the cell actually touches (routed gates plus both layout
        // images); untouched physical qubits stay |0⟩ on both sides and
        // cannot distinguish the states.
        let mut used = vec![false; n_phys];
        for q in compiled.active_qubits() {
            used[q] = true;
        }
        for layout in [initial_layout, final_layout] {
            for &p in layout {
                used[p] = true;
            }
        }
        let (active, compact) = compaction(&used);
        if active.len() > SPARSE_MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: active.len(),
                max: SPARSE_MAX_QUBITS,
            });
        }
        let compiled_c = remap_for_compaction(compiled, active.len(), &compact)?;
        let init_c: Vec<usize> = initial_layout.iter().map(|&p| compact[p]).collect();
        let fin_c: Vec<usize> = final_layout.iter().map(|&p| compact[p]).collect();
        self.run_layout_trials(
            original,
            &compiled_c,
            &init_c,
            &fin_c,
            active.len(),
            trials,
            seed,
        )
    }
}

/// Sorted active qubit list and the old→new index map for compaction.
fn compaction(used: &[bool]) -> (Vec<usize>, Vec<usize>) {
    let active: Vec<usize> = used
        .iter()
        .enumerate()
        .filter_map(|(i, &u)| u.then_some(i))
        .collect();
    let mut compact = vec![0usize; used.len()];
    for (new, &old) in active.iter().enumerate() {
        compact[old] = new;
    }
    (active, compact)
}

fn remap_for_compaction(
    circuit: &Circuit,
    new_width: usize,
    map: &[usize],
) -> Result<Circuit, SimError> {
    circuit.remapped(new_width, map).map_err(|_| {
        // Unreachable for maps built by `compaction`, but surfaced as a
        // width problem rather than a panic if the IR ever rejects one.
        SimError::WidthMismatch {
            expected: new_width,
            actual: circuit.num_qubits(),
        }
    })
}

/// Most superposed qubits in a trial input: the prep contributes at most
/// 2^8 = 256 nonzero terms, leaving the whole budget for the circuits
/// under test.
const MAX_PREP_SUPERPOSED: usize = 8;

/// A seeded low-entanglement trial input on `n` qubits: random X flips,
/// H on the first `min(n, 8)` qubits, then a random word of S/T/CX — all
/// term-count-preserving, so the result has ≤ 256 terms but rich relative
/// phases (a basis state alone cannot distinguish e.g. CZ from identity).
fn random_sparse_prep(n: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        if rng.next_u64() & 1 == 1 {
            c.x(q);
        }
    }
    for q in 0..n.min(MAX_PREP_SUPERPOSED) {
        c.h(q);
    }
    let words = 3 * n + 2;
    for _ in 0..words {
        let q = (rng.next_u64() % n.max(1) as u64) as usize;
        match rng.next_u64() % 8 {
            0 | 1 => {
                c.s(q);
            }
            2 | 3 => {
                c.t(q);
            }
            4 => {
                c.z(q);
            }
            _ if n >= 2 => {
                let mut t = (rng.next_u64() % (n as u64 - 1)) as usize;
                if t >= q {
                    t += 1;
                }
                c.cx(q, t);
            }
            _ => {
                c.t(q);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::State;

    fn assert_matches_dense(circuit: &Circuit, eps: f64) {
        let mut sparse = SparseState::zero(circuit.num_qubits()).unwrap();
        sparse.apply_circuit(circuit).unwrap();
        let mut dense = State::zero(circuit.num_qubits()).unwrap();
        dense.apply_circuit(circuit).unwrap();
        let amps = sparse.dense_amplitudes().unwrap();
        for (i, (s, d)) in amps.iter().zip(dense.amplitudes()).enumerate() {
            assert!(
                s.approx_eq(*d, eps),
                "amplitude {i}: sparse {s} vs dense {d} for\n{circuit}"
            );
        }
    }

    #[test]
    fn matches_dense_on_every_gate_kind() {
        let mut c = Circuit::new(4);
        c.h(0)
            .x(1)
            .y(2)
            .z(3)
            .s(0)
            .sdg(1)
            .t(2)
            .tdg(3)
            .sx(0)
            .rx(0.3, 1)
            .ry(1.1, 2)
            .rz(-0.7, 3)
            .u1(0.25, 0)
            .u2(0.1, 0.2, 1)
            .u3(0.4, 0.5, 0.6, 2)
            .cx(0, 1)
            .cz(1, 2)
            .cp(0.9, 2, 3)
            .swap(0, 3)
            .ccx(0, 1, 2)
            .ccz(1, 2, 3)
            .cswap(0, 1, 3)
            .cxpow(0.5, 2, 0)
            .h(3);
        assert_matches_dense(&c, 1e-12);
    }

    #[test]
    fn ghz_has_two_terms() {
        let mut c = Circuit::new(12);
        c.h(0);
        for q in 1..12 {
            c.cx(q - 1, q);
        }
        let mut s = SparseState::zero(12).unwrap();
        s.apply_circuit(&c).unwrap();
        assert_eq!(s.num_terms(), 2);
        assert!(s
            .amplitude(0)
            .approx_eq(C64::real(1.0 / 2f64.sqrt()), 1e-12));
        assert!(s
            .amplitude((1 << 12) - 1)
            .approx_eq(C64::real(1.0 / 2f64.sqrt()), 1e-12));
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toffoli_network_stays_sparse_at_width_100() {
        // A 100-qubit ripple of CCX/CX/X on a 4-term input: far beyond
        // dense reach, term count pinned.
        let n = 100;
        let mut c = Circuit::new(n);
        c.h(0).h(1);
        for q in 0..n - 2 {
            c.ccx(q, q + 1, q + 2);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        let mut s = SparseState::zero(n).unwrap();
        s.apply_circuit(&c).unwrap();
        assert!(s.num_terms() <= 4, "{} terms", s.num_terms());
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interference_prunes_cancelled_terms() {
        // H·H = I: the doubled terms must recombine to a single one.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).h(0).h(1).h(2);
        let mut s = SparseState::zero(3).unwrap();
        s.apply_circuit(&c).unwrap();
        assert_eq!(s.num_terms(), 1);
        assert!(s.amplitude(0).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn budget_blowup_reports_state_too_dense() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        let mut s = SparseState::zero(6).unwrap().with_max_terms(16);
        let err = s.apply_circuit(&c).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::StateTooDense {
                    terms: 32,
                    max_terms: 16
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn measurement_is_unsupported_but_skipped_in_circuits() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).cx(0, 1);
        let mut s = SparseState::zero(2).unwrap();
        s.apply_circuit(&c).unwrap();
        assert_eq!(s.num_terms(), 2);
        let measure = *c.iter().find(|i| i.gate().is_measurement()).unwrap();
        assert!(matches!(
            s.try_apply(&measure),
            Err(SimError::UnsupportedGate {
                backend: "sparse",
                ..
            })
        ));
    }

    #[test]
    fn equivalence_agrees_with_dense_verdicts() {
        let sim = SparseSimulator::default();
        // CZ = H(t)·CX·H(t): equivalent; CZ vs CX: not; CZ vs I: not —
        // the last needs superposed trial inputs, a basis state cannot
        // tell them apart.
        let mut cz = Circuit::new(2);
        cz.cz(0, 1);
        let mut hch = Circuit::new(2);
        hch.h(1).cx(0, 1).h(1);
        let mut cx = Circuit::new(2);
        cx.cx(0, 1);
        let nothing = Circuit::new(2);
        assert!(sim.circuits_equivalent(&cz, &hch, 4, 11).unwrap());
        assert!(!sim.circuits_equivalent(&cz, &cx, 4, 11).unwrap());
        assert!(!sim.circuits_equivalent(&cz, &nothing, 4, 11).unwrap());
    }

    #[test]
    fn detects_a_phase_only_difference_at_width_60() {
        // Identical permutation action, one stray T: only relative phase
        // distinguishes them, far beyond dense reach.
        let n = 60;
        let mut a = Circuit::new(n);
        let mut b = Circuit::new(n);
        for q in 0..n - 1 {
            a.cx(q, q + 1);
            b.cx(q, q + 1);
        }
        b.t(30);
        let sim = SparseSimulator::default();
        assert!(sim.circuits_equivalent(&a, &a, 2, 9).unwrap());
        assert!(!sim.circuits_equivalent(&a, &b, 4, 9).unwrap());
    }

    #[test]
    fn compiled_equivalence_handles_routing_swaps() {
        // Same scenario the dense and stabilizer tests pin: CX(0,1)
        // compiled with a SWAP moving logical 1 from phys 2 to phys 1.
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut compiled = Circuit::new(3);
        compiled.swap(2, 1).cx(0, 1);
        let sim = SparseSimulator::default();
        assert!(sim
            .compiled_equivalent(&original, &compiled, &[0, 2], &[0, 1], 4, 5)
            .unwrap());
        assert!(!sim
            .compiled_equivalent(&original, &compiled, &[0, 2], &[0, 2], 4, 5)
            .unwrap());
    }

    #[test]
    fn kiloqubit_registers_compact_onto_touched_qubits() {
        // A 1121-qubit register whose circuit only touches a 40-qubit
        // stretch: compaction keeps the state at 40 qubits.
        let n = 1121;
        let mut original = Circuit::new(8);
        original.h(0);
        for q in 0..7 {
            original.ccx(q, (q + 1) % 8, (q + 2) % 8);
        }
        let base = 500;
        let layout: Vec<usize> = (0..8).map(|q| base + 2 * q).collect();
        let mut compiled = Circuit::new(n);
        compiled.h(base);
        for q in 0..7 {
            compiled.ccx(
                base + 2 * q,
                base + 2 * ((q + 1) % 8),
                base + 2 * ((q + 2) % 8),
            );
        }
        let sim = SparseSimulator::default();
        assert!(sim.supports_circuit(&compiled).is_ok());
        assert!(sim
            .compiled_equivalent(&original, &compiled, &layout, &layout, 2, 3)
            .unwrap());
        // Drop one CCX: must be detected even through compaction.
        let missing: Vec<_> = compiled.iter().take(compiled.len() - 1).cloned().collect();
        let missing = Circuit::from_instructions(n, missing).unwrap();
        assert!(!sim
            .compiled_equivalent(&original, &missing, &layout, &layout, 4, 3)
            .unwrap());
    }

    #[test]
    fn prep_is_deterministic_and_low_entanglement() {
        let a = random_sparse_prep(20, 7);
        let b = random_sparse_prep(20, 7);
        let c = random_sparse_prep(20, 8);
        assert_eq!(a.instructions(), b.instructions());
        assert_ne!(a.instructions(), c.instructions());
        let mut s = SparseState::zero(20).unwrap();
        s.apply_circuit(&a).unwrap();
        assert!(s.num_terms() <= 1 << MAX_PREP_SUPERPOSED);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trials_are_byte_deterministic() {
        // Same seed → identical dense projections, run to run.
        let prep = random_sparse_prep(10, 21);
        let run = || {
            let mut s = SparseState::zero(10).unwrap();
            s.apply_circuit(&prep).unwrap();
            s.dense_amplitudes().unwrap()
        };
        let (a, b) = (run(), run());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn width_guards_report_errors() {
        assert!(matches!(
            SparseState::zero(SPARSE_MAX_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
        let mut narrow = SparseState::zero(2).unwrap();
        let wide = {
            let mut c = Circuit::new(3);
            c.h(2);
            c
        };
        assert!(matches!(
            narrow.apply_circuit(&wide),
            Err(SimError::WidthMismatch { .. })
        ));
    }
}
