//! CHP-style stabilizer tableau simulation (Aaronson–Gottesman).
//!
//! Dense statevectors stop at [`crate::MAX_QUBITS`]; a stabilizer tableau
//! simulates Clifford(+measurement) circuits in `O(n²)` memory and
//! `O(n)` per gate, so routed-vs-input equivalence of Clifford circuits is
//! checkable at full device size — the 20-qubit Johannesburg device of the
//! paper, or 127-qubit-class grids — instead of the 8-qubit wall.
//!
//! The tableau stores `2n` Pauli rows: rows `0..n` are destabilizers,
//! rows `n..2n` are stabilizers. Row `i` holds bitvectors `x`, `z` and a
//! sign bit `r`; qubit `q`'s tensor factor is `X` for `(x,z) = (1,0)`,
//! `Z` for `(0,1)`, `Y` for `(1,1)`, and the row's Pauli carries sign
//! `(-1)^r`.
//!
//! Single-qubit gates are *recognized*, not enumerated: any 1q unitary
//! whose conjugation maps `{X, Y, Z}` to `±{X, Y, Z}` is applied through
//! its Pauli images. This is what lets the backend digest optimizer
//! output, where runs of named Clifford gates have been merged into
//! single `u3` matrices.

use crate::{mat2_adjoint, mat2_mul, single_qubit_matrix, Mat2, SimError, C64};
use trios_ir::{Circuit, Gate, Instruction};

/// How a single-qubit Clifford transforms one Pauli: the image is the
/// Pauli with the given `x`/`z` bits, negated when `neg` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PauliImage {
    x: bool,
    z: bool,
    neg: bool,
}

/// The conjugation action of a 1q Clifford: images of `X`, `Z`, and `Y`
/// (in that order).
type CliffordAction = [PauliImage; 3];

const NEG_ONE: C64 = C64 { re: -1.0, im: 0.0 };
const NEG_I: C64 = C64 { re: 0.0, im: -1.0 };
const PAULI_X: Mat2 = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
const PAULI_Z: Mat2 = [[C64::ONE, C64::ZERO], [C64::ZERO, NEG_ONE]];
const PAULI_Y: Mat2 = [[C64::ZERO, NEG_I], [C64::I, C64::ZERO]];

/// Matches `m` against `±X`, `±Y`, `±Z` (entrywise, within `eps`).
fn match_pauli(m: &Mat2, eps: f64) -> Option<PauliImage> {
    let candidates: [(Mat2, bool, bool); 3] = [
        (PAULI_X, true, false),
        (PAULI_Z, false, true),
        (PAULI_Y, true, true),
    ];
    for (p, x, z) in candidates {
        if crate::mat2_approx_eq(m, &p, eps) {
            return Some(PauliImage { x, z, neg: false });
        }
        let negated = [[-p[0][0], -p[0][1]], [-p[1][0], -p[1][1]]];
        if crate::mat2_approx_eq(m, &negated, eps) {
            return Some(PauliImage { x, z, neg: true });
        }
    }
    None
}

/// The Pauli images of `U·P·U†` for `P ∈ {X, Z, Y}`, or `None` if `U` is
/// not a Clifford (some image falls outside `±{X, Y, Z}`).
///
/// Global phase cancels in `U·P·U†`, so this recognizes Cliffords in any
/// phase convention — `rz(π/2)` and `s` act identically here.
fn clifford_action(u: &Mat2) -> Option<CliffordAction> {
    const EPS: f64 = 1e-8;
    let udg = mat2_adjoint(u);
    let image = |p: &Mat2| match_pauli(&mat2_mul(&mat2_mul(u, p), &udg), EPS);
    Some([image(&PAULI_X)?, image(&PAULI_Z)?, image(&PAULI_Y)?])
}

/// One Pauli row of the tableau: word-packed `x`/`z` bitvectors plus the
/// sign bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    x: Vec<u64>,
    z: Vec<u64>,
    r: bool,
}

impl Row {
    fn zero(words: usize) -> Self {
        Row {
            x: vec![0; words],
            z: vec![0; words],
            r: false,
        }
    }

    #[inline]
    fn x_bit(&self, q: usize) -> bool {
        self.x[q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn z_bit(&self, q: usize) -> bool {
        self.z[q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, q: usize, v: bool) {
        let (w, b) = (q / 64, q % 64);
        self.x[w] = (self.x[w] & !(1u64 << b)) | (u64::from(v) << b);
    }

    #[inline]
    fn set_z(&mut self, q: usize, v: bool) {
        let (w, b) = (q / 64, q % 64);
        self.z[w] = (self.z[w] & !(1u64 << b)) | (u64::from(v) << b);
    }

    #[cfg(test)]
    fn is_identity(&self) -> bool {
        self.x.iter().all(|&w| w == 0) && self.z.iter().all(|&w| w == 0)
    }
}

/// The Aaronson–Gottesman phase function for multiplying single-qubit
/// Pauli factors: the exponent of `i` contributed by `P₂ · P₁` where
/// `P₁ = (x1, z1)` and `P₂ = (x2, z2)`. Returns a value in `{-1, 0, 1}`.
#[inline]
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => i32::from(z2) - i32::from(x2),
        (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
        (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
    }
}

/// Left-multiplies Pauli row `dst` by row `src` (`dst ← src · dst`),
/// tracking the sign. Defined only when the product has a real sign
/// (always true for commuting rows, the only case the algorithms below
/// create).
fn row_mul(dst: &mut Row, src: &Row) {
    let mut phase = 2 * i32::from(dst.r) + 2 * i32::from(src.r);
    for w in 0..dst.x.len() {
        for b in 0..64 {
            let q = 1u64 << b;
            phase += g(
                src.x[w] & q != 0,
                src.z[w] & q != 0,
                dst.x[w] & q != 0,
                dst.z[w] & q != 0,
            );
        }
    }
    debug_assert!(phase.rem_euclid(4) % 2 == 0, "imaginary Pauli product");
    dst.r = phase.rem_euclid(4) == 2;
    for w in 0..dst.x.len() {
        dst.x[w] ^= src.x[w];
        dst.z[w] ^= src.z[w];
    }
}

/// A stabilizer state over `n` qubits, initialized to `|0…0⟩`.
///
/// Scales to hundreds of qubits: memory is `O(n²)` bits and every gate is
/// `O(n)` word operations.
///
/// # Examples
///
/// ```
/// use trios_ir::Circuit;
/// use trios_sim::Tableau;
///
/// // A 100-qubit GHZ state, far beyond dense simulation.
/// let mut c = Circuit::new(100);
/// c.h(0);
/// for q in 1..100 {
///     c.cx(q - 1, q);
/// }
/// let mut t = Tableau::new(100);
/// t.apply_circuit(&c).unwrap();
///
/// // All qubits measure equal: Z₀Z₉₉ stabilizes the state.
/// let mut other = Tableau::new(100);
/// other.apply_circuit(&c).unwrap();
/// assert!(t.state_eq(&other));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// Rows `0..n` destabilizers, `n..2n` stabilizers.
    rows: Vec<Row>,
}

impl Tableau {
    /// The `|0…0⟩` stabilizer state: destabilizer `i` is `Xᵢ`,
    /// stabilizer `i` is `Zᵢ`.
    pub fn new(num_qubits: usize) -> Self {
        let words = num_qubits.div_ceil(64).max(1);
        let mut rows = vec![Row::zero(words); 2 * num_qubits];
        for q in 0..num_qubits {
            rows[q].set_x(q, true);
            rows[num_qubits + q].set_z(q, true);
        }
        Tableau {
            n: num_qubits,
            rows,
        }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedGate`] for non-Clifford gates
    /// (including measurement — use [`Tableau::measure`] for that).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubit operands, mirroring the dense backend.
    pub fn apply(&mut self, instr: &Instruction) -> Result<(), SimError> {
        let qs = instr.qubits();
        for q in qs {
            let idx = q.index();
            assert!(
                idx < self.n,
                "qubit {idx} out of range for a {}-qubit tableau (gate {})",
                self.n,
                instr.gate()
            );
        }
        match instr.gate() {
            Gate::I => {}
            Gate::Cx => self.cx(qs[0].index(), qs[1].index()),
            Gate::Cz => {
                let (a, b) = (qs[0].index(), qs[1].index());
                self.h(b);
                self.cx(a, b);
                self.h(b);
            }
            Gate::Swap => self.swap(qs[0].index(), qs[1].index()),
            gate => {
                let action = single_qubit_matrix(gate)
                    .and_then(|m| clifford_action(&m))
                    .ok_or_else(|| SimError::UnsupportedGate {
                        gate: gate.to_string(),
                        backend: "stabilizer",
                    })?;
                self.apply_1q(qs[0].index(), &action);
            }
        }
        Ok(())
    }

    /// Applies every unitary instruction of `circuit`, skipping
    /// measurements (matching [`crate::State::apply_circuit`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the circuit is wider than
    /// the tableau, or [`SimError::UnsupportedGate`] on the first
    /// non-Clifford gate.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.n {
            return Err(SimError::WidthMismatch {
                expected: self.n,
                actual: circuit.num_qubits(),
            });
        }
        for instr in circuit.iter() {
            if instr.gate().is_measurement() {
                continue;
            }
            self.apply(instr)?;
        }
        Ok(())
    }

    /// Applies `circuit` with its logical qubit `l` mapped to physical
    /// qubit `map[l]` — how an original circuit is replayed on a routed
    /// register through a layout.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the map is shorter than the
    /// circuit or points outside the register, and propagates
    /// [`SimError::UnsupportedGate`].
    pub fn apply_circuit_mapped(
        &mut self,
        circuit: &Circuit,
        map: &[usize],
    ) -> Result<(), SimError> {
        if map.len() < circuit.num_qubits() {
            return Err(SimError::WidthMismatch {
                expected: circuit.num_qubits(),
                actual: map.len(),
            });
        }
        if map.iter().any(|&p| p >= self.n) {
            return Err(SimError::WidthMismatch {
                expected: self.n,
                actual: map.iter().copied().max().unwrap_or(0) + 1,
            });
        }
        for instr in circuit.iter() {
            if instr.gate().is_measurement() {
                continue;
            }
            let mapped: Vec<trios_ir::Qubit> = instr
                .qubits()
                .iter()
                .map(|q| trios_ir::Qubit::new(map[q.index()]))
                .collect();
            self.apply(&Instruction::new(instr.gate(), &mapped))?;
        }
        Ok(())
    }

    fn apply_1q(&mut self, q: usize, action: &CliffordAction) {
        let [img_x, img_z, img_y] = *action;
        for row in &mut self.rows {
            let img = match (row.x_bit(q), row.z_bit(q)) {
                (false, false) => continue,
                (true, false) => img_x,
                (false, true) => img_z,
                (true, true) => img_y,
            };
            row.set_x(q, img.x);
            row.set_z(q, img.z);
            row.r ^= img.neg;
        }
    }

    fn h(&mut self, q: usize) {
        for row in &mut self.rows {
            let (x, z) = (row.x_bit(q), row.z_bit(q));
            row.r ^= x & z;
            row.set_x(q, z);
            row.set_z(q, x);
        }
    }

    fn cx(&mut self, c: usize, t: usize) {
        for row in &mut self.rows {
            let (xc, zc) = (row.x_bit(c), row.z_bit(c));
            let (xt, zt) = (row.x_bit(t), row.z_bit(t));
            row.r ^= xc & zt & !(xt ^ zc);
            row.set_x(t, xt ^ xc);
            row.set_z(c, zc ^ zt);
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        for row in &mut self.rows {
            let (xa, za) = (row.x_bit(a), row.z_bit(a));
            let (xb, zb) = (row.x_bit(b), row.z_bit(b));
            row.set_x(a, xb);
            row.set_z(a, zb);
            row.set_x(b, xa);
            row.set_z(b, za);
        }
    }

    /// Measures qubit `q` in the computational basis, collapsing the
    /// state. `random_bit` supplies the outcome when it is genuinely
    /// random (it is not called for deterministic outcomes).
    pub fn measure(&mut self, q: usize, random_bit: &mut dyn FnMut() -> bool) -> bool {
        assert!(q < self.n, "qubit {q} out of range for measurement");
        let n = self.n;
        // A stabilizer anticommuting with Z_q ⇒ the outcome is random.
        if let Some(p) = (n..2 * n).find(|&i| self.rows[i].x_bit(q)) {
            let pivot = self.rows[p].clone();
            for i in 0..2 * n {
                if i != p && self.rows[i].x_bit(q) {
                    row_mul(&mut self.rows[i], &pivot);
                }
            }
            self.rows[p - n] = pivot;
            let outcome = random_bit();
            let words = self.rows[p].x.len();
            self.rows[p] = Row::zero(words);
            self.rows[p].set_z(q, true);
            self.rows[p].r = outcome;
            outcome
        } else {
            // Deterministic: accumulate the stabilizer expressing Z_q.
            let mut scratch = Row::zero(self.rows[0].x.len());
            for i in 0..n {
                if self.rows[i].x_bit(q) {
                    let stab = self.rows[i + n].clone();
                    row_mul(&mut scratch, &stab);
                }
            }
            scratch.r
        }
    }

    /// The stabilizer rows in canonical (symplectic reduced row-echelon)
    /// form: pivot on `x` bits column by column, then on `z` bits among
    /// the pure-Z rows. Two tableaus describe the same state iff their
    /// canonical rows — including signs — are equal.
    fn canonical_stabilizers(&self) -> Vec<Row> {
        let n = self.n;
        let mut rows: Vec<Row> = self.rows[n..].to_vec();
        let mut pivot = 0usize;
        for j in 0..n {
            if let Some(k) = (pivot..n).find(|&k| rows[k].x_bit(j)) {
                rows.swap(pivot, k);
                let lead = rows[pivot].clone();
                for (m, row) in rows.iter_mut().enumerate() {
                    if m != pivot && row.x_bit(j) {
                        row_mul(row, &lead);
                    }
                }
                pivot += 1;
            }
        }
        for j in 0..n {
            if let Some(k) = (pivot..n).find(|&k| rows[k].z_bit(j)) {
                rows.swap(pivot, k);
                let lead = rows[pivot].clone();
                // The lead row is pure Z, so this only rewrites z-parts:
                // x-pivot rows must be reduced too, or two generating
                // sets of the same group canonicalize differently.
                for (m, row) in rows.iter_mut().enumerate() {
                    if m != pivot && row.z_bit(j) {
                        row_mul(row, &lead);
                    }
                }
                pivot += 1;
            }
        }
        rows
    }

    /// `true` if the two tableaus describe the same quantum state
    /// (stabilizer groups equal, signs included — global phase is not
    /// observable and does not enter).
    pub fn state_eq(&self, other: &Tableau) -> bool {
        self.n == other.n && self.canonical_stabilizers() == other.canonical_stabilizers()
    }

    /// `true` if `Z_q` (possibly negated) is in the stabilizer group —
    /// i.e. measuring `q` gives a deterministic outcome. Returns the
    /// outcome, or `None` when the measurement would be random.
    pub fn deterministic_outcome(&self, q: usize) -> Option<bool> {
        assert!(q < self.n, "qubit {q} out of range");
        let n = self.n;
        if (n..2 * n).any(|i| self.rows[i].x_bit(q)) {
            return None;
        }
        let mut scratch = Row::zero(self.rows[0].x.len());
        for i in 0..n {
            if self.rows[i].x_bit(q) {
                let stab = self.rows[i + n].clone();
                row_mul(&mut scratch, &stab);
            }
        }
        Some(scratch.r)
    }
}

/// The first gate of `circuit` the stabilizer backend cannot apply, or
/// `None` if the whole circuit is Clifford (measurements are allowed).
pub fn first_non_clifford(circuit: &Circuit) -> Option<Gate> {
    circuit.iter().map(Instruction::gate).find(|&gate| {
        if gate.is_measurement() {
            return false;
        }
        match gate {
            Gate::Cx | Gate::Cz | Gate::Swap | Gate::I => false,
            g => single_qubit_matrix(g)
                .and_then(|m| clifford_action(&m))
                .is_none(),
        }
    })
}

/// Removes every `T`/`Tdg` gate — the non-Clifford residue of the
/// `clifford-t` circuit family — leaving a stabilizer-checkable skeleton.
/// The result is *not* equivalent to the input; it is a derived test
/// vector whose routing must still commute with the original's.
pub fn strip_t_gates(circuit: &Circuit) -> Circuit {
    let instrs: Vec<Instruction> = circuit
        .iter()
        .filter(|i| !matches!(i.gate(), Gate::T | Gate::Tdg))
        .cloned()
        .collect();
    Circuit::from_instructions(circuit.num_qubits(), instrs)
        .expect("removing instructions keeps a circuit valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::State;

    fn bit_source(seed: u64) -> impl FnMut() -> bool {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 63 == 1
        }
    }

    /// Dense-vs-tableau cross-check: run the circuit both ways and verify
    /// each deterministic Z outcome matches the dense marginal.
    fn cross_check(c: &Circuit) {
        let dense = State::run(c).unwrap();
        let mut tab = Tableau::new(c.num_qubits());
        tab.apply_circuit(c).unwrap();
        for q in 0..c.num_qubits() {
            let p1 = dense.marginal_probability(&[q], 1);
            match tab.deterministic_outcome(q) {
                Some(true) => assert!((p1 - 1.0).abs() < 1e-9, "q{q}: P(1) = {p1}"),
                Some(false) => assert!(p1 < 1e-9, "q{q}: P(1) = {p1}"),
                None => assert!((p1 - 0.5).abs() < 1e-9, "q{q}: P(1) = {p1}"),
            }
        }
    }

    #[test]
    fn zero_state_measures_zero_everywhere() {
        let mut t = Tableau::new(5);
        for q in 0..5 {
            assert_eq!(t.deterministic_outcome(q), Some(false));
            assert!(!t.measure(q, &mut bit_source(1)));
        }
    }

    #[test]
    fn x_flips_deterministic_outcome() {
        let mut c = Circuit::new(3);
        c.x(1);
        let mut t = Tableau::new(3);
        t.apply_circuit(&c).unwrap();
        assert_eq!(t.deterministic_outcome(0), Some(false));
        assert_eq!(t.deterministic_outcome(1), Some(true));
        cross_check(&c);
    }

    #[test]
    fn hadamard_makes_outcome_random_and_collapses() {
        let mut t = Tableau::new(2);
        let mut c = Circuit::new(2);
        c.h(0);
        t.apply_circuit(&c).unwrap();
        assert_eq!(t.deterministic_outcome(0), None);
        let outcome = t.measure(0, &mut bit_source(7));
        // After collapse the outcome is pinned.
        assert_eq!(t.deterministic_outcome(0), Some(outcome));
    }

    #[test]
    fn bell_pair_correlates_measurements() {
        for seed in 0..8u64 {
            let mut t = Tableau::new(2);
            let mut c = Circuit::new(2);
            c.h(0).cx(0, 1);
            t.apply_circuit(&c).unwrap();
            let a = t.measure(0, &mut bit_source(seed));
            let b = t.measure(1, &mut bit_source(seed + 100));
            assert_eq!(a, b, "Bell outcomes must agree (seed {seed})");
        }
    }

    #[test]
    fn named_clifford_gates_cross_check_against_dense() {
        let mut c = Circuit::new(4);
        c.h(0)
            .s(1)
            .cx(0, 1)
            .z(2)
            .x(3)
            .cz(1, 2)
            .sdg(0)
            .swap(2, 3)
            .y(1)
            .cx(3, 0);
        cross_check(&c);
    }

    #[test]
    fn merged_u3_cliffords_are_recognized() {
        // rz(π/2) ≡ S and u3 forms of H are Cliffords in disguise — the
        // optimizer's merge pass produces exactly these.
        use std::f64::consts::{FRAC_PI_2, PI};
        let mut c = Circuit::new(2);
        c.rz(FRAC_PI_2, 0); // = S up to phase
        c.u3(FRAC_PI_2, 0.0, PI, 1); // = H up to phase
        c.cx(0, 1);
        cross_check(&c);
    }

    #[test]
    fn non_clifford_gates_are_rejected_with_context() {
        let mut c = Circuit::new(1);
        c.t(0);
        let mut tab = Tableau::new(1);
        let err = tab.apply_circuit(&c).unwrap_err();
        match err {
            SimError::UnsupportedGate { gate, backend } => {
                assert_eq!(backend, "stabilizer");
                assert!(gate.contains('t'), "gate string: {gate}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(first_non_clifford(&c), Some(Gate::T));
        let mut cliff = Circuit::new(2);
        cliff.h(0).cx(0, 1).measure_all();
        assert_eq!(first_non_clifford(&cliff), None);
    }

    #[test]
    fn rotation_cliffords_only_at_special_angles() {
        assert!(clifford_action(&single_qubit_matrix(Gate::Rx(0.3)).unwrap()).is_none());
        assert!(clifford_action(
            &single_qubit_matrix(Gate::Rx(std::f64::consts::FRAC_PI_2)).unwrap()
        )
        .is_some());
        assert!(clifford_action(&single_qubit_matrix(Gate::T).unwrap()).is_none());
        assert!(clifford_action(&single_qubit_matrix(Gate::Sx).unwrap()).is_some());
    }

    #[test]
    fn state_eq_distinguishes_and_identifies() {
        let mut ghz = Circuit::new(3);
        ghz.h(0).cx(0, 1).cx(1, 2);
        // GHZ built in a different gate order: same state.
        let mut ghz2 = Circuit::new(3);
        ghz2.h(0).cx(0, 1).cx(0, 2);
        let mut a = Tableau::new(3);
        a.apply_circuit(&ghz).unwrap();
        let mut b = Tableau::new(3);
        b.apply_circuit(&ghz2).unwrap();
        assert!(a.state_eq(&b));
        // Sign matters: X on one leg flips a stabilizer phase.
        let mut c = Tableau::new(3);
        c.apply_circuit(&ghz).unwrap();
        let mut flip = Circuit::new(3);
        flip.z(0);
        c.apply_circuit(&flip).unwrap();
        assert!(!a.state_eq(&c));
    }

    #[test]
    fn swap_is_exact_relabeling() {
        let mut direct = Circuit::new(3);
        direct.h(0).s(0).cx(0, 2);
        let mut swapped = Circuit::new(3);
        swapped.h(1).s(1).swap(1, 0).cx(0, 2);
        let mut a = Tableau::new(3);
        a.apply_circuit(&direct).unwrap();
        let mut b = Tableau::new(3);
        b.apply_circuit(&swapped).unwrap();
        assert!(a.state_eq(&b));
    }

    #[test]
    fn mapped_application_embeds_through_layout() {
        // X on logical 0 mapped to physical 2.
        let mut c = Circuit::new(1);
        c.x(0);
        let mut t = Tableau::new(4);
        t.apply_circuit_mapped(&c, &[2]).unwrap();
        assert_eq!(t.deterministic_outcome(2), Some(true));
        assert_eq!(t.deterministic_outcome(0), Some(false));
        // Bad maps error.
        assert!(t.apply_circuit_mapped(&c, &[]).is_err());
        assert!(t.apply_circuit_mapped(&c, &[9]).is_err());
    }

    #[test]
    fn scales_to_hundreds_of_qubits() {
        let n = 300;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        let mut t = Tableau::new(n);
        t.apply_circuit(&c).unwrap();
        // GHZ: every single-qubit measurement is random...
        assert_eq!(t.deterministic_outcome(0), None);
        assert_eq!(t.deterministic_outcome(n - 1), None);
        // ...but once one collapses, all agree.
        let first = t.measure(0, &mut bit_source(3));
        assert_eq!(t.deterministic_outcome(n - 1), Some(first));
    }

    #[test]
    fn strip_t_removes_only_t_family() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).tdg(1).s(1).measure(1);
        let stripped = strip_t_gates(&c);
        assert_eq!(stripped.instructions().len(), 4);
        assert_eq!(first_non_clifford(&stripped), None);
        assert_eq!(stripped.num_qubits(), 2);
    }

    #[test]
    fn canonical_form_is_stable_under_row_order() {
        // Build the same state twice through wildly different Clifford
        // words; the canonical stabilizers must coincide exactly.
        let mut a_c = Circuit::new(4);
        a_c.h(0).cx(0, 1).s(1).cx(1, 2).h(3).cz(2, 3);
        let mut b_c = Circuit::new(4);
        b_c.h(0).cx(0, 1).s(1).cx(1, 2).h(3).h(3).h(3).cz(2, 3);
        let mut a = Tableau::new(4);
        a.apply_circuit(&a_c).unwrap();
        let mut b = Tableau::new(4);
        b.apply_circuit(&b_c).unwrap();
        assert!(a.state_eq(&b));
        assert_eq!(a.canonical_stabilizers(), b.canonical_stabilizers());
    }

    #[test]
    fn canonical_form_reduces_mixed_xz_rows_by_pure_z_pivots() {
        // |00⟩ − |11⟩ built two ways: raw generators ⟨Y⊗Y, Z⊗Z⟩ vs
        // ⟨−X⊗X, Z⊗Z⟩ — equal groups that only canonicalize identically
        // if pure-Z pivots also reduce rows carrying x bits.
        let mut a_c = Circuit::new(2);
        a_c.h(0).s(0).cx(0, 1).s(1);
        let mut b_c = Circuit::new(2);
        b_c.h(0).cx(0, 1).z(0);
        let mut a = Tableau::new(2);
        a.apply_circuit(&a_c).unwrap();
        let mut b = Tableau::new(2);
        b.apply_circuit(&b_c).unwrap();
        assert!(a.state_eq(&b));
        assert_eq!(a.canonical_stabilizers(), b.canonical_stabilizers());
    }

    #[test]
    fn row_is_identity_helper() {
        let words = 2;
        let mut r = Row::zero(words);
        assert!(r.is_identity());
        r.set_x(70, true);
        assert!(!r.is_identity());
        assert!(r.x_bit(70));
        r.set_x(70, false);
        assert!(r.is_identity());
    }
}
