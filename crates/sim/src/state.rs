//! Dense statevector simulation.

use crate::{single_qubit_matrix, SimError, C64};
use trios_ir::{Circuit, Gate, Instruction};

/// Hard cap on dense-simulation width (2²⁴ amplitudes ≈ 268 MB).
pub const MAX_QUBITS: usize = 24;

/// A dense statevector over `n` qubits.
///
/// Qubit `q` corresponds to bit `q` of the basis index, so basis state
/// `|b_{n-1} … b_1 b_0⟩` lives at index `Σ b_q · 2^q`.
///
/// The simulator exists to *verify* the compiler: every decomposition and
/// every routed circuit in this workspace is checked against the original
/// program's statevector. It is not meant to compete with production
/// simulators, but it comfortably handles the paper's 20-qubit benchmarks.
///
/// # Examples
///
/// ```
/// use trios_ir::Circuit;
/// use trios_sim::State;
///
/// // A Toffoli flips the target only when both controls are set.
/// let mut c = Circuit::new(3);
/// c.x(0).x(1).ccx(0, 1, 2);
/// let state = State::run(&c).unwrap();
/// assert!((state.probability(0b111) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    pub fn zero(num_qubits: usize) -> Result<Self, SimError> {
        Self::basis(num_qubits, 0)
    }

    /// The computational basis state with the given index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    pub fn basis(num_qubits: usize, index: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        assert!(
            index < dim,
            "basis index {index} out of range for {num_qubits} qubits"
        );
        let mut amps = vec![C64::ZERO; dim];
        amps[index] = C64::ONE;
        Ok(State { num_qubits, amps })
    }

    /// A deterministic pseudo-random state (uniform amplitudes, normalized),
    /// seeded so tests are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    pub fn random(num_qubits: usize, seed: u64) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        let mut rng = SplitMix64::new(seed);
        let mut amps = Vec::with_capacity(dim);
        for _ in 0..dim {
            amps.push(C64::new(rng.next_unit() - 0.5, rng.next_unit() - 0.5));
        }
        let mut state = State { num_qubits, amps };
        state.normalize();
        Ok(state)
    }

    /// Builds a state from raw amplitudes (length must be a power of two).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the length is not a power of
    /// two, or [`SimError::TooManyQubits`] if it is too large.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() {
            return Err(SimError::WidthMismatch {
                expected: amps.len().next_power_of_two(),
                actual: amps.len(),
            });
        }
        let num_qubits = amps.len().trailing_zeros() as usize;
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        Ok(State { num_qubits, amps })
    }

    /// Runs `circuit` on `|0…0⟩`. Measurements are skipped (the success
    /// model accounts for readout separately).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] for circuits above [`MAX_QUBITS`].
    pub fn run(circuit: &Circuit) -> Result<Self, SimError> {
        let mut state = State::zero(circuit.num_qubits())?;
        state.apply_circuit(circuit)?;
        Ok(state)
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes (little-endian qubit order).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The ℓ² norm (1 for any valid quantum state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for a in &mut self.amps {
                *a = a.scale(1.0 / n);
            }
        }
    }

    /// Applies all unitary instructions of `circuit`, skipping measurements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the circuit is wider than the
    /// state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::WidthMismatch {
                expected: self.num_qubits,
                actual: circuit.num_qubits(),
            });
        }
        for instr in circuit.iter() {
            if instr.gate().is_measurement() {
                continue;
            }
            self.apply(instr);
        }
        Ok(())
    }

    /// Applies one unitary instruction.
    ///
    /// # Panics
    ///
    /// Panics on measurement instructions or out-of-range qubits.
    pub fn apply(&mut self, instr: &Instruction) {
        let qs = instr.qubits();
        debug_assert!(qs.iter().all(|q| q.index() < self.num_qubits));
        match instr.gate() {
            Gate::Measure => panic!("cannot apply a measurement as a unitary"),
            Gate::I => {}
            Gate::X => self.apply_x(qs[0].index()),
            Gate::Z => self.apply_phase_1q(qs[0].index(), -C64::ONE),
            Gate::S => self.apply_phase_1q(qs[0].index(), C64::I),
            Gate::Sdg => self.apply_phase_1q(qs[0].index(), -C64::I),
            Gate::T => self.apply_phase_1q(qs[0].index(), C64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => self.apply_phase_1q(qs[0].index(), C64::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::U1(l) => self.apply_phase_1q(qs[0].index(), C64::cis(l)),
            Gate::Cx => self.apply_cx(qs[0].index(), qs[1].index()),
            Gate::Cz => self.apply_cphase(qs[0].index(), qs[1].index(), -C64::ONE),
            Gate::Cp(l) => self.apply_cphase(qs[0].index(), qs[1].index(), C64::cis(l)),
            Gate::Swap => self.apply_swap(qs[0].index(), qs[1].index()),
            Gate::Ccx => self.apply_ccx(qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Ccz => self.apply_ccz(qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Cswap => self.apply_cswap(qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Cxpow(t) => {
                let m = crate::xpow_matrix(t);
                self.apply_controlled_1q(qs[0].index(), qs[1].index(), &m);
            }
            g => {
                let m =
                    single_qubit_matrix(g).unwrap_or_else(|| panic!("no matrix for gate {g:?}"));
                self.apply_1q(qs[0].index(), &m);
            }
        }
    }

    fn apply_1q(&mut self, q: usize, m: &crate::Mat2) {
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    fn apply_x(&mut self, q: usize) {
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                self.amps.swap(i, i | mask);
            }
        }
    }

    fn apply_phase_1q(&mut self, q: usize, phase: C64) {
        let mask = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask != 0 {
                *a *= phase;
            }
        }
    }

    fn apply_cx(&mut self, c: usize, t: usize) {
        let (cm, tm) = (1usize << c, 1usize << t);
        for i in 0..self.amps.len() {
            if i & cm != 0 && i & tm == 0 {
                self.amps.swap(i, i | tm);
            }
        }
    }

    fn apply_cphase(&mut self, a: usize, b: usize, phase: C64) {
        let mask = (1usize << a) | (1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *amp *= phase;
            }
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let (am, bm) = (1usize << a, 1usize << b);
        for i in 0..self.amps.len() {
            if i & am != 0 && i & bm == 0 {
                self.amps.swap(i, i ^ am ^ bm);
            }
        }
    }

    fn apply_ccx(&mut self, c1: usize, c2: usize, t: usize) {
        let (c1m, c2m, tm) = (1usize << c1, 1usize << c2, 1usize << t);
        let cm = c1m | c2m;
        for i in 0..self.amps.len() {
            if i & cm == cm && i & tm == 0 {
                self.amps.swap(i, i | tm);
            }
        }
    }

    fn apply_ccz(&mut self, a: usize, b: usize, c: usize) {
        let mask = (1usize << a) | (1usize << b) | (1usize << c);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *amp = -*amp;
            }
        }
    }

    fn apply_cswap(&mut self, c: usize, a: usize, b: usize) {
        let (cm, am, bm) = (1usize << c, 1usize << a, 1usize << b);
        for i in 0..self.amps.len() {
            if i & cm != 0 && i & am != 0 && i & bm == 0 {
                self.amps.swap(i, i ^ am ^ bm);
            }
        }
    }

    fn apply_controlled_1q(&mut self, c: usize, t: usize, m: &crate::Mat2) {
        let (cm, tm) = (1usize << c, 1usize << t);
        for i in 0..self.amps.len() {
            if i & cm != 0 && i & tm == 0 {
                let j = i | tm;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Probability of measuring the full register in basis state `outcome`.
    pub fn probability(&self, outcome: usize) -> f64 {
        self.amps[outcome].norm_sqr()
    }

    /// Probability of observing `value` on the listed `qubits` (bit `k` of
    /// `value` is the outcome of `qubits[k]`), marginalizing the rest.
    pub fn marginal_probability(&self, qubits: &[usize], value: usize) -> f64 {
        let mut total = 0.0;
        'outer: for (i, amp) in self.amps.iter().enumerate() {
            for (k, &q) in qubits.iter().enumerate() {
                if (i >> q) & 1 != (value >> k) & 1 {
                    continue 'outer;
                }
            }
            total += amp.norm_sqr();
        }
        total
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn inner(&self, other: &State) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "state widths differ");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Samples `shots` full-register measurement outcomes, returning
    /// outcome → count. Deterministic per seed (SplitMix64 inversion
    /// sampling over the cumulative distribution), so tests and examples
    /// are reproducible — the statevector is *not* collapsed.
    ///
    /// This is the simulator-side analogue of the paper's experimental
    /// procedure ("each experiment is performed with 8192 trials", §5.1).
    pub fn sample_counts(
        &self,
        shots: usize,
        seed: u64,
    ) -> std::collections::HashMap<usize, usize> {
        let mut rng = SplitMix64::new(seed);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            let mut r = rng.next_unit() * self.norm().powi(2);
            let mut outcome = self.amps.len() - 1;
            for (i, amp) in self.amps.iter().enumerate() {
                r -= amp.norm_sqr();
                if r <= 0.0 {
                    outcome = i;
                    break;
                }
            }
            *counts.entry(outcome).or_insert(0) += 1;
        }
        counts
    }

    /// Total variation distance between this state's outcome distribution
    /// and an empirical `counts` histogram over `shots` samples — how far
    /// sampled results sit from the ideal distribution, in `[0, 1]`.
    pub fn total_variation_distance(
        &self,
        counts: &std::collections::HashMap<usize, usize>,
        shots: usize,
    ) -> f64 {
        let mut tvd = 0.0;
        for (i, amp) in self.amps.iter().enumerate() {
            let empirical = counts.get(&i).copied().unwrap_or(0) as f64 / shots as f64;
            tvd += (amp.norm_sqr() - empirical).abs();
        }
        tvd / 2.0
    }

    /// `true` if the states are equal up to a global phase: every amplitude
    /// pair satisfies `|a_i − e^{iα} b_i| < eps` for one shared α.
    pub fn approx_eq_up_to_phase(&self, other: &State, eps: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // Fix the phase from the largest amplitude of `other`.
        let (mut k, mut best) = (0usize, 0.0f64);
        for (i, a) in other.amps.iter().enumerate() {
            let m = a.norm_sqr();
            if m > best {
                best = m;
                k = i;
            }
        }
        if best == 0.0 {
            return self.amps.iter().all(|a| a.abs() < eps);
        }
        let phase = self.amps[k] / other.amps[k];
        if (phase.abs() - 1.0).abs() > eps {
            return false;
        }
        self.amps
            .iter()
            .zip(&other.amps)
            .all(|(a, b)| a.approx_eq(*b * phase, eps))
    }
}

/// SplitMix64: tiny deterministic PRNG for reproducible random states
/// without an external dependency.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = State::zero(3).unwrap();
        assert!((s.probability(0) - 1.0).abs() < 1e-15);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn too_many_qubits_is_an_error() {
        assert!(matches!(
            State::zero(MAX_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn x_flips_basis() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn h_creates_uniform_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut c = Circuit::new(3);
            for q in 0..3 {
                if (input >> q) & 1 == 1 {
                    c.x(q);
                }
            }
            c.ccx(0, 1, 2);
            let s = State::run(&c).unwrap();
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (s.probability(expected) - 1.0).abs() < 1e-12,
                "input {input:03b} should map to {expected:03b}"
            );
        }
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut a = Circuit::new(2);
        a.h(0).t(1).swap(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).t(1).cx(0, 1).cx(1, 0).cx(0, 1);
        let sa = State::run(&a).unwrap();
        let sb = State::run(&b).unwrap();
        assert!(sa.approx_eq_up_to_phase(&sb, 1e-10));
    }

    #[test]
    fn cz_is_symmetric() {
        for (a, b) in [(0usize, 1usize), (1, 0)] {
            let mut c = Circuit::new(2);
            c.h(0).h(1);
            c.cz(a, b);
            let s = State::run(&c).unwrap();
            // |11⟩ amplitude should be negated: ⟨ψ| = (1,1,1,-1)/2.
            assert!(s.amplitudes()[3].approx_eq(C64::real(-0.5), 1e-12));
        }
    }

    #[test]
    fn cp_applies_phase_only_on_11() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cp(std::f64::consts::FRAC_PI_2, 0, 1);
        let s = State::run(&c).unwrap();
        assert!(s.amplitudes()[3].approx_eq(C64::new(0.0, 0.5), 1e-12));
        assert!(s.amplitudes()[1].approx_eq(C64::real(0.5), 1e-12));
    }

    #[test]
    fn cxpow_half_twice_equals_cx() {
        let mut a = Circuit::new(2);
        a.h(0).h(1).cxpow(0.5, 0, 1).cxpow(0.5, 0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).cx(0, 1);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn measurement_is_skipped_by_run() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        assert!(State::run(&c).is_ok());
    }

    #[test]
    fn marginal_probability_sums_partial_outcomes() {
        let mut c = Circuit::new(3);
        c.h(0).x(2);
        let s = State::run(&c).unwrap();
        // Qubit 2 is |1⟩ regardless of qubit 0.
        assert!((s.marginal_probability(&[2], 1) - 1.0).abs() < 1e-12);
        assert!((s.marginal_probability(&[0], 1) - 0.5).abs() < 1e-12);
        assert!((s.marginal_probability(&[0, 2], 0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_state_is_normalized_and_deterministic() {
        let a = State::random(5, 42).unwrap();
        let b = State::random(5, 42).unwrap();
        let c = State::random(5, 43).unwrap();
        assert!((a.norm() - 1.0).abs() < 1e-12);
        assert_eq!(a, b);
        assert!(a.fidelity(&c) < 0.99);
    }

    #[test]
    fn global_phase_comparison() {
        let a = State::random(4, 7).unwrap();
        let mut b = a.clone();
        for amp in &mut b.amps {
            *amp *= C64::cis(1.234);
        }
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
        assert_ne!(a, b);
    }

    #[test]
    fn rz_vs_u1_differ_by_global_phase_only() {
        let mut a = Circuit::new(1);
        a.h(0).rz(0.7, 0);
        let mut b = Circuit::new(1);
        b.h(0).u1(0.7, 0);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn from_amplitudes_validates_length() {
        assert!(State::from_amplitudes(vec![C64::ONE; 3]).is_err());
        assert!(State::from_amplitudes(vec![C64::ONE, C64::ZERO]).is_ok());
    }

    #[test]
    fn sampling_matches_distribution() {
        // |+⟩|0⟩: outcomes 0b00 and 0b01 each with probability 1/2.
        let mut c = Circuit::new(2);
        c.h(0);
        let state = State::run(&c).unwrap();
        let shots = 10_000;
        let counts = state.sample_counts(shots, 7);
        let zero = *counts.get(&0b00).unwrap_or(&0) as f64 / shots as f64;
        let one = *counts.get(&0b01).unwrap_or(&0) as f64 / shots as f64;
        assert!((zero - 0.5).abs() < 0.02, "P(00) = {zero}");
        assert!((one - 0.5).abs() < 0.02, "P(01) = {one}");
        assert_eq!(counts.values().sum::<usize>(), shots);
        assert!(state.total_variation_distance(&counts, shots) < 0.02);
    }

    #[test]
    fn sampling_is_seeded() {
        let state = State::random(3, 4).unwrap();
        assert_eq!(state.sample_counts(100, 1), state.sample_counts(100, 1));
        assert_ne!(state.sample_counts(100, 1), state.sample_counts(100, 2));
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let state = State::basis(3, 0b101).unwrap();
        let counts = state.sample_counts(50, 9);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b101], 50);
        assert_eq!(state.total_variation_distance(&counts, 50), 0.0);
    }

    #[test]
    fn tvd_detects_wrong_histogram() {
        let state = State::basis(2, 0).unwrap();
        let mut wrong = std::collections::HashMap::new();
        wrong.insert(0b11usize, 100usize);
        assert!((state.total_variation_distance(&wrong, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccz_flips_phase_only_on_all_ones() {
        // CCZ = diag(1,…,1,−1): the |111⟩ amplitude negates, all others
        // (and all probabilities) are untouched.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).ccz(0, 1, 2);
        let state = State::run(&c).unwrap();
        let uniform = (1.0f64 / 8.0).sqrt();
        for k in 0..8 {
            let expected = if k == 0b111 { -uniform } else { uniform };
            assert!(
                (state.amplitudes()[k].re - expected).abs() < 1e-12,
                "basis {k}"
            );
            assert!(state.amplitudes()[k].im.abs() < 1e-12);
        }
    }

    #[test]
    fn ccz_matches_h_conjugated_ccx() {
        let mut a = Circuit::new(3);
        a.h(0).h(1).h(2).ccz(0, 1, 2);
        let mut b = Circuit::new(3);
        b.h(0).h(1).h(2).h(2).ccx(0, 1, 2).h(2);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn cswap_exchanges_targets_when_control_set() {
        // |1⟩|1⟩|0⟩ → |1⟩|0⟩|1⟩ (control q0, swapped pair q1/q2).
        let mut c = Circuit::new(3);
        c.x(0).x(1).cswap(0, 1, 2);
        let state = State::run(&c).unwrap();
        assert!((state.probability(0b101) - 1.0).abs() < 1e-12);
        // Control clear: nothing moves.
        let mut c = Circuit::new(3);
        c.x(1).cswap(0, 1, 2);
        let state = State::run(&c).unwrap();
        assert!((state.probability(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_matches_three_toffolis() {
        // CSWAP(c;a,b) = CCX(c,a,b)·CCX(c,b,a)·CCX(c,a,b).
        let mut a = Circuit::new(3);
        a.h(0).h(1).t(2).cswap(0, 1, 2);
        let mut b = Circuit::new(3);
        b.h(0).h(1).t(2).ccx(0, 1, 2).ccx(0, 2, 1).ccx(0, 1, 2);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }
}
