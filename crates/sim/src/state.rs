//! Dense statevector simulation.

use crate::{single_qubit_matrix, SimError, C64};
use std::ops::Range;
use trios_ir::{Circuit, Gate, Instruction};

/// Hard cap on dense-simulation width (2²⁴ amplitudes ≈ 268 MB).
pub const MAX_QUBITS: usize = 24;

/// Amplitude count above which the auto thread policy goes parallel.
///
/// Below this the per-gate work is far smaller than the cost of spawning
/// scoped worker threads, so the kernels stay single-threaded.
const PARALLEL_THRESHOLD: usize = 1 << 17;

/// A dense statevector over `n` qubits.
///
/// Qubit `q` corresponds to bit `q` of the basis index, so basis state
/// `|b_{n-1} … b_1 b_0⟩` lives at index `Σ b_q · 2^q`.
///
/// The simulator exists to *verify* the compiler: every decomposition and
/// every routed circuit in this workspace is checked against the original
/// program's statevector. It is not meant to compete with production
/// simulators, but it comfortably handles the paper's 20-qubit benchmarks.
///
/// # Kernels
///
/// Gate application walks the affected amplitude tuples directly with
/// bit-stride ("insert zero bit") index construction — a 1-qubit gate
/// visits exactly `2^(n-1)` pairs, a CX exactly `2^(n-2)`, a Toffoli
/// exactly `2^(n-3)` — instead of scanning all `2^n` indices and
/// branching away the non-participants. Above [`PARALLEL_THRESHOLD`]
/// amplitudes the tuple range is split across scoped worker threads
/// ([`State::set_threads`] pins the count); every tuple is computed by
/// the same floating-point expression regardless of the split, so
/// results are **byte-identical across thread counts**.
///
/// # Examples
///
/// ```
/// use trios_ir::Circuit;
/// use trios_sim::State;
///
/// // A Toffoli flips the target only when both controls are set.
/// let mut c = Circuit::new(3);
/// c.x(0).x(1).ccx(0, 1, 2);
/// let state = State::run(&c).unwrap();
/// assert!((state.probability(0b111) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct State {
    num_qubits: usize,
    amps: Vec<C64>,
    /// Worker threads for the kernels: `0` = automatic (parallel only
    /// above [`PARALLEL_THRESHOLD`]). Not part of the state's value —
    /// `PartialEq` ignores it.
    threads: usize,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits == other.num_qubits && self.amps == other.amps
    }
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    pub fn zero(num_qubits: usize) -> Result<Self, SimError> {
        Self::basis(num_qubits, 0)
    }

    /// The computational basis state with the given index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    pub fn basis(num_qubits: usize, index: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        assert!(
            index < dim,
            "basis index {index} out of range for {num_qubits} qubits"
        );
        let mut amps = vec![C64::ZERO; dim];
        amps[index] = C64::ONE;
        Ok(State {
            num_qubits,
            amps,
            threads: 0,
        })
    }

    /// A deterministic pseudo-random state (uniform amplitudes, normalized),
    /// seeded so tests are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above [`MAX_QUBITS`].
    pub fn random(num_qubits: usize, seed: u64) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        let dim = 1usize << num_qubits;
        let mut rng = SplitMix64::new(seed);
        let mut amps = Vec::with_capacity(dim);
        for _ in 0..dim {
            amps.push(C64::new(rng.next_unit() - 0.5, rng.next_unit() - 0.5));
        }
        let mut state = State {
            num_qubits,
            amps,
            threads: 0,
        };
        state.normalize();
        Ok(state)
    }

    /// Builds a state from raw amplitudes (length must be a power of two).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the length is not a power of
    /// two, or [`SimError::TooManyQubits`] if it is too large.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() {
            return Err(SimError::WidthMismatch {
                expected: amps.len().next_power_of_two(),
                actual: amps.len(),
            });
        }
        let num_qubits = amps.len().trailing_zeros() as usize;
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        Ok(State {
            num_qubits,
            amps,
            threads: 0,
        })
    }

    /// Runs `circuit` on `|0…0⟩`. Measurements are skipped (the success
    /// model accounts for readout separately).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] for circuits above [`MAX_QUBITS`].
    pub fn run(circuit: &Circuit) -> Result<Self, SimError> {
        let mut state = State::zero(circuit.num_qubits())?;
        state.apply_circuit(circuit)?;
        Ok(state)
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Pins the kernel worker-thread count: `0` restores the automatic
    /// policy (single-threaded below [`PARALLEL_THRESHOLD`] amplitudes,
    /// one worker per available core above it). Results are byte-identical
    /// for every setting; this knob exists for benchmarks and tests.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The raw amplitudes (little-endian qubit order).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The ℓ² norm (1 for any valid quantum state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for a in &mut self.amps {
                *a = a.scale(1.0 / n);
            }
        }
    }

    /// Applies all unitary instructions of `circuit`, skipping measurements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the circuit is wider than the
    /// state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::WidthMismatch {
                expected: self.num_qubits,
                actual: circuit.num_qubits(),
            });
        }
        for instr in circuit.iter() {
            if instr.gate().is_measurement() {
                continue;
            }
            self.try_apply(instr)?;
        }
        Ok(())
    }

    /// [`State::apply_circuit`] with single-qubit gate fusion: each maximal
    /// run of *consecutive* single-qubit gates on one qubit is multiplied
    /// into a single 2×2 matrix and applied with one kernel sweep.
    ///
    /// The result is the same unitary, so amplitudes agree with the unfused
    /// path to floating-point re-association error (≪ 1e-12) — the
    /// equivalence checkers use this path; callers that need the exact
    /// legacy gate-by-gate arithmetic use [`State::apply_circuit`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the circuit is wider than the
    /// state.
    pub fn apply_circuit_fused(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::WidthMismatch {
                expected: self.num_qubits,
                actual: circuit.num_qubits(),
            });
        }
        let instrs = circuit.instructions();
        let mut i = 0;
        while i < instrs.len() {
            let instr = &instrs[i];
            let gate = instr.gate();
            if gate.is_measurement() {
                i += 1;
                continue;
            }
            if gate.is_single_qubit() {
                if let Some(mut m) = single_qubit_matrix(gate) {
                    let q = instr.qubit(0).index();
                    self.check_operands(instr);
                    let mut j = i + 1;
                    while j < instrs.len() {
                        let next = instrs[j].gate();
                        if !next.is_single_qubit()
                            || next.is_measurement()
                            || instrs[j].qubit(0).index() != q
                        {
                            break;
                        }
                        match single_qubit_matrix(next) {
                            Some(n) => m = crate::mat2_mul(&n, &m),
                            None => break,
                        }
                        j += 1;
                    }
                    self.apply_1q(q, &m);
                    i = j;
                    continue;
                }
            }
            self.try_apply(instr)?;
            i += 1;
        }
        Ok(())
    }

    /// Applies one unitary instruction, panicking on anything
    /// [`State::try_apply`] rejects.
    ///
    /// # Panics
    ///
    /// Panics on measurement instructions, matrixless gates, or
    /// out-of-range qubits. The bounds check is unconditional (not a
    /// `debug_assert`): in a release build a qubit index ≥ 64 would
    /// otherwise wrap through the shift (`1usize << q` masks `q` on
    /// x86/ARM) and silently corrupt the amplitudes of a *different*
    /// qubit.
    pub fn apply(&mut self, instr: &Instruction) {
        if let Err(e) = self.try_apply(instr) {
            panic!("cannot apply {} as a unitary: {e}", instr.gate());
        }
    }

    /// Applies one unitary instruction.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedGate`] for measurements and any gate
    /// without a unitary action on this backend.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits. The bounds check is unconditional
    /// (not a `debug_assert`): in a release build a qubit index ≥ 64
    /// would otherwise wrap through the shift (`1usize << q` masks `q` on
    /// x86/ARM) and silently corrupt the amplitudes of a *different*
    /// qubit.
    pub fn try_apply(&mut self, instr: &Instruction) -> Result<(), SimError> {
        self.check_operands(instr);
        let qs = instr.qubits();
        match instr.gate() {
            Gate::Measure => {
                return Err(SimError::UnsupportedGate {
                    gate: instr.gate().to_string(),
                    backend: "dense",
                })
            }
            Gate::I => {}
            Gate::X => self.apply_x(qs[0].index()),
            Gate::Z => self.apply_phase_1q(qs[0].index(), -C64::ONE),
            Gate::S => self.apply_phase_1q(qs[0].index(), C64::I),
            Gate::Sdg => self.apply_phase_1q(qs[0].index(), -C64::I),
            Gate::T => self.apply_phase_1q(qs[0].index(), C64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => self.apply_phase_1q(qs[0].index(), C64::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::U1(l) => self.apply_phase_1q(qs[0].index(), C64::cis(l)),
            Gate::Cx => self.apply_cx(qs[0].index(), qs[1].index()),
            Gate::Cz => self.apply_cphase(qs[0].index(), qs[1].index(), -C64::ONE),
            Gate::Cp(l) => self.apply_cphase(qs[0].index(), qs[1].index(), C64::cis(l)),
            Gate::Swap => self.apply_swap(qs[0].index(), qs[1].index()),
            Gate::Ccx => self.apply_ccx(qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Ccz => self.apply_ccz(qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Cswap => self.apply_cswap(qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Cxpow(t) => {
                let m = crate::xpow_matrix(t);
                self.apply_controlled_1q(qs[0].index(), qs[1].index(), &m);
            }
            g => match single_qubit_matrix(g) {
                Some(m) => self.apply_1q(qs[0].index(), &m),
                None => {
                    return Err(SimError::UnsupportedGate {
                        gate: g.to_string(),
                        backend: "dense",
                    })
                }
            },
        }
        Ok(())
    }

    /// The uniform operand guard every kernel entry point runs.
    fn check_operands(&self, instr: &Instruction) {
        for q in instr.qubits() {
            let idx = q.index();
            assert!(
                idx < self.num_qubits,
                "qubit {idx} out of range for a {}-qubit state (gate {})",
                self.num_qubits,
                instr.gate()
            );
        }
    }

    /// Worker count for a kernel visiting `count` amplitude tuples.
    fn kernel_threads(&self, count: usize) -> usize {
        if count < 2 {
            return 1;
        }
        let threads = if self.threads != 0 {
            self.threads
        } else if self.amps.len() >= PARALLEL_THRESHOLD {
            available_threads()
        } else {
            1
        };
        threads.clamp(1, count)
    }

    fn apply_1q(&mut self, q: usize, m: &crate::Mat2) {
        let mask = 1usize << q;
        let count = self.amps.len() / 2;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let m = *m;
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i = insert_zero(k, mask);
                let j = i | mask;
                // SAFETY: `insert_zero` maps distinct `k < 2^(n-1)` to
                // disjoint in-range pairs `(i, j)`, and ranges never
                // overlap, so no two iterations alias.
                unsafe {
                    let a0 = *p.add(i);
                    let a1 = *p.add(j);
                    *p.add(i) = m[0][0] * a0 + m[0][1] * a1;
                    *p.add(j) = m[1][0] * a0 + m[1][1] * a1;
                }
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_x(&mut self, q: usize) {
        let mask = 1usize << q;
        let count = self.amps.len() / 2;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i = insert_zero(k, mask);
                // SAFETY: disjoint in-range pairs, as in `apply_1q`.
                unsafe { std::ptr::swap(p.add(i), p.add(i | mask)) };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_phase_1q(&mut self, q: usize, phase: C64) {
        let mask = 1usize << q;
        let count = self.amps.len() / 2;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i = insert_zero(k, mask) | mask;
                // SAFETY: distinct `k` give distinct in-range `i`.
                unsafe { *p.add(i) *= phase };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_cx(&mut self, c: usize, t: usize) {
        let (cm, tm) = (1usize << c, 1usize << t);
        let (lo, hi) = (cm.min(tm), cm.max(tm));
        let count = self.amps.len() / 4;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let base = insert_zero(insert_zero(k, lo), hi) | cm;
                // SAFETY: disjoint in-range pairs (control set, target
                // clear vs. set).
                unsafe { std::ptr::swap(p.add(base), p.add(base | tm)) };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_cphase(&mut self, a: usize, b: usize, phase: C64) {
        let (am, bm) = (1usize << a, 1usize << b);
        let (lo, hi) = (am.min(bm), am.max(bm));
        let count = self.amps.len() / 4;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i = insert_zero(insert_zero(k, lo), hi) | am | bm;
                // SAFETY: distinct `k` give distinct in-range `i`.
                unsafe { *p.add(i) *= phase };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let (am, bm) = (1usize << a, 1usize << b);
        let (lo, hi) = (am.min(bm), am.max(bm));
        let count = self.amps.len() / 4;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i0 = insert_zero(insert_zero(k, lo), hi);
                // SAFETY: disjoint in-range pairs (`|01⟩` vs. `|10⟩` on
                // the swapped bits).
                unsafe { std::ptr::swap(p.add(i0 | am), p.add(i0 | bm)) };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_ccx(&mut self, c1: usize, c2: usize, t: usize) {
        let (c1m, c2m, tm) = (1usize << c1, 1usize << c2, 1usize << t);
        let [m0, m1, m2] = sorted3(c1m, c2m, tm);
        let count = self.amps.len() / 8;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let base = insert_zero(insert_zero(insert_zero(k, m0), m1), m2) | c1m | c2m;
                // SAFETY: disjoint in-range pairs (controls set, target
                // clear vs. set).
                unsafe { std::ptr::swap(p.add(base), p.add(base | tm)) };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_ccz(&mut self, a: usize, b: usize, c: usize) {
        let (am, bm, cm) = (1usize << a, 1usize << b, 1usize << c);
        let [m0, m1, m2] = sorted3(am, bm, cm);
        let count = self.amps.len() / 8;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i = insert_zero(insert_zero(insert_zero(k, m0), m1), m2) | am | bm | cm;
                // SAFETY: distinct `k` give distinct in-range `i`.
                unsafe { *p.add(i) = -*p.add(i) };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_cswap(&mut self, c: usize, a: usize, b: usize) {
        let (cm, am, bm) = (1usize << c, 1usize << a, 1usize << b);
        let [m0, m1, m2] = sorted3(cm, am, bm);
        let count = self.amps.len() / 8;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i0 = insert_zero(insert_zero(insert_zero(k, m0), m1), m2) | cm;
                // SAFETY: disjoint in-range pairs, as in `apply_swap`.
                unsafe { std::ptr::swap(p.add(i0 | am), p.add(i0 | bm)) };
            }
        };
        run_ranges(count, threads, &kernel);
    }

    fn apply_controlled_1q(&mut self, c: usize, t: usize, m: &crate::Mat2) {
        let (cm, tm) = (1usize << c, 1usize << t);
        let (lo, hi) = (cm.min(tm), cm.max(tm));
        let count = self.amps.len() / 4;
        let threads = self.kernel_threads(count);
        let ptr = AmpPtr(self.amps.as_mut_ptr());
        let m = *m;
        let kernel = move |range: Range<usize>| {
            let p = ptr.get();
            for k in range {
                let i = insert_zero(insert_zero(k, lo), hi) | cm;
                let j = i | tm;
                // SAFETY: disjoint in-range pairs, as in `apply_cx`.
                unsafe {
                    let a0 = *p.add(i);
                    let a1 = *p.add(j);
                    *p.add(i) = m[0][0] * a0 + m[0][1] * a1;
                    *p.add(j) = m[1][0] * a0 + m[1][1] * a1;
                }
            }
        };
        run_ranges(count, threads, &kernel);
    }

    /// Probability of measuring the full register in basis state `outcome`.
    pub fn probability(&self, outcome: usize) -> f64 {
        self.amps[outcome].norm_sqr()
    }

    /// Probability of observing `value` on the listed `qubits` (bit `k` of
    /// `value` is the outcome of `qubits[k]`), marginalizing the rest.
    pub fn marginal_probability(&self, qubits: &[usize], value: usize) -> f64 {
        let mut total = 0.0;
        'outer: for (i, amp) in self.amps.iter().enumerate() {
            for (k, &q) in qubits.iter().enumerate() {
                if (i >> q) & 1 != (value >> k) & 1 {
                    continue 'outer;
                }
            }
            total += amp.norm_sqr();
        }
        total
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn inner(&self, other: &State) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "state widths differ");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Samples `shots` full-register measurement outcomes, returning
    /// outcome → count. Deterministic per seed (SplitMix64 inversion
    /// sampling over the cumulative distribution), so tests and examples
    /// are reproducible — the statevector is *not* collapsed.
    ///
    /// This is the simulator-side analogue of the paper's experimental
    /// procedure ("each experiment is performed with 8192 trials", §5.1).
    pub fn sample_counts(
        &self,
        shots: usize,
        seed: u64,
    ) -> std::collections::HashMap<usize, usize> {
        let mut rng = SplitMix64::new(seed);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            let mut r = rng.next_unit() * self.norm().powi(2);
            let mut outcome = self.amps.len() - 1;
            for (i, amp) in self.amps.iter().enumerate() {
                r -= amp.norm_sqr();
                if r <= 0.0 {
                    outcome = i;
                    break;
                }
            }
            *counts.entry(outcome).or_insert(0) += 1;
        }
        counts
    }

    /// Total variation distance between this state's outcome distribution
    /// and an empirical `counts` histogram over `shots` samples — how far
    /// sampled results sit from the ideal distribution, in `[0, 1]`.
    pub fn total_variation_distance(
        &self,
        counts: &std::collections::HashMap<usize, usize>,
        shots: usize,
    ) -> f64 {
        let mut tvd = 0.0;
        for (i, amp) in self.amps.iter().enumerate() {
            let empirical = counts.get(&i).copied().unwrap_or(0) as f64 / shots as f64;
            tvd += (amp.norm_sqr() - empirical).abs();
        }
        tvd / 2.0
    }

    /// `true` if the states are equal up to a global phase: every amplitude
    /// pair satisfies `|a_i − e^{iα} b_i| < eps` for one shared α.
    pub fn approx_eq_up_to_phase(&self, other: &State, eps: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // Fix the phase from the largest amplitude of `other`.
        let (mut k, mut best) = (0usize, 0.0f64);
        for (i, a) in other.amps.iter().enumerate() {
            let m = a.norm_sqr();
            if m > best {
                best = m;
                k = i;
            }
        }
        if best == 0.0 {
            return self.amps.iter().all(|a| a.abs() < eps);
        }
        let phase = self.amps[k] / other.amps[k];
        if (phase.abs() - 1.0).abs() > eps {
            return false;
        }
        self.amps
            .iter()
            .zip(&other.amps)
            .all(|(a, b)| a.approx_eq(*b * phase, eps))
    }
}

/// Inserts a zero bit at the position marked by `mask` (a single set bit):
/// the bits of `k` below the position stay put, the rest shift up one.
/// Applying it for each of a gate's qubit masks in ascending order
/// enumerates exactly the basis indices with zeros on those qubits.
#[inline(always)]
fn insert_zero(k: usize, mask: usize) -> usize {
    let low = k & (mask - 1);
    ((k ^ low) << 1) | low
}

/// Three single-bit masks in ascending order.
#[inline(always)]
fn sorted3(a: usize, b: usize, c: usize) -> [usize; 3] {
    let mut m = [a, b, c];
    m.sort_unstable();
    m
}

/// Raw amplitude pointer that scoped kernel workers share. Safe because
/// every kernel partitions the tuple index range disjointly and each tuple
/// touches amplitudes no other tuple does.
#[derive(Clone, Copy)]
struct AmpPtr(*mut C64);

unsafe impl Send for AmpPtr {}
unsafe impl Sync for AmpPtr {}

impl AmpPtr {
    /// Accessor (rather than direct field use) so `move` closures capture
    /// the `Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut C64 {
        self.0
    }
}

/// Splits `0..count` into `threads` contiguous ranges and runs `kernel`
/// on each, on scoped worker threads when `threads > 1`.
fn run_ranges(count: usize, threads: usize, kernel: &(dyn Fn(Range<usize>) + Sync)) {
    if threads <= 1 || count == 0 {
        kernel(0..count);
        return;
    }
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut start = 0usize;
        while start < count {
            let end = (start + chunk).min(count);
            scope.spawn(move || kernel(start..end));
            start = end;
        }
    });
}

/// One worker per available core (cached; 1 if the count is unknown).
fn available_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// SplitMix64: tiny deterministic PRNG for reproducible random states
/// without an external dependency.
#[derive(Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = State::zero(3).unwrap();
        assert!((s.probability(0) - 1.0).abs() < 1e-15);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn measurement_bearing_circuits_error_structurally_not_by_panic() {
        use crate::{DenseSimulator, Simulator};
        let mut c = Circuit::new(2);
        c.h(0).measure(0).cx(0, 1);
        // The dense backend replays only the unitary part; the embedded
        // measurement must not abort the check.
        let sim = DenseSimulator::default();
        assert!(sim.circuits_equivalent(&c, &c, 2, 1).unwrap());
        // Feeding the measurement directly is a structured error, not a
        // panic.
        let measure = c.iter().find(|i| i.gate().is_measurement()).unwrap();
        let mut state = State::zero(2).unwrap();
        assert!(matches!(
            state.try_apply(measure),
            Err(SimError::UnsupportedGate {
                backend: "dense",
                ..
            })
        ));
    }

    #[test]
    fn too_many_qubits_is_an_error() {
        assert!(matches!(
            State::zero(MAX_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn x_flips_basis() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn h_creates_uniform_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut c = Circuit::new(3);
            for q in 0..3 {
                if (input >> q) & 1 == 1 {
                    c.x(q);
                }
            }
            c.ccx(0, 1, 2);
            let s = State::run(&c).unwrap();
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (s.probability(expected) - 1.0).abs() < 1e-12,
                "input {input:03b} should map to {expected:03b}"
            );
        }
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let s = State::run(&c).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut a = Circuit::new(2);
        a.h(0).t(1).swap(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).t(1).cx(0, 1).cx(1, 0).cx(0, 1);
        let sa = State::run(&a).unwrap();
        let sb = State::run(&b).unwrap();
        assert!(sa.approx_eq_up_to_phase(&sb, 1e-10));
    }

    #[test]
    fn cz_is_symmetric() {
        for (a, b) in [(0usize, 1usize), (1, 0)] {
            let mut c = Circuit::new(2);
            c.h(0).h(1);
            c.cz(a, b);
            let s = State::run(&c).unwrap();
            // |11⟩ amplitude should be negated: ⟨ψ| = (1,1,1,-1)/2.
            assert!(s.amplitudes()[3].approx_eq(C64::real(-0.5), 1e-12));
        }
    }

    #[test]
    fn cp_applies_phase_only_on_11() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cp(std::f64::consts::FRAC_PI_2, 0, 1);
        let s = State::run(&c).unwrap();
        assert!(s.amplitudes()[3].approx_eq(C64::new(0.0, 0.5), 1e-12));
        assert!(s.amplitudes()[1].approx_eq(C64::real(0.5), 1e-12));
    }

    #[test]
    fn cxpow_half_twice_equals_cx() {
        let mut a = Circuit::new(2);
        a.h(0).h(1).cxpow(0.5, 0, 1).cxpow(0.5, 0, 1);
        let mut b = Circuit::new(2);
        b.h(0).h(1).cx(0, 1);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn measurement_is_skipped_by_run() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        assert!(State::run(&c).is_ok());
    }

    #[test]
    fn marginal_probability_sums_partial_outcomes() {
        let mut c = Circuit::new(3);
        c.h(0).x(2);
        let s = State::run(&c).unwrap();
        // Qubit 2 is |1⟩ regardless of qubit 0.
        assert!((s.marginal_probability(&[2], 1) - 1.0).abs() < 1e-12);
        assert!((s.marginal_probability(&[0], 1) - 0.5).abs() < 1e-12);
        assert!((s.marginal_probability(&[0, 2], 0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_state_is_normalized_and_deterministic() {
        let a = State::random(5, 42).unwrap();
        let b = State::random(5, 42).unwrap();
        let c = State::random(5, 43).unwrap();
        assert!((a.norm() - 1.0).abs() < 1e-12);
        assert_eq!(a, b);
        assert!(a.fidelity(&c) < 0.99);
    }

    #[test]
    fn global_phase_comparison() {
        let a = State::random(4, 7).unwrap();
        let mut b = a.clone();
        for amp in &mut b.amps {
            *amp *= C64::cis(1.234);
        }
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
        assert_ne!(a, b);
    }

    #[test]
    fn rz_vs_u1_differ_by_global_phase_only() {
        let mut a = Circuit::new(1);
        a.h(0).rz(0.7, 0);
        let mut b = Circuit::new(1);
        b.h(0).u1(0.7, 0);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn from_amplitudes_validates_length() {
        assert!(State::from_amplitudes(vec![C64::ONE; 3]).is_err());
        assert!(State::from_amplitudes(vec![C64::ONE, C64::ZERO]).is_ok());
    }

    #[test]
    fn sampling_matches_distribution() {
        // |+⟩|0⟩: outcomes 0b00 and 0b01 each with probability 1/2.
        let mut c = Circuit::new(2);
        c.h(0);
        let state = State::run(&c).unwrap();
        let shots = 10_000;
        let counts = state.sample_counts(shots, 7);
        let zero = *counts.get(&0b00).unwrap_or(&0) as f64 / shots as f64;
        let one = *counts.get(&0b01).unwrap_or(&0) as f64 / shots as f64;
        assert!((zero - 0.5).abs() < 0.02, "P(00) = {zero}");
        assert!((one - 0.5).abs() < 0.02, "P(01) = {one}");
        assert_eq!(counts.values().sum::<usize>(), shots);
        assert!(state.total_variation_distance(&counts, shots) < 0.02);
    }

    #[test]
    fn sampling_is_seeded() {
        let state = State::random(3, 4).unwrap();
        assert_eq!(state.sample_counts(100, 1), state.sample_counts(100, 1));
        assert_ne!(state.sample_counts(100, 1), state.sample_counts(100, 2));
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let state = State::basis(3, 0b101).unwrap();
        let counts = state.sample_counts(50, 9);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b101], 50);
        assert_eq!(state.total_variation_distance(&counts, 50), 0.0);
    }

    #[test]
    fn tvd_detects_wrong_histogram() {
        let state = State::basis(2, 0).unwrap();
        let mut wrong = std::collections::HashMap::new();
        wrong.insert(0b11usize, 100usize);
        assert!((state.total_variation_distance(&wrong, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccz_flips_phase_only_on_all_ones() {
        // CCZ = diag(1,…,1,−1): the |111⟩ amplitude negates, all others
        // (and all probabilities) are untouched.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).ccz(0, 1, 2);
        let state = State::run(&c).unwrap();
        let uniform = (1.0f64 / 8.0).sqrt();
        for k in 0..8 {
            let expected = if k == 0b111 { -uniform } else { uniform };
            assert!(
                (state.amplitudes()[k].re - expected).abs() < 1e-12,
                "basis {k}"
            );
            assert!(state.amplitudes()[k].im.abs() < 1e-12);
        }
    }

    #[test]
    fn ccz_matches_h_conjugated_ccx() {
        let mut a = Circuit::new(3);
        a.h(0).h(1).h(2).ccz(0, 1, 2);
        let mut b = Circuit::new(3);
        b.h(0).h(1).h(2).h(2).ccx(0, 1, 2).h(2);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn cswap_exchanges_targets_when_control_set() {
        // |1⟩|1⟩|0⟩ → |1⟩|0⟩|1⟩ (control q0, swapped pair q1/q2).
        let mut c = Circuit::new(3);
        c.x(0).x(1).cswap(0, 1, 2);
        let state = State::run(&c).unwrap();
        assert!((state.probability(0b101) - 1.0).abs() < 1e-12);
        // Control clear: nothing moves.
        let mut c = Circuit::new(3);
        c.x(1).cswap(0, 1, 2);
        let state = State::run(&c).unwrap();
        assert!((state.probability(0b010) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_matches_three_toffolis() {
        // CSWAP(c;a,b) = CCX(c,a,b)·CCX(c,b,a)·CCX(c,a,b).
        let mut a = Circuit::new(3);
        a.h(0).h(1).t(2).cswap(0, 1, 2);
        let mut b = Circuit::new(3);
        b.h(0).h(1).t(2).ccx(0, 1, 2).ccx(0, 2, 1).ccx(0, 1, 2);
        assert!(State::run(&a)
            .unwrap()
            .approx_eq_up_to_phase(&State::run(&b).unwrap(), 1e-10));
    }

    #[test]
    fn insert_zero_enumerates_cleared_bit_indices() {
        // For a 4-bit space and mask 0b0100, k = 0..8 must enumerate, in
        // order, exactly the indices with bit 2 clear.
        let expect: Vec<usize> = (0..16).filter(|i| i & 0b100 == 0).collect();
        let got: Vec<usize> = (0..8).map(|k| insert_zero(k, 0b100)).collect();
        assert_eq!(got, expect);
    }

    /// The seed-era kernels: full-index scans that branch away the
    /// non-participating amplitudes. The new stride kernels must match
    /// them **bitwise** — same expressions per amplitude tuple, just
    /// without the scan — which this module pins for every gate kind.
    mod naive {
        use super::super::*;

        pub fn apply_1q(amps: &mut [C64], q: usize, m: &crate::Mat2) {
            let mask = 1usize << q;
            for i in 0..amps.len() {
                if i & mask == 0 {
                    let j = i | mask;
                    let (a0, a1) = (amps[i], amps[j]);
                    amps[i] = m[0][0] * a0 + m[0][1] * a1;
                    amps[j] = m[1][0] * a0 + m[1][1] * a1;
                }
            }
        }

        pub fn apply_x(amps: &mut [C64], q: usize) {
            let mask = 1usize << q;
            for i in 0..amps.len() {
                if i & mask == 0 {
                    amps.swap(i, i | mask);
                }
            }
        }

        pub fn apply_phase_1q(amps: &mut [C64], q: usize, phase: C64) {
            let mask = 1usize << q;
            for (i, a) in amps.iter_mut().enumerate() {
                if i & mask != 0 {
                    *a *= phase;
                }
            }
        }

        pub fn apply_cx(amps: &mut [C64], c: usize, t: usize) {
            let (cm, tm) = (1usize << c, 1usize << t);
            for i in 0..amps.len() {
                if i & cm != 0 && i & tm == 0 {
                    amps.swap(i, i | tm);
                }
            }
        }

        pub fn apply_cphase(amps: &mut [C64], a: usize, b: usize, phase: C64) {
            let mask = (1usize << a) | (1usize << b);
            for (i, amp) in amps.iter_mut().enumerate() {
                if i & mask == mask {
                    *amp *= phase;
                }
            }
        }

        pub fn apply_swap(amps: &mut [C64], a: usize, b: usize) {
            let (am, bm) = (1usize << a, 1usize << b);
            for i in 0..amps.len() {
                if i & am != 0 && i & bm == 0 {
                    amps.swap(i, i ^ am ^ bm);
                }
            }
        }

        pub fn apply_ccx(amps: &mut [C64], c1: usize, c2: usize, t: usize) {
            let (c1m, c2m, tm) = (1usize << c1, 1usize << c2, 1usize << t);
            let cm = c1m | c2m;
            for i in 0..amps.len() {
                if i & cm == cm && i & tm == 0 {
                    amps.swap(i, i | tm);
                }
            }
        }

        pub fn apply_ccz(amps: &mut [C64], a: usize, b: usize, c: usize) {
            let mask = (1usize << a) | (1usize << b) | (1usize << c);
            for (i, amp) in amps.iter_mut().enumerate() {
                if i & mask == mask {
                    *amp = -*amp;
                }
            }
        }

        pub fn apply_cswap(amps: &mut [C64], c: usize, a: usize, b: usize) {
            let (cm, am, bm) = (1usize << c, 1usize << a, 1usize << b);
            for i in 0..amps.len() {
                if i & cm != 0 && i & am != 0 && i & bm == 0 {
                    amps.swap(i, i ^ am ^ bm);
                }
            }
        }

        pub fn apply_controlled_1q(amps: &mut [C64], c: usize, t: usize, m: &crate::Mat2) {
            let (cm, tm) = (1usize << c, 1usize << t);
            for i in 0..amps.len() {
                if i & cm != 0 && i & tm == 0 {
                    let j = i | tm;
                    let (a0, a1) = (amps[i], amps[j]);
                    amps[i] = m[0][0] * a0 + m[0][1] * a1;
                    amps[j] = m[1][0] * a0 + m[1][1] * a1;
                }
            }
        }
    }

    /// One instruction of every gate kind the dense simulator applies,
    /// on deliberately shuffled operands (high/low, adjacent, spread).
    fn all_kind_instructions() -> Vec<Instruction> {
        use trios_ir::Qubit;
        let q = Qubit::new;
        let i = Instruction::new;
        vec![
            i(Gate::H, &[q(3)]),
            i(Gate::X, &[q(5)]),
            i(Gate::Y, &[q(0)]),
            i(Gate::Z, &[q(4)]),
            i(Gate::S, &[q(1)]),
            i(Gate::Sdg, &[q(2)]),
            i(Gate::T, &[q(5)]),
            i(Gate::Tdg, &[q(0)]),
            i(Gate::Sx, &[q(3)]),
            i(Gate::Rx(0.3), &[q(2)]),
            i(Gate::Ry(0.7), &[q(4)]),
            i(Gate::Rz(1.1), &[q(1)]),
            i(Gate::U1(0.9), &[q(0)]),
            i(Gate::U2(0.2, 0.4), &[q(5)]),
            i(Gate::U3(0.3, 0.5, 0.7), &[q(2)]),
            i(Gate::Xpow(0.25), &[q(3)]),
            i(Gate::Cx, &[q(4), q(1)]),
            i(Gate::Cx, &[q(0), q(5)]),
            i(Gate::Cz, &[q(2), q(4)]),
            i(Gate::Cp(0.6), &[q(5), q(0)]),
            i(Gate::Swap, &[q(1), q(4)]),
            i(Gate::Cxpow(0.5), &[q(3), q(0)]),
            i(Gate::Ccx, &[q(5), q(0), q(3)]),
            i(Gate::Ccz, &[q(1), q(4), q(2)]),
            i(Gate::Cswap, &[q(2), q(5), q(1)]),
        ]
    }

    /// Applies `instr` to raw amplitudes with the seed-era scan kernels.
    fn naive_apply(amps: &mut [C64], instr: &Instruction) {
        let qs = instr.qubits();
        match instr.gate() {
            Gate::X => naive::apply_x(amps, qs[0].index()),
            Gate::Z => naive::apply_phase_1q(amps, qs[0].index(), -C64::ONE),
            Gate::S => naive::apply_phase_1q(amps, qs[0].index(), C64::I),
            Gate::Sdg => naive::apply_phase_1q(amps, qs[0].index(), -C64::I),
            Gate::T => {
                naive::apply_phase_1q(amps, qs[0].index(), C64::cis(std::f64::consts::FRAC_PI_4))
            }
            Gate::Tdg => {
                naive::apply_phase_1q(amps, qs[0].index(), C64::cis(-std::f64::consts::FRAC_PI_4))
            }
            Gate::U1(l) => naive::apply_phase_1q(amps, qs[0].index(), C64::cis(l)),
            Gate::Cx => naive::apply_cx(amps, qs[0].index(), qs[1].index()),
            Gate::Cz => naive::apply_cphase(amps, qs[0].index(), qs[1].index(), -C64::ONE),
            Gate::Cp(l) => naive::apply_cphase(amps, qs[0].index(), qs[1].index(), C64::cis(l)),
            Gate::Swap => naive::apply_swap(amps, qs[0].index(), qs[1].index()),
            Gate::Ccx => naive::apply_ccx(amps, qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Ccz => naive::apply_ccz(amps, qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Cswap => naive::apply_cswap(amps, qs[0].index(), qs[1].index(), qs[2].index()),
            Gate::Cxpow(t) => {
                let m = crate::xpow_matrix(t);
                naive::apply_controlled_1q(amps, qs[0].index(), qs[1].index(), &m);
            }
            g => {
                let m = single_qubit_matrix(g).expect("1q matrix");
                naive::apply_1q(amps, qs[0].index(), &m);
            }
        }
    }

    #[test]
    fn stride_kernels_match_naive_kernels_bitwise_for_every_gate_kind() {
        let mut state = State::random(6, 99).unwrap();
        let mut reference: Vec<C64> = state.amplitudes().to_vec();
        for instr in all_kind_instructions() {
            state.apply(&instr);
            naive_apply(&mut reference, &instr);
            // Bitwise equality, not approximate: the stride kernels must
            // compute the identical floating-point expressions.
            assert_eq!(
                state.amplitudes(),
                &reference[..],
                "kernel diverged on {instr:?}"
            );
        }
    }

    #[test]
    fn kernels_are_byte_identical_across_thread_counts() {
        for threads in [2usize, 3, 5] {
            let mut serial = State::random(7, 1234).unwrap();
            serial.set_threads(1);
            let mut parallel = serial.clone();
            parallel.set_threads(threads);
            for instr in all_kind_instructions() {
                serial.apply(&instr);
                parallel.apply(&instr);
            }
            assert_eq!(
                serial.amplitudes(),
                parallel.amplitudes(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fused_application_matches_unfused() {
        let mut c = Circuit::new(4);
        c.h(0).t(0).s(0).h(1).x(0).cx(0, 1).h(2).sdg(2).tdg(2);
        c.rz(0.4, 3)
            .rx(0.2, 3)
            .ccx(0, 1, 2)
            .h(3)
            .u3(0.1, 0.2, 0.3, 3);
        let mut unfused = State::random(4, 5).unwrap();
        let mut fused = unfused.clone();
        unfused.apply_circuit(&c).unwrap();
        fused.apply_circuit_fused(&c).unwrap();
        assert!(fused.approx_eq_up_to_phase(&unfused, 1e-12));
    }

    #[test]
    fn fused_application_skips_measurements() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).t(0).measure(1);
        let mut a = State::zero(2).unwrap();
        a.apply_circuit_fused(&c).unwrap();
        let mut b = State::zero(2).unwrap();
        b.apply_circuit(&c).unwrap();
        assert!(a.approx_eq_up_to_phase(&b, 1e-12));
    }

    #[test]
    fn out_of_range_qubit_panics_with_clear_message_in_every_build() {
        use trios_ir::Qubit;
        // q = 70 ≥ 64: without the explicit check the shift would wrap
        // and corrupt qubit 6 instead of panicking.
        let instr = Instruction::new(Gate::X, &[Qubit::new(70)]);
        let mut state = State::zero(3).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.apply(&instr);
        }))
        .unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("qubit 70 out of range"),
            "panic message: {message}"
        );
    }

    #[test]
    fn out_of_range_qubit_panics_for_multi_qubit_kernels() {
        use trios_ir::Qubit;
        let mut state = State::zero(3).unwrap();
        for instr in [
            Instruction::new(Gate::Cx, &[Qubit::new(0), Qubit::new(3)]),
            Instruction::new(Gate::Ccx, &[Qubit::new(0), Qubit::new(1), Qubit::new(64)]),
            Instruction::new(Gate::Swap, &[Qubit::new(9), Qubit::new(1)]),
        ] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                state.apply(&instr);
            }));
            assert!(result.is_err(), "{instr:?} must panic");
        }
    }
}
