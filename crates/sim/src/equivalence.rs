//! Circuit-equivalence checks used to verify compiler passes.
//!
//! Two flavours:
//!
//! * [`circuits_equivalent`] — exact unitary comparison (all basis states),
//!   for small widths; used to validate gate decompositions.
//! * [`compiled_equivalent`] — checks a *routed* circuit (over physical
//!   qubits, with SWAPs that permute the layout) against the original
//!   logical circuit, given the initial and final layouts. Random-state
//!   based, so it scales to the paper's 20-qubit benchmarks.

use crate::{SimError, State, C64};
use trios_ir::Circuit;

/// Exact equivalence check: applies both circuits to every computational
/// basis state and compares columns up to one shared global phase.
///
/// Intended for decomposition tests (≤ ~10 qubits: cost is `4^n`).
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if widths differ, or
/// [`SimError::TooManyQubits`] for oversized circuits.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, eps: f64) -> Result<bool, SimError> {
    if a.num_qubits() != b.num_qubits() {
        return Err(SimError::WidthMismatch {
            expected: a.num_qubits(),
            actual: b.num_qubits(),
        });
    }
    let n = a.num_qubits();
    let dim = 1usize << n;
    // The same global phase must work for every column.
    let mut phase: Option<C64> = None;
    for k in 0..dim {
        let mut sa = State::basis(n, k)?;
        sa.apply_circuit_fused(a)?;
        let mut sb = State::basis(n, k)?;
        sb.apply_circuit_fused(b)?;
        for (x, y) in sa.amplitudes().iter().zip(sb.amplitudes()) {
            match phase {
                None => {
                    if x.abs() > eps || y.abs() > eps {
                        if (x.abs() - y.abs()).abs() > eps {
                            return Ok(false);
                        }
                        if y.abs() > eps {
                            phase = Some(*x / *y);
                        }
                    }
                }
                Some(p) => {
                    if !x.approx_eq(*y * p, eps) {
                        return Ok(false);
                    }
                }
            }
        }
    }
    Ok(true)
}

/// Randomized equivalence check on `trials` seeded random states.
///
/// Far cheaper than [`circuits_equivalent`] for wide circuits; a single
/// random state already distinguishes inequivalent unitaries with high
/// probability.
///
/// # Errors
///
/// Same conditions as [`circuits_equivalent`].
pub fn circuits_equivalent_sampled(
    a: &Circuit,
    b: &Circuit,
    trials: usize,
    seed: u64,
    eps: f64,
) -> Result<bool, SimError> {
    if a.num_qubits() != b.num_qubits() {
        return Err(SimError::WidthMismatch {
            expected: a.num_qubits(),
            actual: b.num_qubits(),
        });
    }
    for t in 0..trials {
        let base = State::random(a.num_qubits(), seed.wrapping_add(t as u64))?;
        let mut sa = base.clone();
        sa.apply_circuit_fused(a)?;
        let mut sb = base;
        sb.apply_circuit_fused(b)?;
        if !sa.approx_eq_up_to_phase(&sb, eps) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Verifies that a compiled (routed, physical-qubit) circuit implements the
/// original logical circuit.
///
/// * `initial_layout[l]` — physical home of logical qubit `l` before the
///   compiled circuit runs.
/// * `final_layout[l]` — physical home of logical qubit `l` afterwards
///   (routing SWAPs permute data).
///
/// The check embeds random logical states into the physical register
/// (unused physical qubits start in `|0⟩`), runs the compiled circuit, and
/// compares against the original circuit's output re-embedded through the
/// final layout. Equality must hold up to one global phase.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if a layout's length differs from
/// the logical width or maps outside the physical register, and
/// [`SimError::TooManyQubits`] for oversized registers.
pub fn compiled_equivalent(
    original: &Circuit,
    compiled: &Circuit,
    initial_layout: &[usize],
    final_layout: &[usize],
    trials: usize,
    seed: u64,
    eps: f64,
) -> Result<bool, SimError> {
    let n_log = original.num_qubits();
    let n_phys = compiled.num_qubits();
    for layout in [initial_layout, final_layout] {
        if layout.len() != n_log {
            return Err(SimError::WidthMismatch {
                expected: n_log,
                actual: layout.len(),
            });
        }
        if layout.iter().any(|&p| p >= n_phys) {
            return Err(SimError::WidthMismatch {
                expected: n_phys,
                actual: layout.iter().copied().max().unwrap_or(0) + 1,
            });
        }
    }

    for t in 0..trials {
        let logical_in = State::random(n_log, seed.wrapping_add(t as u64))?;

        // Embed through the initial layout and run the compiled circuit.
        let mut phys = embed(&logical_in, n_phys, initial_layout)?;
        phys.apply_circuit_fused(compiled)?;

        // Reference: run the original, embed through the final layout.
        let mut logical_out = logical_in;
        logical_out.apply_circuit_fused(original)?;
        let expected = embed(&logical_out, n_phys, final_layout)?;

        if !phys.approx_eq_up_to_phase(&expected, eps) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Places a logical state into a wider physical register according to
/// `layout` (logical qubit `l` → physical qubit `layout[l]`); every other
/// physical qubit is `|0⟩`.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] if the physical register is too wide
/// to simulate.
pub fn embed(logical: &State, n_phys: usize, layout: &[usize]) -> Result<State, SimError> {
    let n_log = logical.num_qubits();
    debug_assert_eq!(layout.len(), n_log);
    if n_phys > crate::MAX_QUBITS {
        return Err(SimError::TooManyQubits {
            requested: n_phys,
            max: crate::MAX_QUBITS,
        });
    }
    let mut amps = vec![C64::ZERO; 1 << n_phys];
    for k in 0..(1usize << n_log) {
        let mut p = 0usize;
        for (l, &home) in layout.iter().enumerate() {
            if (k >> l) & 1 == 1 {
                p |= 1 << home;
            }
        }
        amps[p] = logical.amplitudes()[k];
    }
    State::from_amplitudes(amps)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn identical_circuits_are_equivalent() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).t(1);
        assert!(circuits_equivalent(&a, &a.clone(), EPS).unwrap());
    }

    #[test]
    fn different_circuits_are_not_equivalent() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).t(1);
        assert!(!circuits_equivalent(&a, &b, EPS).unwrap());
        assert!(!circuits_equivalent_sampled(&a, &b, 2, 1, EPS).unwrap());
    }

    #[test]
    fn global_phase_is_ignored() {
        // rz(θ) = e^{-iθ/2} u1(θ): same gate up to global phase.
        let mut a = Circuit::new(1);
        a.rz(0.9, 0);
        let mut b = Circuit::new(1);
        b.u1(0.9, 0);
        assert!(circuits_equivalent(&a, &b, EPS).unwrap());
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        assert!(circuits_equivalent(&a, &b, EPS).is_err());
    }

    #[test]
    fn sampled_matches_exact_on_equivalent_pair() {
        // SWAP = 3 alternating CNOTs.
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, EPS).unwrap());
        assert!(circuits_equivalent_sampled(&a, &b, 4, 99, EPS).unwrap());
    }

    #[test]
    fn embed_places_qubits() {
        let mut c = Circuit::new(2);
        c.x(0); // logical |01⟩ → amplitude at logical index 1
        let logical = State::run(&c).unwrap();
        let phys = embed(&logical, 4, &[2, 0]).unwrap();
        // Logical qubit 0 (set) lives at physical 2.
        assert!((phys.probability(0b0100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compiled_equivalent_accepts_swapped_implementation() {
        // Original: CX(0,1) on 2 logical qubits.
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        // Compiled on 3 physical qubits: logical 0 at phys 0, logical 1 at
        // phys 2. Route: swap(2,1), cx(0,1); final layout: l0→0, l1→1.
        let mut compiled = Circuit::new(3);
        compiled.swap(2, 1).cx(0, 1);
        assert!(compiled_equivalent(&original, &compiled, &[0, 2], &[0, 1], 3, 5, EPS).unwrap());
    }

    #[test]
    fn compiled_equivalent_rejects_wrong_final_layout() {
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut compiled = Circuit::new(3);
        compiled.swap(2, 1).cx(0, 1);
        // Claiming data did NOT move must fail.
        assert!(!compiled_equivalent(&original, &compiled, &[0, 2], &[0, 2], 3, 5, EPS).unwrap());
    }

    #[test]
    fn compiled_equivalent_validates_layout_lengths() {
        let original = Circuit::new(2);
        let compiled = Circuit::new(3);
        assert!(compiled_equivalent(&original, &compiled, &[0], &[0, 1], 1, 1, EPS).is_err());
        assert!(compiled_equivalent(&original, &compiled, &[0, 9], &[0, 1], 1, 1, EPS).is_err());
    }
}
