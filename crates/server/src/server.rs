//! The daemon: acceptor + per-connection readers + a fixed worker pool
//! behind a bounded admission queue.
//!
//! Request flow:
//!
//! 1. The acceptor thread accepts connections and spawns one reader
//!    thread per connection.
//! 2. Readers parse request lines (bounded — an oversized line becomes a
//!    structured error, not unbounded memory). Control methods (`ping`,
//!    `stats`, `shutdown`) are answered inline so liveness probes work
//!    even when the queue is full; work methods go through the admission
//!    queue. A full queue replies with a structured `busy` error —
//!    backpressure instead of unbounded buffering.
//! 3. A fixed worker pool drains the queue. Workers share one
//!    [`ShardedCache`], so repeated requests across *all* connections pay
//!    for each distinct compilation once, and a configurable timeout
//!    turns runaway compiles into clean `timeout` errors.
//!
//! Shutdown (via [`Server::shutdown`] or the `shutdown` method) is a
//! drain, not an abort: admission closes immediately, workers finish
//! everything already queued, and every accepted request gets its
//! response before [`Server::join`] returns.

use crate::histogram::{LatencyHistogram, LatencySnapshot};
use crate::protocol::{
    self, json_array, CompileParams, ErrorKind, JsonObj, Method, ProtocolError, Request,
};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trios_core::{
    run_sweep, CacheStats, CompilationCache, CompiledProgram, ShardedCache, SweepSpec,
};

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Admission queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Shard count of the shared compilation cache.
    pub shards: usize,
    /// Total cache capacity in entries, spread over the shards
    /// (`0` disables caching).
    pub cache_capacity: usize,
    /// Per-request budget in milliseconds, queue wait included
    /// (`0` = no timeout).
    pub timeout_ms: u64,
    /// Maximum request line length in bytes; longer lines answer
    /// `oversized`.
    pub max_line_bytes: usize,
    /// Whether the `shutdown` method is honored (probes and tests want
    /// it; an exposed daemon may not).
    pub allow_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 64,
            shards: 8,
            cache_capacity: 256,
            timeout_ms: 0,
            max_line_bytes: 1 << 20,
            allow_shutdown: false,
        }
    }
}

impl ServerConfig {
    /// The worker count actually spawned: `workers` if set, else one per
    /// available core.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One consistent-enough view of the server's counters for `stats`
/// responses, tests, and the bench harness. Each constituent (queue,
/// cache shard, histogram) is snapshotted under its own lock.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// Request lines parsed (including ones that errored).
    pub received: u64,
    /// Successful responses sent.
    pub served: u64,
    /// Requests refused with `busy` by the full admission queue.
    pub rejected: u64,
    /// Requests that completed with an error response.
    pub failed: u64,
    /// Jobs waiting right now.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub queue_high_water: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Aggregate cache counters.
    pub cache: CacheStats,
    /// Per-shard cache counters, in shard order.
    pub shards: Vec<CacheStats>,
    /// Latency quantiles over executed (queued) requests.
    pub latency: LatencySnapshot,
}

/// One queued unit of work: the request plus where to write its response.
#[derive(Debug)]
struct Job {
    id: u64,
    method: Method,
    writer: Arc<Mutex<TcpStream>>,
    enqueued: Instant,
}

#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    cache: ShardedCache,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    /// Read-half clones of live connections, so shutdown can EOF every
    /// reader while leaving write halves open for draining responses.
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    addr: SocketAddr,
    received: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    queue_high_water: AtomicUsize,
    latency: LatencyHistogram,
}

/// A running compilation daemon. Start with [`Server::start`], stop with
/// [`Server::shutdown`] + [`Server::join`] (or a `shutdown` request when
/// [`ServerConfig::allow_shutdown`] is set).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately; the server runs until shut down.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.effective_workers();
        let shared = Arc::new(Shared {
            cache: ShardedCache::with_total_capacity(config.shards, config.cache_capacity),
            config,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            addr,
            received: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            latency: LatencyHistogram::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || run_worker(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_acceptor(&listener, &shared))
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared compilation cache (for inspection in tests/benches).
    pub fn cache(&self) -> &ShardedCache {
        &self.shared.cache
    }

    /// Current counters.
    pub fn snapshot(&self) -> ServerSnapshot {
        self.shared.snapshot()
    }

    /// Signals shutdown: admission closes, readers are EOF'd, the
    /// acceptor wakes and exits. Idempotent; does not wait — call
    /// [`Server::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shared.signal_shutdown();
    }

    /// Waits until the server has fully drained: acceptor, then every
    /// reader, then the workers (which only exit once the queue is
    /// empty). Blocks until something signals shutdown. Afterwards all
    /// connections are dropped, so clients see EOF.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers poisoned"));
        for reader in readers {
            let _ = reader.join();
        }
        // Readers are done, so no new jobs can arrive: wake the workers
        // one last time and let them drain what is queued.
        self.shared.job_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.conns.lock().expect("conns poisoned").clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server (test panic, early return) must not leave
        // threads blocked forever; signal and let detached threads wind
        // down. join() is the graceful path.
        self.shared.signal_shutdown();
    }
}

impl Shared {
    fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            received: self.received.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().expect("queue poisoned").len(),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            queue_capacity: self.config.queue_capacity,
            workers: self.config.effective_workers(),
            cache: self.cache.stats(),
            shards: self.cache.shard_stats(),
            latency: self.latency.snapshot(),
        }
    }

    fn signal_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // EOF every reader; write halves stay open so queued responses
        // still drain.
        for conn in self.conns.lock().expect("conns poisoned").iter() {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        self.job_ready.notify_all();
    }

    /// Writes one response line, serialized per connection. One single
    /// write per response (payload + newline together): split writes
    /// interact with Nagle's algorithm and delayed ACKs to add ~40ms per
    /// round trip. Send errors mean the client went away; the server
    /// keeps serving others.
    fn send(&self, writer: &Mutex<TcpStream>, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut stream = writer.lock().expect("writer poisoned");
        let _ = stream.write_all(&buf);
        let _ = stream.flush();
    }

    fn send_ok(&self, writer: &Mutex<TcpStream>, id: u64, result: &str) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.send(writer, &protocol::ok_response(id, result));
    }

    fn send_error(&self, writer: &Mutex<TcpStream>, id: u64, error: &ProtocolError) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.send(writer, &protocol::error_response(id, error));
    }

    fn stats_result(&self) -> String {
        let snapshot = self.snapshot();
        let requests = JsonObj::new()
            .u64("received", snapshot.received)
            .u64("served", snapshot.served)
            .u64("rejected", snapshot.rejected)
            .u64("failed", snapshot.failed)
            .finish();
        let queue = JsonObj::new()
            .u64("depth", snapshot.queue_depth as u64)
            .u64("capacity", snapshot.queue_capacity as u64)
            .u64("high_water", snapshot.queue_high_water as u64)
            .finish();
        let cache_json =
            |stats: &CacheStats| serde_json::to_string(stats).expect("cache stats are finite");
        let latency = JsonObj::new()
            .u64("count", snapshot.latency.count)
            .u64("p50_us", snapshot.latency.p50_us)
            .u64("p90_us", snapshot.latency.p90_us)
            .u64("p99_us", snapshot.latency.p99_us)
            .u64("max_us", snapshot.latency.max_us)
            .finish();
        JsonObj::new()
            .raw("requests", &requests)
            .raw("queue", &queue)
            .u64("workers", snapshot.workers as u64)
            .raw("cache", &cache_json(&snapshot.cache))
            .raw(
                "shards",
                &json_array(snapshot.shards.iter().map(cache_json)),
            )
            .raw("latency", &latency)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Acceptor and readers
// ---------------------------------------------------------------------

fn run_acceptor(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns poisoned").push(clone);
        }
        let reader_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || run_reader(stream, &reader_shared));
        shared
            .readers
            .lock()
            .expect("readers poisoned")
            .push(handle);
    }
}

/// How one bounded line read ended.
enum LineRead {
    /// A complete line is in the buffer (without the newline).
    Line,
    /// The line exceeded the limit; it was skipped to its newline.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Longer lines
/// are consumed (so the connection stays in sync) but reported as
/// [`LineRead::Oversized`] without ever buffering more than `max` bytes.
fn read_line_bounded(
    reader: &mut impl BufRead,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<LineRead> {
    buf.clear();
    let mut oversized = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(match (oversized, buf.is_empty()) {
                (true, _) => LineRead::Oversized,
                (false, true) => LineRead::Eof,
                (false, false) => LineRead::Line, // final line without \n
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if !oversized && buf.len() + newline > max {
                    oversized = true;
                    buf.clear();
                }
                if !oversized {
                    buf.extend_from_slice(&available[..newline]);
                }
                reader.consume(newline + 1);
                return Ok(if oversized {
                    LineRead::Oversized
                } else {
                    LineRead::Line
                });
            }
            None => {
                let chunk = available.len();
                if !oversized && buf.len() + chunk > max {
                    oversized = true;
                    buf.clear();
                }
                if !oversized {
                    buf.extend_from_slice(available);
                }
                reader.consume(chunk);
            }
        }
    }
}

fn run_reader(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        match read_line_bounded(&mut reader, shared.config.max_line_bytes, &mut line) {
            Err(_) | Ok(LineRead::Eof) => return,
            Ok(LineRead::Oversized) => {
                shared.received.fetch_add(1, Ordering::Relaxed);
                shared.send_error(
                    &writer,
                    0,
                    &ProtocolError {
                        kind: ErrorKind::Oversized,
                        message: format!(
                            "request line exceeds {} bytes",
                            shared.config.max_line_bytes
                        ),
                    },
                );
                continue;
            }
            Ok(LineRead::Line) => {}
        }
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        shared.received.fetch_add(1, Ordering::Relaxed);
        match protocol::parse_request(text) {
            Err((id, error)) => shared.send_error(&writer, id, &error),
            Ok(request) if request.method.is_inline() => {
                handle_inline(shared, &writer, &request);
            }
            Ok(request) => enqueue(shared, &writer, request),
        }
    }
}

fn handle_inline(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, request: &Request) {
    match request.method {
        Method::Ping => {
            shared.send_ok(
                writer,
                request.id,
                &JsonObj::new().bool("pong", true).finish(),
            );
        }
        Method::Stats => {
            let result = shared.stats_result();
            shared.send_ok(writer, request.id, &result);
        }
        Method::Shutdown => {
            if !shared.config.allow_shutdown {
                shared.send_error(
                    writer,
                    request.id,
                    &ProtocolError {
                        kind: ErrorKind::ShutdownDisabled,
                        message: "this server was started without shutdown-by-request".into(),
                    },
                );
                return;
            }
            // Acknowledge before signaling: shutdown(Read) must not race
            // the response onto a half-closed socket.
            shared.send_ok(
                writer,
                request.id,
                &JsonObj::new().bool("shutting-down", true).finish(),
            );
            shared.signal_shutdown();
        }
        _ => unreachable!("only inline methods reach handle_inline"),
    }
}

fn enqueue(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, request: Request) {
    let depth = {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if shared.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            shared.send_error(
                writer,
                request.id,
                &ProtocolError {
                    kind: ErrorKind::ShuttingDown,
                    message: "server is draining and takes no new work".into(),
                },
            );
            return;
        }
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.send_error(
                writer,
                request.id,
                &ProtocolError {
                    kind: ErrorKind::Busy,
                    message: format!(
                        "admission queue is full ({} jobs); retry later",
                        shared.config.queue_capacity
                    ),
                },
            );
            return;
        }
        queue.push_back(Job {
            id: request.id,
            method: request.method,
            writer: Arc::clone(writer),
            enqueued: Instant::now(),
        });
        queue.len()
    };
    shared.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    shared.job_ready.notify_one();
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn run_worker(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                // Exit only when shutdown AND empty — checked under the
                // queue lock, so a drained shutdown strands no job.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.job_ready.wait(queue).expect("queue poisoned");
            }
        };
        let Some(job) = job else { return };
        process(shared, job);
    }
}

fn process(shared: &Arc<Shared>, job: Job) {
    let started = Instant::now();
    let outcome = if shared.config.timeout_ms == 0 {
        execute(shared, &job.method)
    } else {
        execute_with_timeout(shared, &job)
    };
    shared
        .latency
        .record_us(started.elapsed().as_micros() as u64);
    match outcome {
        Ok(result) => shared.send_ok(&job.writer, job.id, &result),
        Err(error) => shared.send_error(&job.writer, job.id, &error),
    }
}

/// Runs the job on a helper thread and waits out the request's remaining
/// budget (the timeout covers queue wait + execution). On timeout the
/// helper keeps running detached — its bounded leftover work is the price
/// of turning a runaway compile into a clean error — and its eventual
/// result is dropped.
fn execute_with_timeout(shared: &Arc<Shared>, job: &Job) -> Result<String, ProtocolError> {
    let budget = Duration::from_millis(shared.config.timeout_ms);
    let timed_out = || ProtocolError {
        kind: ErrorKind::Timeout,
        message: format!("request exceeded the {}ms budget", shared.config.timeout_ms),
    };
    let Some(remaining) = budget.checked_sub(job.enqueued.elapsed()) else {
        return Err(timed_out()); // budget burned in the queue
    };
    let (tx, rx) = mpsc::channel();
    let helper_shared = Arc::clone(shared);
    let method = job.method.clone();
    std::thread::spawn(move || {
        let _ = tx.send(execute(&helper_shared, &method));
    });
    match rx.recv_timeout(remaining) {
        Ok(outcome) => outcome,
        Err(_) => Err(timed_out()),
    }
}

fn execute(shared: &Arc<Shared>, method: &Method) -> Result<String, ProtocolError> {
    match method {
        Method::Compile(params) => {
            let (_, result) = compile_one(shared, params)?;
            Ok(result.finish())
        }
        Method::CompileBatch(items) => {
            // Each entry goes through the same cached single-compile path
            // as the `compile` method, in input order, so batch results
            // are byte-identical to individual requests.
            let mut results = Vec::with_capacity(items.len());
            for params in items {
                let (_, result) = compile_one(shared, params)?;
                results.push(result.finish());
            }
            let cache =
                serde_json::to_string(&shared.cache.stats()).expect("cache stats are finite");
            Ok(JsonObj::new()
                .raw("results", &json_array(results))
                .raw("cache", &cache)
                .finish())
        }
        Method::Estimate(params) => {
            let (program, result) = compile_one(shared, &params.compile)?;
            let calibration = protocol::parse_calibration(&params.calibration)?;
            let estimate = program.estimate_success(&calibration);
            let success = JsonObj::new()
                .f64("probability", estimate.probability())
                .f64("p_gates", estimate.p_gates)
                .f64("p_readout", estimate.p_readout)
                .f64("p_coherence", estimate.p_coherence)
                .f64("duration_us", estimate.duration_us)
                .finish();
            Ok(result
                .str("calibration", &params.calibration)
                .raw("success", &success)
                .finish())
        }
        Method::Sweep(params) => {
            let spec = SweepSpec {
                benchmarks: protocol::resolve_sweep_benchmarks(&params.benchmarks)?,
                devices: params
                    .devices
                    .iter()
                    .map(|spec| Ok((spec.clone(), protocol::resolve_device(spec)?)))
                    .collect::<Result<Vec<_>, ProtocolError>>()?,
                routers: params.routers.clone(),
                decomposers: params.decomposers.clone(),
                calibrations: params
                    .calibrations
                    .iter()
                    .map(|spec| Ok((spec.clone(), protocol::parse_calibration(spec)?)))
                    .collect::<Result<Vec<_>, ProtocolError>>()?,
                crosstalk: protocol::parse_crosstalk(&params.crosstalk)?,
                seed: params.seed,
                // The worker thread is this request's unit of parallelism;
                // a nested pool per sweep would oversubscribe the host.
                jobs: 1,
                cache_size: 64,
                monte_carlo_shots: params.shots,
            };
            let report = run_sweep(&spec).map_err(|e| ProtocolError {
                kind: ErrorKind::Compile,
                message: e.to_string(),
            })?;
            Ok(JsonObj::new().raw("report", &report.to_json()).finish())
        }
        _ => unreachable!("inline methods never reach the queue"),
    }
}

/// The cached compile at the heart of every work method: key the request,
/// consult the request's shard, compile and fill on miss.
fn compile_one(
    shared: &Arc<Shared>,
    params: &CompileParams,
) -> Result<(CompiledProgram, JsonObj), ProtocolError> {
    let circuit = protocol::resolve_circuit(params)?;
    let device = protocol::resolve_device(&params.device)?;
    let compiler = protocol::compiler_for(params);
    let key = CompilationCache::key(&circuit, &device, compiler.options());
    let (program, cached) = match shared.cache.get(key) {
        Some((program, _report)) => (program, true),
        None => {
            let (program, report) =
                compiler
                    .compile_with_report(&circuit, &device)
                    .map_err(|e| ProtocolError {
                        kind: ErrorKind::Compile,
                        message: e.to_string(),
                    })?;
            shared.cache.insert(key, (program.clone(), report));
            (program, false)
        }
    };
    let stats = JsonObj::new()
        .u64("two_qubit_gates", program.stats.two_qubit_gates as u64)
        .u64("one_qubit_gates", program.stats.one_qubit_gates as u64)
        .u64("swap_count", program.stats.swap_count as u64)
        .u64("depth", program.stats.depth as u64)
        .f64("duration_us", program.stats.duration_us)
        .finish();
    let mut result = JsonObj::new()
        .str(
            "input",
            params.benchmark.as_deref().unwrap_or("<inline qasm>"),
        )
        .str("device", device.name())
        .str("router", compiler.options().router_name())
        .str("decomposer", compiler.options().decomposer_name())
        .u64("seed", params.seed)
        .bool("cached", cached)
        .raw("stats", &stats);
    if params.emit_qasm {
        result = result.str("qasm", &trios_qasm::emit(&program.circuit));
    }
    Ok((program, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(input: &str, max: usize) -> Vec<(String, bool)> {
        let mut reader = BufReader::new(Cursor::new(input.as_bytes().to_vec()));
        let mut buf = Vec::new();
        let mut lines = Vec::new();
        loop {
            match read_line_bounded(&mut reader, max, &mut buf).unwrap() {
                LineRead::Eof => return lines,
                LineRead::Line => {
                    lines.push((String::from_utf8(buf.clone()).unwrap(), false));
                }
                LineRead::Oversized => lines.push((String::new(), true)),
            }
        }
    }

    #[test]
    fn bounded_reads_split_lines_and_flag_oversized_ones() {
        assert_eq!(
            read("ab\ncd\n", 10),
            [("ab".into(), false), ("cd".into(), false)]
        );
        // No trailing newline: the final fragment is still a line.
        assert_eq!(
            read("ab\ncd", 10),
            [("ab".into(), false), ("cd".into(), false)]
        );
        // The long middle line is flagged and skipped; the stream stays in
        // sync for the next line.
        let lines = read("ok\n0123456789abcdef\nnext\n", 8);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], ("ok".into(), false));
        assert!(lines[1].1, "middle line must be oversized");
        assert_eq!(lines[2], ("next".into(), false));
        // Exactly at the limit is fine.
        assert_eq!(read("12345678\n", 8), [("12345678".into(), false)]);
        assert!(read("123456789\n", 8)[0].1);
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = ServerConfig::default();
        assert_eq!(config.queue_capacity, 64);
        assert!(config.effective_workers() >= 1);
        assert!(!config.allow_shutdown);
        let pinned = ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        };
        assert_eq!(pinned.effective_workers(), 3);
    }
}
