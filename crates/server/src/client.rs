//! A minimal blocking client for the trios wire protocol.
//!
//! One connection, one request line out, one response line back — enough
//! for the CLI's `serve --check` probe, the integration tests, and the
//! bench harness. Request ids are assigned by the client and echoed by
//! the server, so a caller interleaving its own raw lines can still match
//! responses.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A blocking connection to a running trios server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns the connect (or clone) error.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Request/response over tiny messages: Nagle + delayed ACK would
        // add ~40ms to every call.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends `{"id": <auto>, "method": ..., "params": ...}` and reads one
    /// response line. `params_json` must be a JSON object literal (pass
    /// `"{}"` for none).
    ///
    /// # Errors
    ///
    /// Returns any socket error; a closed connection mid-response reads
    /// as [`io::ErrorKind::UnexpectedEof`].
    pub fn call(&mut self, method: &str, params_json: &str) -> io::Result<String> {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!("{{\"id\":{id},\"method\":\"{method}\",\"params\":{params_json}}}");
        self.send_raw(&line)?;
        self.read_line()
    }

    /// Writes one raw request line (no trailing newline needed) without
    /// reading a response.
    ///
    /// # Errors
    ///
    /// Returns any socket write error.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf)?;
        self.writer.flush()
    }

    /// Reads one response line (without the newline).
    ///
    /// # Errors
    ///
    /// Returns socket errors; EOF before a newline is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Round-trips a `ping` and checks the `pong` came back.
    ///
    /// # Errors
    ///
    /// Socket errors, or [`io::ErrorKind::InvalidData`] if the response
    /// is not a pong.
    pub fn ping(&mut self) -> io::Result<()> {
        let response = self.call("ping", "{}")?;
        let value = serde_json::from_str(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let pong = value.get("ok").and_then(|v| v.as_bool()) == Some(true)
            && value
                .get("result")
                .and_then(|r| r.get("pong"))
                .and_then(|v| v.as_bool())
                == Some(true);
        if pong {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a pong, got: {response}"),
            ))
        }
    }
}
