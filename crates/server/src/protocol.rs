//! The line-delimited JSON protocol: request parsing and response
//! building.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! → {"id": 1, "method": "compile", "params": {"benchmark": "bv-20", "device": "line:20"}}
//! ← {"id": 1, "ok": true, "result": {"stats": {...}, "cached": false, ...}}
//! → {"id": 2, "method": "frobnicate"}
//! ← {"id": 2, "ok": false, "error": {"kind": "unknown-method", "message": "..."}}
//! ```
//!
//! Responses carry the request's `id` so pipelined clients can match them
//! up; error responses name a machine-readable `kind` (see [`ErrorKind`])
//! next to the human-readable message. Parsing uses the vendored
//! [`serde_json::Value`] walker and building uses a small hand-rolled
//! object writer, mirroring how `SweepReport` round-trips JSON.

use serde_json::Value;
use trios_core::{
    Calibration, Compiler, CrosstalkPolicy, DecomposerRegistry, StrategyRegistry, SweepBenchmark,
};
use trios_gen::Family;

/// Machine-readable error classes of the protocol, the `kind` field of
/// every error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON.
    Parse,
    /// The request was JSON but structurally wrong (missing id/method,
    /// bad params).
    BadRequest,
    /// The `method` names nothing the server knows.
    UnknownMethod,
    /// The admission queue is full; retry later.
    Busy,
    /// The request's compile exceeded the configured timeout.
    Timeout,
    /// Compilation itself failed (a `Diagnostic` from the pipeline).
    Compile,
    /// The request line exceeded the configured size limit.
    Oversized,
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// `shutdown` was requested but the server does not allow it.
    ShutdownDisabled,
}

impl ErrorKind {
    /// The wire spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::UnknownMethod => "unknown-method",
            ErrorKind::Busy => "busy",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Compile => "compile",
            ErrorKind::Oversized => "oversized",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::ShutdownDisabled => "shutdown-disabled",
        }
    }
}

/// A structured protocol failure: the error kind plus its message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Machine-readable class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn bad(message: impl Into<String>) -> Self {
        ProtocolError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
        }
    }
}

/// What a single circuit request compiles: the circuit reference plus the
/// compiler knobs, each defaulted like the CLI's flags.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileParams {
    /// Benchmark name or `gen:<family>:<seed>` ref (mutually exclusive
    /// with `qasm`).
    pub benchmark: Option<String>,
    /// Inline OpenQASM 2.0 source (mutually exclusive with `benchmark`).
    pub qasm: Option<String>,
    /// Device spec (`trios_topology::parse_spec` grammar).
    pub device: String,
    /// Routing strategy registry name; `None` = the default pipeline.
    pub router: Option<String>,
    /// Toffoli decomposition registry name; `None` = `standard`.
    pub decomposer: Option<String>,
    /// Routing seed.
    pub seed: u64,
    /// Return the compiled circuit as OpenQASM in the response.
    pub emit_qasm: bool,
}

/// `estimate` params: a compile plus the calibration to score it under.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateParams {
    /// The compilation to estimate.
    pub compile: CompileParams,
    /// `now`, `future`, or `improve:<f>` (default `now`).
    pub calibration: String,
}

/// `sweep` params: the evaluation grid, mirroring `trios sweep` flags.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepParams {
    /// Benchmark refs (names, `gen:<family>:<seed>`).
    pub benchmarks: Vec<String>,
    /// Device specs.
    pub devices: Vec<String>,
    /// Router registry names.
    pub routers: Vec<String>,
    /// Decomposer registry names.
    pub decomposers: Vec<String>,
    /// Calibration specs.
    pub calibrations: Vec<String>,
    /// Crosstalk policy spec.
    pub crosstalk: String,
    /// Routing seed.
    pub seed: u64,
    /// Monte Carlo shots per simulable cell.
    pub shots: Option<usize>,
}

/// A parsed request: the wire id plus the method with its params.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed back in the response.
    pub id: u64,
    /// What to do.
    pub method: Method,
}

/// The methods of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server counters, cache and latency stats; answered inline.
    Stats,
    /// Drain and stop (if the server allows it); answered inline.
    Shutdown,
    /// Compile one circuit.
    Compile(CompileParams),
    /// Compile several circuits under shared knobs, results in order.
    CompileBatch(Vec<CompileParams>),
    /// Compile then estimate success probability.
    Estimate(EstimateParams),
    /// Run an evaluation grid; the result embeds a full `SweepReport`.
    Sweep(SweepParams),
}

impl Method {
    /// `true` for the cheap control methods the reader thread answers
    /// without going through the admission queue — so liveness probes and
    /// stats stay responsive even when the queue is full.
    pub fn is_inline(&self) -> bool {
        matches!(self, Method::Ping | Method::Stats | Method::Shutdown)
    }
}

fn str_field(params: &Value, key: &str) -> Result<Option<String>, ProtocolError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(s) => Ok(Some(s.to_string())),
            None => Err(ProtocolError::bad(format!("'{key}' must be a string"))),
        },
    }
}

fn u64_field(params: &Value, key: &str) -> Result<Option<u64>, ProtocolError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(ProtocolError::bad(format!(
                "'{key}' must be a non-negative integer"
            ))),
        },
    }
}

fn bool_field(params: &Value, key: &str) -> Result<Option<bool>, ProtocolError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => match v.as_bool() {
            Some(b) => Ok(Some(b)),
            None => Err(ProtocolError::bad(format!("'{key}' must be a boolean"))),
        },
    }
}

fn string_array(params: &Value, key: &str) -> Result<Option<Vec<String>>, ProtocolError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_array()
            .ok_or_else(|| ProtocolError::bad(format!("'{key}' must be an array")))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ProtocolError::bad(format!("'{key}' must contain strings")))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

/// Validates a router name against the standard registry at parse time,
/// exactly like the CLI's `--router`, so typos fail before any work runs.
fn check_router(name: &str) -> Result<(), ProtocolError> {
    let registry = StrategyRegistry::standard();
    if registry.contains(name) {
        Ok(())
    } else {
        Err(ProtocolError::bad(format!(
            "'router' must be one of {}, got '{name}'",
            registry.names().collect::<Vec<_>>().join(", ")
        )))
    }
}

/// Validates a decomposer name against the standard registry at parse
/// time, like [`check_router`]; `key` names the offending param field.
fn check_decomposer(key: &str, name: &str) -> Result<(), ProtocolError> {
    let registry = DecomposerRegistry::standard();
    if registry.contains(name) {
        Ok(())
    } else {
        Err(ProtocolError::bad(format!(
            "'{key}' must be one of {}, got '{name}'",
            registry.names().collect::<Vec<_>>().join(", ")
        )))
    }
}

fn parse_compile_params(params: &Value) -> Result<CompileParams, ProtocolError> {
    let benchmark = str_field(params, "benchmark")?;
    let qasm = str_field(params, "qasm")?;
    match (&benchmark, &qasm) {
        (None, None) => {
            return Err(ProtocolError::bad(
                "params need a 'benchmark' name or inline 'qasm' source",
            ))
        }
        (Some(_), Some(_)) => {
            return Err(ProtocolError::bad(
                "'benchmark' and 'qasm' are mutually exclusive",
            ))
        }
        _ => {}
    }
    let router = str_field(params, "router")?;
    if let Some(name) = &router {
        check_router(name)?;
    }
    let decomposer = str_field(params, "decomposer")?;
    if let Some(name) = &decomposer {
        check_decomposer("decomposer", name)?;
    }
    Ok(CompileParams {
        benchmark,
        qasm,
        device: str_field(params, "device")?.unwrap_or_else(|| "johannesburg".into()),
        router,
        decomposer,
        seed: u64_field(params, "seed")?.unwrap_or(0),
        emit_qasm: bool_field(params, "emit-qasm")?.unwrap_or(false),
    })
}

fn parse_batch_params(params: &Value) -> Result<Vec<CompileParams>, ProtocolError> {
    let circuits = string_array(params, "circuits")?
        .ok_or_else(|| ProtocolError::bad("'compile-batch' params need a 'circuits' array"))?;
    if circuits.is_empty() {
        return Err(ProtocolError::bad("'circuits' must not be empty"));
    }
    // The shared knobs parse once; each circuit ref becomes one entry.
    let shared = CompileParams {
        benchmark: None,
        qasm: None,
        device: str_field(params, "device")?.unwrap_or_else(|| "johannesburg".into()),
        router: str_field(params, "router")?,
        decomposer: str_field(params, "decomposer")?,
        seed: u64_field(params, "seed")?.unwrap_or(0),
        emit_qasm: false,
    };
    if let Some(name) = &shared.router {
        check_router(name)?;
    }
    if let Some(name) = &shared.decomposer {
        check_decomposer("decomposer", name)?;
    }
    Ok(circuits
        .into_iter()
        .map(|benchmark| CompileParams {
            benchmark: Some(benchmark),
            ..shared.clone()
        })
        .collect())
}

fn parse_estimate_params(params: &Value) -> Result<EstimateParams, ProtocolError> {
    let calibration = str_field(params, "calibration")?.unwrap_or_else(|| "now".into());
    parse_calibration(&calibration)?; // fail at parse time, not mid-queue
    Ok(EstimateParams {
        compile: parse_compile_params(params)?,
        calibration,
    })
}

fn parse_sweep_params(params: &Value) -> Result<SweepParams, ProtocolError> {
    let benchmarks = string_array(params, "benchmarks")?
        .ok_or_else(|| ProtocolError::bad("'sweep' params need a 'benchmarks' array"))?;
    if benchmarks.is_empty() {
        return Err(ProtocolError::bad("'benchmarks' must not be empty"));
    }
    let routers =
        string_array(params, "routers")?.unwrap_or_else(|| vec!["baseline".into(), "trios".into()]);
    for router in &routers {
        check_router(router)?;
    }
    let decomposers =
        string_array(params, "decomposers")?.unwrap_or_else(|| vec!["standard".into()]);
    for decomposer in &decomposers {
        check_decomposer("decomposers", decomposer)?;
    }
    let calibrations =
        string_array(params, "calibrations")?.unwrap_or_else(|| vec!["future".into()]);
    for calibration in &calibrations {
        parse_calibration(calibration)?;
    }
    let crosstalk = str_field(params, "crosstalk")?.unwrap_or_else(|| "ignore".into());
    parse_crosstalk(&crosstalk)?;
    Ok(SweepParams {
        benchmarks,
        devices: string_array(params, "devices")?.unwrap_or_else(|| vec!["johannesburg".into()]),
        routers,
        decomposers,
        calibrations,
        crosstalk,
        seed: u64_field(params, "seed")?.unwrap_or(0),
        shots: u64_field(params, "shots")?.map(|n| n as usize),
    })
}

/// Parses one request line.
///
/// # Errors
///
/// The error carries the id to respond with: the request's own id when it
/// could be read, 0 otherwise (a client that never sends id 0 can tell
/// the difference).
pub fn parse_request(line: &str) -> Result<Request, (u64, ProtocolError)> {
    let value = serde_json::from_str(line).map_err(|e| {
        (
            0,
            ProtocolError {
                kind: ErrorKind::Parse,
                message: format!("request is not valid JSON: {e}"),
            },
        )
    })?;
    let id = match value.get("id") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| (0, ProtocolError::bad("'id' must be a non-negative integer")))?,
        None => return Err((0, ProtocolError::bad("request needs an 'id'"))),
    };
    let fail = |e: ProtocolError| (id, e);
    let method = value
        .get("method")
        .and_then(Value::as_str)
        .ok_or_else(|| fail(ProtocolError::bad("request needs a string 'method'")))?;
    let empty = Value::Object(Vec::new());
    let params = value.get("params").unwrap_or(&empty);
    let method = match method {
        "ping" => Method::Ping,
        "stats" => Method::Stats,
        "shutdown" => Method::Shutdown,
        "compile" => Method::Compile(parse_compile_params(params).map_err(fail)?),
        "compile-batch" => Method::CompileBatch(parse_batch_params(params).map_err(fail)?),
        "estimate" => Method::Estimate(parse_estimate_params(params).map_err(fail)?),
        "sweep" => Method::Sweep(parse_sweep_params(params).map_err(fail)?),
        other => {
            return Err(fail(ProtocolError {
                kind: ErrorKind::UnknownMethod,
                message: format!(
                    "unknown method '{other}' (methods: ping, stats, shutdown, compile, \
                     compile-batch, estimate, sweep)"
                ),
            }))
        }
    };
    Ok(Request { id, method })
}

/// Resolves a benchmark ref or inline QASM to a circuit, mirroring the
/// CLI's input handling minus file paths — a network server must not read
/// arbitrary files on request.
pub fn resolve_circuit(params: &CompileParams) -> Result<trios_core::Circuit, ProtocolError> {
    if let Some(source) = &params.qasm {
        return trios_qasm::parse(source)
            .map_err(|e| ProtocolError::bad(format!("qasm error: {e}")));
    }
    let input = params.benchmark.as_deref().expect("parser requires one");
    if let Some(rest) = input.strip_prefix("gen:") {
        let (name, seed) = match rest.split_once(':') {
            Some((name, seed)) => (
                name,
                seed.parse::<u64>().map_err(|_| {
                    ProtocolError::bad(format!(
                        "gen:<family>:<seed> needs an integer seed, got '{seed}'"
                    ))
                })?,
            ),
            None => (rest, 0),
        };
        let family = Family::parse(name).ok_or_else(|| {
            ProtocolError::bad(format!(
                "unknown generator family '{name}' (families: {})",
                Family::ALL.map(|f| f.name()).join(", ")
            ))
        })?;
        return Ok(family.generate_case(seed).circuit);
    }
    if let Some(b) = trios_benchmarks::Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == input)
    {
        return Ok(b.build());
    }
    if let Some(b) = trios_benchmarks::ExtendedBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == input)
    {
        return Ok(b.build());
    }
    Err(ProtocolError::bad(format!(
        "unknown benchmark '{input}' (paper/extended names, or gen:<family>:<seed>)"
    )))
}

/// Resolves a device spec via the grammar shared with the CLI
/// (`trios_topology::parse_spec`).
pub fn resolve_device(spec: &str) -> Result<trios_core::Topology, ProtocolError> {
    trios_core::parse_spec(spec).map_err(|e| ProtocolError::bad(e.to_string()))
}

/// The configured compiler for one request's knobs — one translation,
/// like the CLI's, so server and CLI compiles cannot diverge.
pub fn compiler_for(params: &CompileParams) -> Compiler {
    let mut builder = Compiler::builder().seed(params.seed);
    if let Some(router) = &params.router {
        builder = builder.router(router.clone());
    }
    if let Some(decomposer) = &params.decomposer {
        builder = builder.decomposer(decomposer.clone());
    }
    builder.build()
}

/// Resolves a calibration spec (`now`, `future`, `improve:<f>`).
pub fn parse_calibration(spec: &str) -> Result<Calibration, ProtocolError> {
    match spec {
        "now" => Ok(Calibration::johannesburg_2020_08_19()),
        "future" => Ok(Calibration::near_future()),
        other => match other.strip_prefix("improve:") {
            Some(factor) => {
                let factor: f64 = factor.parse().map_err(|_| {
                    ProtocolError::bad(format!("improve:<f> needs a number, got '{other}'"))
                })?;
                if factor <= 0.0 {
                    return Err(ProtocolError::bad(format!(
                        "improve:<f> needs a positive factor, got '{other}'"
                    )));
                }
                Ok(Calibration::johannesburg_2020_08_19().improved(factor))
            }
            None => Err(ProtocolError::bad(format!(
                "'calibration' is 'now', 'future', or 'improve:<f>', got '{other}'"
            ))),
        },
    }
}

/// Resolves a crosstalk policy spec (`ignore`, `charge:<p>`, `avoid`).
pub fn parse_crosstalk(spec: &str) -> Result<CrosstalkPolicy, ProtocolError> {
    match spec {
        "ignore" => Ok(CrosstalkPolicy::Ignore),
        "avoid" => Ok(CrosstalkPolicy::Avoid),
        other => match other.strip_prefix("charge:") {
            Some(rate) => {
                let error_per_conflict: f64 = rate.parse().map_err(|_| {
                    ProtocolError::bad(format!("charge:<p> needs a number, got '{other}'"))
                })?;
                if !(0.0..=1.0).contains(&error_per_conflict) {
                    return Err(ProtocolError::bad(format!(
                        "charge:<p> needs a probability, got '{other}'"
                    )));
                }
                Ok(CrosstalkPolicy::Charge { error_per_conflict })
            }
            None => Err(ProtocolError::bad(format!(
                "'crosstalk' is 'ignore', 'charge:<p>', or 'avoid', got '{other}'"
            ))),
        },
    }
}

/// Resolves a sweep's benchmark refs into measured sweep benchmarks.
pub fn resolve_sweep_benchmarks(refs: &[String]) -> Result<Vec<SweepBenchmark>, ProtocolError> {
    refs.iter()
        .map(|name| {
            let params = CompileParams {
                benchmark: Some(name.clone()),
                qasm: None,
                device: String::new(),
                router: None,
                decomposer: None,
                seed: 0,
                emit_qasm: false,
            };
            let circuit = resolve_circuit(&params)?;
            Ok(if circuit.counts().measure > 0 {
                SweepBenchmark::new(name, circuit)
            } else {
                SweepBenchmark::measured(name, circuit)
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// Escapes a string into `out` as a JSON string literal, matching the
/// vendored serializer's escaping so hand-built and `Serialize`-built
/// fragments are byte-compatible.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A compact JSON object under construction. The builder exists because
/// responses mix dynamic payloads with fragments from `Serialize` types
/// ([`raw`](JsonObj::raw) splices in `serde_json::to_string` output);
/// number formatting matches the vendored serializer.
#[derive(Debug, Default)]
pub struct JsonObj {
    body: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        write_escaped(&mut self.body, key);
        self.body.push(':');
    }

    /// Adds a pre-serialized JSON fragment verbatim.
    pub fn raw(mut self, key: &str, fragment: &str) -> Self {
        self.key(key);
        self.body.push_str(fragment);
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        write_escaped(&mut self.body, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a float field (finite values only; matches the vendored
    /// serializer's ".0" convention for integral floats).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        let text = value.to_string();
        self.body.push_str(&text);
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            self.body.push_str(".0");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object into its JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Joins pre-serialized fragments into a JSON array.
pub fn json_array<I: IntoIterator<Item = String>>(fragments: I) -> String {
    let items: Vec<String> = fragments.into_iter().collect();
    format!("[{}]", items.join(","))
}

/// A success response line (no trailing newline).
pub fn ok_response(id: u64, result: &str) -> String {
    JsonObj::new()
        .u64("id", id)
        .bool("ok", true)
        .raw("result", result)
        .finish()
}

/// An error response line (no trailing newline).
pub fn error_response(id: u64, error: &ProtocolError) -> String {
    JsonObj::new()
        .u64("id", id)
        .bool("ok", false)
        .raw(
            "error",
            &JsonObj::new()
                .str("kind", error.kind.as_str())
                .str("message", &error.message)
                .finish(),
        )
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_compile_request_with_defaults() {
        let req =
            parse_request(r#"{"id": 3, "method": "compile", "params": {"benchmark": "bv-20"}}"#)
                .unwrap();
        assert_eq!(req.id, 3);
        let Method::Compile(p) = req.method else {
            panic!("expected compile");
        };
        assert_eq!(p.benchmark.as_deref(), Some("bv-20"));
        assert_eq!(p.device, "johannesburg");
        assert_eq!(p.seed, 0);
        assert!(p.router.is_none());
        assert!(p.decomposer.is_none());
        assert!(!p.emit_qasm);
    }

    #[test]
    fn decomposer_params_parse_and_validate() {
        let req = parse_request(
            r#"{"id": 2, "method": "compile",
                "params": {"benchmark": "bv-20", "decomposer": "eight"}}"#,
        )
        .unwrap();
        let Method::Compile(p) = req.method else {
            panic!("expected compile");
        };
        assert_eq!(p.decomposer.as_deref(), Some("eight"));
        // Unknown names are a structured bad-request naming the registry.
        let (id, e) = parse_request(
            r#"{"id": 4, "method": "compile",
                "params": {"benchmark": "bv-20", "decomposer": "margolus"}}"#,
        )
        .unwrap_err();
        assert_eq!((id, e.kind), (4, ErrorKind::BadRequest));
        assert!(e.message.contains("margolus"), "{}", e.message);
        assert!(e.message.contains("relative-phase"), "{}", e.message);
        // Batch and sweep validate too.
        assert!(parse_request(
            r#"{"id": 1, "method": "compile-batch",
                "params": {"circuits": ["bv-20"], "decomposer": "margolus"}}"#
        )
        .is_err());
        assert!(parse_request(
            r#"{"id": 1, "method": "sweep",
                "params": {"benchmarks": ["bv-20"], "decomposers": ["margolus"]}}"#
        )
        .is_err());
    }

    #[test]
    fn parses_control_methods_inline() {
        for (method, expect) in [
            ("ping", Method::Ping),
            ("stats", Method::Stats),
            ("shutdown", Method::Shutdown),
        ] {
            let req = parse_request(&format!(r#"{{"id": 1, "method": "{method}"}}"#)).unwrap();
            assert_eq!(req.method, expect);
            assert!(req.method.is_inline());
        }
        let compile =
            parse_request(r#"{"id": 1, "method": "compile", "params": {"benchmark": "bv-20"}}"#)
                .unwrap();
        assert!(!compile.method.is_inline());
    }

    #[test]
    fn malformed_requests_fail_with_the_right_kind() {
        let (id, e) = parse_request("{not json").unwrap_err();
        assert_eq!((id, e.kind), (0, ErrorKind::Parse));
        let (id, e) = parse_request(r#"{"method": "ping"}"#).unwrap_err();
        assert_eq!((id, e.kind), (0, ErrorKind::BadRequest));
        let (id, e) = parse_request(r#"{"id": 7, "method": "frobnicate"}"#).unwrap_err();
        assert_eq!((id, e.kind), (7, ErrorKind::UnknownMethod));
        let (id, e) = parse_request(r#"{"id": 8, "method": "compile"}"#).unwrap_err();
        assert_eq!((id, e.kind), (8, ErrorKind::BadRequest));
        assert!(e.message.contains("benchmark"), "{}", e.message);
        // Unknown router names fail at parse time, naming the registry.
        let (_, e) = parse_request(
            r#"{"id": 9, "method": "compile", "params": {"benchmark": "bv-20", "router": "sabre"}}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.message.contains("sabre"), "{}", e.message);
        assert!(e.message.contains("baseline"), "{}", e.message);
    }

    #[test]
    fn batch_params_expand_shared_knobs() {
        let req = parse_request(
            r#"{"id": 1, "method": "compile-batch",
                "params": {"circuits": ["bv-20", "gen:qft:3"], "device": "line:8", "seed": 5}}"#,
        )
        .unwrap();
        let Method::CompileBatch(items) = req.method else {
            panic!("expected batch");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].benchmark.as_deref(), Some("bv-20"));
        assert_eq!(items[1].benchmark.as_deref(), Some("gen:qft:3"));
        for item in &items {
            assert_eq!(item.device, "line:8");
            assert_eq!(item.seed, 5);
        }
        assert!(parse_request(
            r#"{"id": 1, "method": "compile-batch", "params": {"circuits": []}}"#
        )
        .is_err());
    }

    #[test]
    fn estimate_and_sweep_specs_validate_at_parse_time() {
        assert!(parse_request(
            r#"{"id": 1, "method": "estimate",
                "params": {"benchmark": "bv-20", "calibration": "later"}}"#
        )
        .is_err());
        assert!(parse_request(
            r#"{"id": 1, "method": "sweep",
                "params": {"benchmarks": ["bv-20"], "calibrations": ["improve:-1"]}}"#
        )
        .is_err());
        assert!(parse_request(
            r#"{"id": 1, "method": "sweep",
                "params": {"benchmarks": ["bv-20"], "crosstalk": "maybe"}}"#
        )
        .is_err());
        let req =
            parse_request(r#"{"id": 1, "method": "sweep", "params": {"benchmarks": ["bv-20"]}}"#)
                .unwrap();
        let Method::Sweep(p) = req.method else {
            panic!("expected sweep");
        };
        assert_eq!(p.routers, ["baseline", "trios"]);
        assert_eq!(p.decomposers, ["standard"]);
        assert_eq!(p.calibrations, ["future"]);
        assert_eq!(p.crosstalk, "ignore");
    }

    #[test]
    fn circuits_resolve_from_names_gen_refs_and_inline_qasm() {
        let by_name = CompileParams {
            benchmark: Some("cnx_inplace-4".into()),
            qasm: None,
            device: "line:6".into(),
            router: None,
            decomposer: None,
            seed: 0,
            emit_qasm: false,
        };
        assert_eq!(resolve_circuit(&by_name).unwrap().num_qubits(), 4);
        let by_gen = CompileParams {
            benchmark: Some("gen:qft:3".into()),
            ..by_name.clone()
        };
        assert!(resolve_circuit(&by_gen).is_ok());
        let inline = CompileParams {
            benchmark: None,
            qasm: Some("OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n".into()),
            ..by_name.clone()
        };
        assert_eq!(resolve_circuit(&inline).unwrap().num_qubits(), 2);
        for bad in ["nope", "gen:nope:1", "gen:qft:x"] {
            let params = CompileParams {
                benchmark: Some(bad.into()),
                ..by_name.clone()
            };
            assert!(resolve_circuit(&params).is_err(), "{bad}");
        }
    }

    #[test]
    fn responses_are_single_line_json_and_round_trip() {
        let ok = ok_response(5, &JsonObj::new().str("pong", "hi\nthere").finish());
        assert!(!ok.contains('\n'), "{ok}");
        let value = serde_json::from_str(&ok).unwrap();
        assert_eq!(value.get("id").unwrap().as_u64(), Some(5));
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            value.get("result").unwrap().get("pong").unwrap().as_str(),
            Some("hi\nthere")
        );
        let err = error_response(
            7,
            &ProtocolError {
                kind: ErrorKind::Busy,
                message: "queue full".into(),
            },
        );
        let value = serde_json::from_str(&err).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(false));
        let error = value.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("busy"));
    }

    #[test]
    fn json_builder_matches_vendored_number_style() {
        let text = JsonObj::new()
            .f64("a", 2.0)
            .f64("b", 2.5)
            .u64("c", 3)
            .finish();
        assert_eq!(text, r#"{"a":2.0,"b":2.5,"c":3}"#);
        assert_eq!(json_array(["1".into(), "2".into()]), "[1,2]");
        assert_eq!(json_array(Vec::<String>::new()), "[]");
    }
}
