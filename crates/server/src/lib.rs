//! # trios-server — compilation as a service
//!
//! A long-lived daemon that exposes the `trios-core` compiler over TCP,
//! so interactive callers (notebooks, sweep drivers, CI probes) pay the
//! process-startup and cache-warmup cost once instead of per invocation.
//!
//! # Wire protocol
//!
//! Line-delimited JSON: each request is one line
//!
//! ```json
//! {"id": 1, "method": "compile", "params": {"benchmark": "tof_4", "device": "line:12", "router": "trios"}}
//! ```
//!
//! and each response is one line, matched by `id`:
//!
//! ```json
//! {"id": 1, "ok": true, "result": {...}}
//! {"id": 2, "ok": false, "error": {"kind": "busy", "message": "..."}}
//! ```
//!
//! Methods: `compile`, `compile-batch`, `estimate`, `sweep` (queued work),
//! plus `ping`, `stats`, and `shutdown` (answered inline, so liveness and
//! metrics stay responsive under load). Requests pick their benchmark or
//! inline OpenQASM, device spec (`line:20`, `grid:5x4`, ...), router, and
//! seed per call; `gen:<family>:<seed>` references draw from the seeded
//! circuit generator.
//!
//! # Architecture
//!
//! Connections are read by per-connection threads; work is admitted into
//! a bounded queue drained by a fixed worker pool sharing one
//! [`ShardedCache`](trios_core::ShardedCache). A full queue answers a
//! structured `busy` error (backpressure, never unbounded buffering), a
//! configurable timeout turns runaway requests into `timeout` errors, and
//! shutdown drains: every admitted request is answered before
//! [`Server::join`] returns. `stats` reports request counters, queue
//! depth/high-water, per-shard cache hit rates, and p50/p90/p99 latency
//! from a constant-memory histogram.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod histogram;
mod protocol;
mod server;

pub use client::Client;
pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use protocol::{ErrorKind, ProtocolError};
pub use server::{Server, ServerConfig, ServerSnapshot};
