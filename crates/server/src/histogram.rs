//! A streaming latency histogram with geometric (power-of-two) buckets.
//!
//! The server records one sample per executed request; quantiles are read
//! live by the `stats` method without ever storing individual samples, so
//! memory stays constant no matter how long the daemon runs. Bucket `b`
//! covers `[2^(b-1), 2^b)` microseconds (bucket 0 is exactly 0), which
//! bounds the relative error of any reported quantile at 2× — coarse, but
//! honest for a metric whose point is "did p99 blow up", and exactly what
//! a fixed 64-slot table can promise.

use std::sync::Mutex;

/// Quantile summary of everything recorded so far.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median latency (µs, bucket upper bound).
    pub p50_us: u64,
    /// 90th percentile (µs).
    pub p90_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
    /// Largest single sample (µs, exact).
    pub max_us: u64,
}

/// Thread-safe streaming histogram of request latencies in microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// buckets[b] counts samples in [2^(b-1), 2^b) µs; buckets[0] counts 0.
    buckets: [u64; 64],
    count: u64,
    max_us: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            buckets: [0; 64],
            count: 0,
            max_us: 0,
        }
    }
}

/// The bucket index for a sample: 0 for 0µs, otherwise one past the
/// position of the highest set bit — clamped to the last slot, so a
/// sample at or beyond 2^63 µs lands in bucket 63 instead of indexing
/// past the table (and panicking with the stats mutex held).
fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(63)
}

/// The largest value a bucket covers, reported as the quantile estimate.
/// The last bucket absorbs everything from 2^62 µs up, so its bound is
/// the full range.
fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        63 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record_us(&self, us: u64) {
        let mut inner = self.inner.lock().expect("histogram lock poisoned");
        inner.buckets[bucket_of(us)] += 1;
        inner.count += 1;
        inner.max_us = inner.max_us.max(us);
    }

    /// One consistent snapshot of count, max, and the p50/p90/p99
    /// estimates. All zeros before the first sample.
    pub fn snapshot(&self) -> LatencySnapshot {
        let inner = self.inner.lock().expect("histogram lock poisoned");
        LatencySnapshot {
            count: inner.count,
            p50_us: inner.quantile(0.50),
            p90_us: inner.quantile(0.90),
            p99_us: inner.quantile(0.99),
            max_us: inner.max_us,
        }
    }
}

impl Inner {
    /// The upper bound of the bucket holding the q-quantile sample
    /// (nearest-rank), capped at the observed maximum so an almost-empty
    /// top bucket cannot report a latency nobody saw.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(bucket).min(self.max_us);
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencySnapshot::default());
    }

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63, "clamped to the last slot");
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
        // Every value lands in a bucket whose range contains it.
        for us in [0u64, 1, 7, 100, 1_000_000, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(us);
            assert!(b < 64, "{us} must stay in the 64-slot table");
            assert!(us <= bucket_upper(b), "{us} above bucket {b} upper");
        }
    }

    #[test]
    fn huge_samples_clamp_to_the_last_bucket_instead_of_panicking() {
        // Regression: 2^63 µs and above used to index buckets[64] and
        // panic while holding the stats mutex, poisoning it for every
        // later stats request.
        let h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        h.record_us(1u64 << 63);
        h.record_us(3);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_us, u64::MAX);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us);
        assert!(s.p99_us <= s.max_us);
    }

    #[test]
    fn quantiles_are_monotone_and_within_2x() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_us, 1000);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us);
        assert!(s.p99_us <= s.max_us);
        // True p50 is 500; the bucket estimate may be up to 2x high.
        assert!((500..=1023).contains(&s.p50_us), "p50 = {}", s.p50_us);
        assert!((990..=1000).contains(&s.p99_us), "p99 = {}", s.p99_us);
    }

    #[test]
    fn single_sample_reports_itself_everywhere() {
        let h = LatencyHistogram::new();
        h.record_us(37);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_us, 37);
        // One sample: every quantile is that sample's bucket, capped at max.
        assert_eq!(s.p50_us, 37);
        assert_eq!(s.p99_us, 37);
    }

    proptest::proptest! {
        /// Any sample stream — including extremes like 0, 1, and
        /// u64::MAX — keeps the quantile ladder monotone, within range,
        /// and the count exact.
        #[test]
        fn quantile_invariants_hold_for_random_streams(
            samples in proptest::collection::vec(
                (0u8..5, proptest::any::<u64>()).prop_map(|(kind, v)| match kind {
                    0 => 0,
                    1 => 1,
                    2 => u64::MAX,
                    3 => v,
                    _ => v % 10_000_000,
                }),
                1..200,
            ),
        ) {
            let h = LatencyHistogram::new();
            for &us in &samples {
                h.record_us(us);
            }
            let s = h.snapshot();
            proptest::prop_assert_eq!(s.count, samples.len() as u64);
            proptest::prop_assert_eq!(
                s.max_us,
                samples.iter().copied().max().unwrap_or(0)
            );
            proptest::prop_assert!(s.p50_us <= s.p90_us);
            proptest::prop_assert!(s.p90_us <= s.p99_us);
            proptest::prop_assert!(s.p99_us <= s.max_us);
            // Each quantile estimate is at least the true nearest-rank
            // value (bucket upper bounds only ever round up).
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = |q: f64| {
                let r = (q * sorted.len() as f64).ceil() as usize;
                sorted[r.clamp(1, sorted.len()) - 1]
            };
            proptest::prop_assert!(s.p50_us >= rank(0.50));
            proptest::prop_assert!(s.p99_us >= rank(0.99));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for us in 0..250u64 {
                        h.record_us(us);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 1000);
    }
}
