//! End-to-end protocol tests against a real server on a loopback socket:
//! error paths keep the connection serving, backpressure answers `busy`
//! instead of hanging, concurrent clients get byte-identical results to
//! the sequential compiler, and shutdown drains everything admitted.

use serde_json::Value;
use trios_server::{Client, Server, ServerConfig};

fn start(config: ServerConfig) -> Server {
    Server::start(config).expect("bind loopback")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        allow_shutdown: true,
        ..ServerConfig::default()
    }
}

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

fn error_kind(response: &Value) -> Option<String> {
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .map(str::to_string)
}

fn result_of(response: &Value) -> &Value {
    assert_eq!(
        response.get("ok").and_then(Value::as_bool),
        Some(true),
        "expected ok: {response:?}"
    );
    response.get("result").expect("ok responses carry a result")
}

#[test]
fn protocol_errors_answer_structured_and_the_server_keeps_serving() {
    let server = start(test_config());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Malformed JSON.
    client.send_raw("{definitely not json").unwrap();
    let response = parse(&client.read_line().unwrap());
    assert_eq!(error_kind(&response).as_deref(), Some("parse"));
    assert_eq!(response.get("id").and_then(Value::as_u64), Some(0));

    // Unknown method.
    let response = parse(&client.call("frobnicate", "{}").unwrap());
    assert_eq!(error_kind(&response).as_deref(), Some("unknown-method"));

    // Unknown router, named in the message alongside the registry.
    let response = parse(
        &client
            .call("compile", r#"{"benchmark": "bv-20", "router": "sabre"}"#)
            .unwrap(),
    );
    assert_eq!(error_kind(&response).as_deref(), Some("bad-request"));
    let message = response
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .unwrap();
    assert!(
        message.contains("sabre") && message.contains("trios"),
        "{message}"
    );

    // Unknown device spec.
    let response = parse(
        &client
            .call(
                "compile",
                r#"{"benchmark": "bv-20", "device": "torus:3x3"}"#,
            )
            .unwrap(),
    );
    assert_eq!(error_kind(&response).as_deref(), Some("bad-request"));

    // After all of that, the connection still works.
    client.ping().unwrap();
    let response = parse(
        &client
            .call(
                "compile",
                r#"{"benchmark": "cnx_inplace-4", "device": "line:6"}"#,
            )
            .unwrap(),
    );
    let result = result_of(&response);
    assert_eq!(result.get("device").and_then(Value::as_str), Some("line-6"));

    server.shutdown();
    server.join();
}

#[test]
fn oversized_lines_error_without_desyncing_the_stream() {
    let server = start(ServerConfig {
        max_line_bytes: 512,
        ..test_config()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    client.send_raw(&"x".repeat(4096)).unwrap();
    let response = parse(&client.read_line().unwrap());
    assert_eq!(error_kind(&response).as_deref(), Some("oversized"));

    // The next (normal) request on the same connection still works.
    client.ping().unwrap();

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_answers_busy_instead_of_hanging() {
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0, // every request pays full compile cost
        ..test_config()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Fire a burst without reading responses: the single worker cannot
    // keep up with the reader, so the one-slot queue must overflow.
    let burst = 32;
    for i in 0..burst {
        client
            .send_raw(&format!(
                r#"{{"id": {i}, "method": "compile", "params": {{"benchmark": "cnx_dirty-11", "seed": {i}}}}}"#
            ))
            .unwrap();
    }
    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..burst {
        let response = parse(&client.read_line().unwrap());
        if response.get("ok").and_then(Value::as_bool) == Some(true) {
            ok += 1;
        } else {
            assert_eq!(error_kind(&response).as_deref(), Some("busy"));
            busy += 1;
        }
    }
    assert!(ok >= 1, "some requests must be served");
    assert!(busy >= 1, "the burst must overflow the one-slot queue");

    let snapshot = server.snapshot();
    assert_eq!(snapshot.rejected, busy);
    assert_eq!(snapshot.queue_high_water, 1);

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_clients_match_the_sequential_compiler_byte_for_byte() {
    use trios_core::Compiler;

    let device = trios_core::parse_spec("johannesburg").unwrap();
    let benchmarks = [
        "bv-20",
        "cnx_inplace-4",
        "grovers-9",
        "incrementer_borrowedbit-5",
    ];
    // Sequential reference: same compiler configuration, in process.
    let reference: Vec<String> = benchmarks
        .iter()
        .map(|name| {
            let circuit = trios_benchmarks::Benchmark::ALL
                .into_iter()
                .find(|b| b.name() == *name)
                .unwrap()
                .build();
            let compiler = Compiler::builder().seed(7).build();
            let (program, _) = compiler.compile_with_report(&circuit, &device).unwrap();
            trios_qasm::emit(&program.circuit)
        })
        .collect();

    let server = start(ServerConfig {
        workers: 4,
        ..test_config()
    });
    let addr = server.local_addr();
    let served: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = benchmarks
            .iter()
            .map(|name| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let response = parse(
                        &client
                            .call(
                                "compile",
                                &format!(
                                    r#"{{"benchmark": "{name}", "seed": 7, "emit-qasm": true}}"#
                                ),
                            )
                            .unwrap(),
                    );
                    result_of(&response)
                        .get("qasm")
                        .and_then(Value::as_str)
                        .expect("qasm requested")
                        .to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(served, reference);

    server.shutdown();
    server.join();
}

#[test]
fn repeated_requests_hit_the_shared_cache_across_connections() {
    let server = start(test_config());

    let mut first = Client::connect(server.local_addr()).unwrap();
    let response = parse(&first.call("compile", r#"{"benchmark": "bv-20"}"#).unwrap());
    assert_eq!(
        result_of(&response).get("cached").and_then(Value::as_bool),
        Some(false)
    );

    // A different connection, same request: served from the shared cache.
    let mut second = Client::connect(server.local_addr()).unwrap();
    let response = parse(&second.call("compile", r#"{"benchmark": "bv-20"}"#).unwrap());
    assert_eq!(
        result_of(&response).get("cached").and_then(Value::as_bool),
        Some(true)
    );

    let stats = server.cache().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // The stats method reports the same numbers over the wire.
    let response = parse(&second.call("stats", "{}").unwrap());
    let result = result_of(&response);
    let cache = result.get("cache").expect("stats carry cache block");
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
    assert_eq!(
        result
            .get("latency")
            .and_then(|l| l.get("count"))
            .and_then(Value::as_u64),
        Some(2)
    );
    let shards = result.get("shards").and_then(Value::as_array).unwrap();
    assert_eq!(shards.len(), ServerConfig::default().shards);

    server.shutdown();
    server.join();
}

#[test]
fn decomposers_never_share_cache_hits_and_unknown_names_error() {
    let server = start(test_config());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Unknown decomposer: a structured bad-request naming the registry,
    // and the connection keeps serving.
    let response = parse(
        &client
            .call(
                "compile",
                r#"{"benchmark": "cnx_inplace-4", "decomposer": "margolus"}"#,
            )
            .unwrap(),
    );
    assert_eq!(error_kind(&response).as_deref(), Some("bad-request"));
    let message = response
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .unwrap();
    assert!(
        message.contains("margolus") && message.contains("relative-phase"),
        "{message}"
    );

    // The same circuit/device/seed under each decomposer: every first
    // request must miss (no cross-decomposer hit), every repeat must hit.
    let mut two_qubit = std::collections::BTreeMap::new();
    for decomposer in ["standard", "six", "eight", "tdepth", "relative-phase"] {
        let request = format!(
            r#"{{"benchmark": "cnx_inplace-4", "device": "line:6", "decomposer": "{decomposer}"}}"#
        );
        let response = parse(&client.call("compile", &request).unwrap());
        let result = result_of(&response);
        assert_eq!(
            result.get("cached").and_then(Value::as_bool),
            Some(false),
            "{decomposer} must not hit another decomposer's entry"
        );
        assert_eq!(
            result.get("decomposer").and_then(Value::as_str),
            Some(decomposer)
        );
        two_qubit.insert(
            decomposer,
            result
                .get("stats")
                .and_then(|s| s.get("two_qubit_gates"))
                .and_then(Value::as_u64)
                .expect("stats carry 2q count"),
        );
        let response = parse(&client.call("compile", &request).unwrap());
        assert_eq!(
            result_of(&response).get("cached").and_then(Value::as_bool),
            Some(true),
            "{decomposer} repeat must hit its own entry"
        );
    }
    // Forced variants really differ from each other on a line device.
    assert_ne!(two_qubit["six"], two_qubit["eight"]);

    // An absent decomposer shares the standard entry (same options hash).
    let response = parse(
        &client
            .call(
                "compile",
                r#"{"benchmark": "cnx_inplace-4", "device": "line:6"}"#,
            )
            .unwrap(),
    );
    assert_eq!(
        result_of(&response).get("cached").and_then(Value::as_bool),
        Some(true)
    );

    server.shutdown();
    server.join();
}

#[test]
fn estimate_compile_batch_and_sweep_answer_over_the_wire() {
    let server = start(test_config());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let response = parse(
        &client
            .call(
                "estimate",
                r#"{"benchmark": "cnx_inplace-4", "calibration": "future"}"#,
            )
            .unwrap(),
    );
    let success = result_of(&response).get("success").expect("success block");
    let probability = success
        .get("probability")
        .and_then(Value::as_f64)
        .expect("probability");
    assert!((0.0..=1.0).contains(&probability), "{probability}");

    let response = parse(
        &client
            .call(
                "compile-batch",
                r#"{"circuits": ["bv-20", "cnx_inplace-4"], "seed": 3}"#,
            )
            .unwrap(),
    );
    let result = result_of(&response);
    let results = result.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0].get("input").and_then(Value::as_str),
        Some("bv-20")
    );
    assert!(result.get("cache").is_some(), "batch reports cache stats");

    let response = parse(
        &client
            .call(
                "sweep",
                r#"{"benchmarks": ["cnx_inplace-4"], "devices": ["line:8"], "routers": ["trios"], "decomposers": ["standard", "eight"]}"#,
            )
            .unwrap(),
    );
    let report = result_of(&response).get("report").expect("sweep report");
    let cells = report
        .get("cells")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("report has cells: {report:?}"));
    assert_eq!(cells.len(), 2, "router x decomposer grid: {report:?}");

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_every_admitted_request() {
    let server = start(ServerConfig {
        workers: 1,
        ..test_config()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Queue several jobs on the single worker, then ask for shutdown.
    let jobs = 5;
    for i in 1..=jobs {
        client
            .send_raw(&format!(
                r#"{{"id": {i}, "method": "compile", "params": {{"benchmark": "bv-20", "seed": {i}}}}}"#
            ))
            .unwrap();
    }
    client
        .send_raw(r#"{"id": 99, "method": "shutdown"}"#)
        .unwrap();

    // Every admitted job answers, plus the shutdown ack; the ack may
    // arrive before the drained compile responses (it is inline).
    let mut answered = std::collections::BTreeSet::new();
    for _ in 0..=jobs {
        let response = parse(&client.read_line().unwrap());
        let id = response.get("id").and_then(Value::as_u64).unwrap();
        if id == 99 {
            assert_eq!(
                result_of(&response)
                    .get("shutting-down")
                    .and_then(Value::as_bool),
                Some(true)
            );
        } else {
            assert_eq!(
                result_of(&response).get("cached").and_then(Value::as_bool),
                Some(false)
            );
        }
        assert!(answered.insert(id), "duplicate response for id {id}");
    }
    assert_eq!(answered.len() as u64, jobs + 1);

    // join() returns (drained), and afterwards the connection reads EOF.
    server.join();
    assert!(client.read_line().is_err(), "connection must be closed");
}

#[test]
fn shutdown_requests_are_refused_when_disabled() {
    let server = start(ServerConfig {
        allow_shutdown: false,
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = parse(&client.call("shutdown", "{}").unwrap());
    assert_eq!(error_kind(&response).as_deref(), Some("shutdown-disabled"));
    // Still serving.
    client.ping().unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn timeouts_turn_slow_requests_into_clean_errors() {
    let server = start(ServerConfig {
        workers: 1,
        timeout_ms: 1, // everything but the cheapest request blows this
        ..test_config()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    // A compiler that keeps getting faster occasionally finished the old
    // two-benchmark request inside 1 ms, flaking the assertion — Monte
    // Carlo shots pin the request comfortably past any compile speedup.
    let response = parse(
        &client
            .call(
                "sweep",
                r#"{"benchmarks": ["cuccaro_adder-20", "takahashi_adder-20"], "devices": ["johannesburg", "grid", "line", "clusters"], "shots": 2000}"#,
            )
            .unwrap(),
    );
    assert_eq!(error_kind(&response).as_deref(), Some("timeout"));
    // The worker is free again: a follow-up request answers.
    client.ping().unwrap();
    server.shutdown();
    server.join();
}
