//! CLI errors.

use std::error::Error;
use std::fmt;

/// An error from argument parsing or command execution.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or malformed flags.
    Usage(String),
    /// The named benchmark / device / file could not be resolved.
    Unknown(String),
    /// Reading an input file failed.
    Io(std::io::Error),
    /// Parsing an input QASM file failed.
    Qasm(trios_qasm::QasmError),
    /// Compilation failed.
    Compile(trios_core::CompileError),
    /// One batch input file could not be read or parsed.
    BatchFile {
        /// The offending file.
        file: String,
        /// The underlying read or parse failure.
        message: String,
    },
    /// One circuit of a batch compilation failed.
    Batch {
        /// The input file that failed to compile.
        file: String,
        /// The failure, including the batch index.
        source: trios_core::BatchDiagnostic,
    },
    /// An evaluation sweep failed (malformed grid or a cell that would
    /// not compile).
    Sweep(trios_core::SweepError),
    /// A fuzz run could not start (malformed spec).
    FuzzSpec(trios_core::FuzzError),
    /// A fuzz run finished and found failing cells; the full report is
    /// carried so the driver can print it before exiting nonzero.
    FuzzFailed {
        /// Number of failing cells.
        failures: usize,
        /// The rendered [`trios_core::FuzzReport`].
        report: String,
    },
    /// A forced `--backend` skipped every cell it was asked to check,
    /// so the run verified nothing. A clean exit here would report a
    /// de-facto PASS that no simulator ever backed.
    FuzzAllSkipped {
        /// The forced backend.
        backend: String,
        /// Number of compiled cells, all of which were skipped.
        skipped: usize,
        /// The rendered [`trios_core::FuzzReport`] with the skip reasons.
        report: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Unknown(what) => write!(f, "unknown {what}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Qasm(e) => write!(f, "qasm error: {e}"),
            CliError::Compile(e) => write!(f, "compile error: {e}"),
            CliError::BatchFile { file, message } => {
                write!(f, "batch input {file}: {message}")
            }
            CliError::Batch { file, source } => {
                write!(f, "batch compile error in {file}: {}", source.diagnostic)
            }
            CliError::Sweep(e) => write!(f, "sweep error: {e}"),
            CliError::FuzzSpec(e) => write!(f, "fuzz error: {e}"),
            CliError::FuzzFailed { failures, report } => {
                write!(f, "{report}\nfuzz found {failures} failing cells")
            }
            CliError::FuzzAllSkipped {
                backend,
                skipped,
                report,
            } => {
                write!(
                    f,
                    "{report}\nforced backend '{backend}' skipped all {skipped} \
                     compiled cells: nothing was verified"
                )
            }
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Qasm(e) => Some(e),
            CliError::Compile(e) => Some(e),
            CliError::Batch { source, .. } => Some(source),
            CliError::Sweep(e) => Some(e),
            CliError::FuzzSpec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<trios_core::SweepError> for CliError {
    fn from(e: trios_core::SweepError) -> Self {
        CliError::Sweep(e)
    }
}

impl From<trios_core::FuzzError> for CliError {
    fn from(e: trios_core::FuzzError) -> Self {
        CliError::FuzzSpec(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<trios_qasm::QasmError> for CliError {
    fn from(e: trios_qasm::QasmError) -> Self {
        CliError::Qasm(e)
    }
}

impl From<trios_core::CompileError> for CliError {
    fn from(e: trios_core::CompileError) -> Self {
        CliError::Compile(e)
    }
}

impl From<trios_core::Diagnostic> for CliError {
    fn from(d: trios_core::Diagnostic) -> Self {
        CliError::Compile(d.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CliError::Usage("missing --device".into())
            .to_string()
            .contains("--device"));
        assert!(CliError::Unknown("benchmark 'nope'".into())
            .to_string()
            .contains("nope"));
    }
}
