//! # trios-cli — command-line front end
//!
//! The `trios` binary a downstream user drives the compiler with:
//!
//! ```text
//! trios list
//! trios table1
//! trios compile grovers-9 --device johannesburg --pipeline trios
//! trios compile program.qasm --device line:12 --emit-qasm out.qasm
//! trios estimate cuccaro_adder-20 --device grid:5x4 --improve 20
//! ```
//!
//! All command logic lives in [`run`], which returns the rendered output
//! so the test suite can exercise every path without spawning processes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod commands;
mod error;

pub use args::{parse_device, Command, Options};
pub use commands::run;
pub use error::CliError;

/// Entry point used by the `trios` binary.
pub fn commands_main() -> std::process::ExitCode {
    commands::main_impl()
}
