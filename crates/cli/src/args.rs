//! Argument parsing (hand-rolled; the CLI's surface is small).

use crate::CliError;
use trios_core::{DecomposerRegistry, Pipeline, StrategyRegistry};
use trios_topology::{parse_spec, Topology};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `trios list` — benchmarks and devices.
    List,
    /// `trios table1` — regenerate the paper's Table 1.
    Table1,
    /// `trios routers` — the registered routing strategies.
    Routers,
    /// `trios decomposers` — the registered Toffoli decompositions.
    Decomposers,
    /// `trios compile <input> [flags]`.
    Compile(Options),
    /// `trios compile-batch <dir> [flags]`.
    CompileBatch(BatchOptions),
    /// `trios estimate <input> [flags]`.
    Estimate(Options),
    /// `trios verify <input> [flags]`.
    Verify(Options),
    /// `trios sweep [flags]` — the evaluation grid.
    Sweep(SweepOptions),
    /// `trios gen [family] [flags]` — emit a generated circuit (or list
    /// the families).
    Gen(GenOptions),
    /// `trios fuzz [flags]` — the differential fuzz harness.
    Fuzz(FuzzOptions),
    /// `trios serve [flags]` — the compilation daemon.
    Serve(ServeOptions),
    /// `trios help` (also `-h` / `--help` / no arguments).
    Help,
}

/// Flags of `trios gen`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GenOptions {
    /// Family registry name; `None` lists the families and their grids.
    pub family: Option<String>,
    /// Generation seed (also picks the grid entry when no explicit
    /// parameters are given).
    pub seed: u64,
    /// Explicit width override.
    pub qubits: Option<usize>,
    /// Explicit depth override.
    pub depth: Option<usize>,
    /// Explicit three-qubit-gate density override (`layered` only).
    pub density: Option<f64>,
    /// Write the OpenQASM here instead of stdout.
    pub out: Option<String>,
}

/// Flags of `trios fuzz`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOptions {
    /// Comma-separated family names, or `all`.
    pub families: String,
    /// Generated case count.
    pub cases: usize,
    /// Base seed.
    pub seed: u64,
    /// Comma-separated router registry names, or `all`.
    pub routers: String,
    /// Decomposer registry name (must be executable, not cost-model-only).
    pub decomposer: String,
    /// Comma-separated device specs.
    pub devices: String,
    /// Worker threads (`0` = one per available core).
    pub jobs: usize,
    /// Compilation-cache capacity (`0` disables).
    pub cache_size: usize,
    /// Minimize failing cases to QASM reproducers.
    pub shrink: bool,
    /// Equivalence backend policy: `auto`, `dense`, `stabilizer`, or
    /// `sparse`.
    pub backend: String,
    /// Widest device checked with the dense statevector backend.
    pub max_dense_qubits: usize,
    /// Nonzero-amplitude budget for the sparse backend.
    pub max_terms: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            families: "all".into(),
            cases: 25,
            seed: 0,
            routers: "all".into(),
            decomposer: "standard".into(),
            devices: "line:8,grid:4x2".into(),
            jobs: 0,
            cache_size: 256,
            shrink: false,
            backend: "auto".into(),
            max_dense_qubits: 8,
            max_terms: trios_sim::DEFAULT_MAX_TERMS,
        }
    }
}

/// Flags of `trios serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Admission queue capacity; a full queue answers `busy`.
    pub queue: usize,
    /// Compilation-cache shard count.
    pub shards: usize,
    /// Total compilation-cache capacity in entries (`0` disables).
    pub cache_size: usize,
    /// Per-request budget in milliseconds (`0` = no timeout).
    pub timeout_ms: u64,
    /// Maximum request line length in KiB.
    pub max_line_kb: usize,
    /// Honor `shutdown` requests from clients.
    pub allow_shutdown: bool,
    /// Smoke mode: bind an ephemeral port, round-trip one compile
    /// through a real socket, and exit 0 — a CI/liveness probe.
    pub check: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".into(),
            workers: 0,
            queue: 64,
            shards: 8,
            cache_size: 256,
            timeout_ms: 0,
            max_line_kb: 1024,
            allow_shutdown: false,
            check: false,
        }
    }
}

/// Flags shared by `compile` and `estimate`.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Benchmark name or `.qasm` path.
    pub input: String,
    /// Device spec (default: `johannesburg`).
    pub device: String,
    /// Pass structure (default: Trios).
    pub pipeline: Pipeline,
    /// Routing strategy by registry name (default: the pipeline's choice).
    pub router: Option<String>,
    /// Toffoli decomposition by registry name (default: `standard`, the
    /// mapping-aware paper lowering).
    pub decomposer: Option<String>,
    /// Seed for stochastic routing (default 0).
    pub seed: u64,
    /// Use the windowed-lookahead pair strategy.
    pub lookahead: bool,
    /// Implement distance-2 CNOTs as bridges.
    pub bridge: bool,
    /// Error-improvement factor for `estimate` (default 1.0).
    pub improve: f64,
    /// Emit compiled OpenQASM to this path (`-` for inline output).
    pub emit_qasm: Option<String>,
    /// Print the per-pass compile report (wall times, gate deltas).
    pub report: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: String::new(),
            device: "johannesburg".into(),
            pipeline: Pipeline::Trios,
            router: None,
            decomposer: None,
            seed: 0,
            lookahead: false,
            bridge: false,
            improve: 1.0,
            emit_qasm: None,
            report: false,
        }
    }
}

/// Flags of `compile-batch`: the shared compile [`Options`] (whose
/// `input` is a directory of `.qasm` files) plus the batch knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOptions {
    /// The shared compile flags; `options.input` is the directory.
    pub options: Options,
    /// Worker threads (`0` = one per available core).
    pub jobs: usize,
    /// Compilation-cache capacity in entries (`0` disables caching).
    pub cache_size: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            options: Options::default(),
            jobs: 0,
            cache_size: 256,
        }
    }
}

impl BatchOptions {
    /// The worker count to actually use: `--jobs` if given, otherwise one
    /// worker per available core.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Flags of `trios sweep`: the evaluation grid to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Benchmark selection: `paper` (the full Table 1 suite), `toffoli`
    /// (its Toffoli-bearing members), or a comma-separated name list.
    pub benchmarks: String,
    /// Comma-separated device specs (see [`parse_device`]).
    pub devices: String,
    /// Comma-separated router registry names.
    pub routers: String,
    /// Comma-separated decomposer registry names.
    pub decomposers: String,
    /// Comma-separated calibrations: `now`, `future`, or `improve:<f>`.
    pub calibrations: String,
    /// Crosstalk policy: `ignore`, `charge:<p>`, or `avoid`.
    pub crosstalk: String,
    /// Monte Carlo shots per eligible (≤ 8-qubit) cell.
    pub shots: Option<usize>,
    /// Worker threads (`0` = one per available core).
    pub jobs: usize,
    /// Routing seed.
    pub seed: u64,
    /// Compilation-cache capacity in entries (`0` disables).
    pub cache_size: usize,
    /// Write the JSON report here (`-` appends it to stdout).
    pub report: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            benchmarks: "paper".into(),
            devices: "johannesburg".into(),
            routers: "baseline,trios".into(),
            decomposers: "standard".into(),
            calibrations: "future".into(),
            crosstalk: "ignore".into(),
            shots: None,
            jobs: 0,
            seed: 0,
            cache_size: 256,
            report: None,
        }
    }
}

/// Fetches the value following the flag at `rest[*i]`, advancing `i`.
fn flag_value(rest: &[&String], i: &mut usize, flag: &str) -> Result<String, CliError> {
    *i += 1;
    rest.get(*i)
        .map(|s| s.to_string())
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

/// Parses an integer flag value (any unsigned width via `FromStr`).
fn flag_int<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| CliError::Usage(format!("{flag} must be an integer, got '{v}'")))
}

/// Validates a comma-separated router list against the standard registry.
fn check_router_names(names: &str) -> Result<(), CliError> {
    let registry = StrategyRegistry::standard();
    for name in names.split(',') {
        if !registry.contains(name.trim()) {
            return Err(CliError::Usage(format!(
                "--routers must name registered strategies ({}), got '{name}'",
                registry.names().collect::<Vec<_>>().join(", ")
            )));
        }
    }
    Ok(())
}

/// Validates one decomposer name against the standard registry.
fn check_decomposer_name(flag: &str, name: &str) -> Result<(), CliError> {
    let registry = DecomposerRegistry::standard();
    if !registry.contains(name.trim()) {
        return Err(CliError::Usage(format!(
            "{flag} must name a registered decomposition ({}), got '{name}'",
            registry.names().collect::<Vec<_>>().join(", ")
        )));
    }
    Ok(())
}

/// Validates a comma-separated decomposer list against the registry.
fn check_decomposer_names(names: &str) -> Result<(), CliError> {
    for name in names.split(',') {
        check_decomposer_name("--decomposers", name)?;
    }
    Ok(())
}

fn parse_sweep_args(rest: &[&String]) -> Result<SweepOptions, CliError> {
    let mut options = SweepOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--benchmarks" | "-b" => options.benchmarks = flag_value(rest, &mut i, "--benchmarks")?,
            "--devices" | "-d" => options.devices = flag_value(rest, &mut i, "--devices")?,
            "--routers" | "-r" => {
                let names = flag_value(rest, &mut i, "--routers")?;
                check_router_names(&names)?;
                options.routers = names;
            }
            "--decomposers" => {
                let names = flag_value(rest, &mut i, "--decomposers")?;
                check_decomposer_names(&names)?;
                options.decomposers = names;
            }
            "--calibrations" | "-c" => {
                options.calibrations = flag_value(rest, &mut i, "--calibrations")?
            }
            "--crosstalk" => options.crosstalk = flag_value(rest, &mut i, "--crosstalk")?,
            "--shots" => {
                let v = flag_value(rest, &mut i, "--shots")?;
                options.shots = Some(flag_int("--shots", v)?);
            }
            "--jobs" | "-j" => {
                let v = flag_value(rest, &mut i, "--jobs")?;
                options.jobs = flag_int("--jobs", v)?;
            }
            "--seed" | "-s" => {
                let v = flag_value(rest, &mut i, "--seed")?;
                options.seed = flag_int("--seed", v)?;
            }
            "--cache-size" => {
                let v = flag_value(rest, &mut i, "--cache-size")?;
                options.cache_size = flag_int("--cache-size", v)?;
            }
            "--report" => options.report = Some(flag_value(rest, &mut i, "--report")?),
            flag => {
                return Err(CliError::Usage(format!(
                    "unknown sweep flag or argument '{flag}'"
                )))
            }
        }
        i += 1;
    }
    Ok(options)
}

fn parse_gen_args(rest: &[&String]) -> Result<GenOptions, CliError> {
    let mut options = GenOptions::default();
    let mut saw_flag = false;
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" | "-s" => {
                let v = flag_value(rest, &mut i, "--seed")?;
                options.seed = flag_int("--seed", v)?;
                saw_flag = true;
            }
            "--qubits" | "-n" => {
                let v = flag_value(rest, &mut i, "--qubits")?;
                options.qubits = Some(flag_int("--qubits", v)?);
                saw_flag = true;
            }
            "--depth" => {
                let v = flag_value(rest, &mut i, "--depth")?;
                options.depth = Some(flag_int("--depth", v)?);
                saw_flag = true;
            }
            "--density" => {
                let v = flag_value(rest, &mut i, "--density")?;
                let density: f64 = v.parse().map_err(|_| {
                    CliError::Usage(format!("--density must be a number, got '{v}'"))
                })?;
                if !(0.0..=1.0).contains(&density) {
                    return Err(CliError::Usage(format!(
                        "--density must be in [0, 1], got '{v}'"
                    )));
                }
                options.density = Some(density);
                saw_flag = true;
            }
            "--emit-qasm" | "-o" => {
                options.out = Some(flag_value(rest, &mut i, "--emit-qasm")?);
                saw_flag = true;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown gen flag '{flag}'")))
            }
            family => {
                if options.family.is_some() {
                    return Err(CliError::Usage("gen takes one family".into()));
                }
                options.family = Some(family.to_string());
            }
        }
        i += 1;
    }
    // Flags without a family are a forgotten argument, not a request for
    // the listing: silently ignoring them (worst case: not writing
    // --emit-qasm's file) would hide the mistake. Checked here, at parse
    // time, so explicitly passed default values ('--seed 0') are caught
    // too.
    if saw_flag && options.family.is_none() {
        return Err(CliError::Usage(
            "gen flags need a family (run 'trios gen' alone to list them)".into(),
        ));
    }
    Ok(options)
}

fn parse_fuzz_args(rest: &[&String]) -> Result<FuzzOptions, CliError> {
    let mut options = FuzzOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--families" | "-f" => options.families = flag_value(rest, &mut i, "--families")?,
            "--cases" | "-c" => {
                let v = flag_value(rest, &mut i, "--cases")?;
                options.cases = flag_int("--cases", v)?;
            }
            "--seed" | "-s" => {
                let v = flag_value(rest, &mut i, "--seed")?;
                options.seed = flag_int("--seed", v)?;
            }
            "--routers" | "-r" => {
                let names = flag_value(rest, &mut i, "--routers")?;
                if names != "all" {
                    check_router_names(&names)?;
                }
                options.routers = names;
            }
            "--decomposer" => {
                let name = flag_value(rest, &mut i, "--decomposer")?;
                check_decomposer_name("--decomposer", &name)?;
                options.decomposer = name;
            }
            "--devices" | "-d" => options.devices = flag_value(rest, &mut i, "--devices")?,
            "--jobs" | "-j" => {
                let v = flag_value(rest, &mut i, "--jobs")?;
                options.jobs = flag_int("--jobs", v)?;
            }
            "--cache-size" => {
                let v = flag_value(rest, &mut i, "--cache-size")?;
                options.cache_size = flag_int("--cache-size", v)?;
            }
            "--shrink" => options.shrink = true,
            "--backend" => {
                let v = flag_value(rest, &mut i, "--backend")?;
                v.parse::<trios_sim::Backend>().map_err(CliError::Usage)?;
                options.backend = v;
            }
            "--max-dense-qubits" => {
                let v = flag_value(rest, &mut i, "--max-dense-qubits")?;
                options.max_dense_qubits = flag_int("--max-dense-qubits", v)?;
            }
            "--max-terms" => {
                let v = flag_value(rest, &mut i, "--max-terms")?;
                options.max_terms = flag_int("--max-terms", v)?;
            }
            flag => {
                return Err(CliError::Usage(format!(
                    "unknown fuzz flag or argument '{flag}'"
                )))
            }
        }
        i += 1;
    }
    Ok(options)
}

fn parse_serve_args(rest: &[&String]) -> Result<ServeOptions, CliError> {
    let mut options = ServeOptions::default();
    let mut i = 0usize;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" | "-a" => options.addr = flag_value(rest, &mut i, "--addr")?,
            "--workers" | "-j" => {
                let v = flag_value(rest, &mut i, "--workers")?;
                options.workers = flag_int("--workers", v)?;
            }
            "--queue" | "-q" => {
                let v = flag_value(rest, &mut i, "--queue")?;
                options.queue = flag_int("--queue", v)?;
            }
            "--shards" => {
                let v = flag_value(rest, &mut i, "--shards")?;
                options.shards = flag_int("--shards", v)?;
            }
            "--cache-size" => {
                let v = flag_value(rest, &mut i, "--cache-size")?;
                options.cache_size = flag_int("--cache-size", v)?;
            }
            "--timeout-ms" => {
                let v = flag_value(rest, &mut i, "--timeout-ms")?;
                options.timeout_ms = flag_int("--timeout-ms", v)?;
            }
            "--max-line-kb" => {
                let v = flag_value(rest, &mut i, "--max-line-kb")?;
                options.max_line_kb = flag_int("--max-line-kb", v)?;
            }
            "--allow-shutdown" => options.allow_shutdown = true,
            "--check" => options.check = true,
            flag => {
                return Err(CliError::Usage(format!(
                    "unknown serve flag or argument '{flag}'"
                )))
            }
        }
        i += 1;
    }
    if options.queue == 0 {
        return Err(CliError::Usage(
            "--queue must be at least 1 (a zero-slot queue rejects everything)".into(),
        ));
    }
    Ok(options)
}

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown subcommands, unknown flags, or
/// missing flag values.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "table1" => Ok(Command::Table1),
        "routers" => Ok(Command::Routers),
        "decomposers" => Ok(Command::Decomposers),
        "sweep" => {
            let rest: Vec<&String> = it.collect();
            parse_sweep_args(&rest).map(Command::Sweep)
        }
        "gen" => {
            let rest: Vec<&String> = it.collect();
            parse_gen_args(&rest).map(Command::Gen)
        }
        "fuzz" => {
            let rest: Vec<&String> = it.collect();
            parse_fuzz_args(&rest).map(Command::Fuzz)
        }
        "serve" => {
            let rest: Vec<&String> = it.collect();
            parse_serve_args(&rest).map(Command::Serve)
        }
        "help" | "-h" | "--help" => Ok(Command::Help),
        "compile" | "compile-batch" | "estimate" | "verify" => {
            let mut options = Options::default();
            let mut batch = BatchOptions::default();
            let mut positional = Vec::new();
            let rest: Vec<&String> = it.collect();
            let mut i = 0usize;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--device" | "-d" => options.device = flag_value(&rest, &mut i, "--device")?,
                    "--pipeline" | "-p" => {
                        options.pipeline = match flag_value(&rest, &mut i, "--pipeline")?.as_str() {
                            "baseline" => Pipeline::Baseline,
                            "trios" => Pipeline::Trios,
                            other => {
                                return Err(CliError::Usage(format!(
                                    "--pipeline must be 'baseline' or 'trios', got '{other}'"
                                )))
                            }
                        }
                    }
                    "--router" | "-r" => {
                        let name = flag_value(&rest, &mut i, "--router")?;
                        // Validate at parse time so typos fail before any
                        // file IO or compilation starts.
                        let registry = StrategyRegistry::standard();
                        if !registry.contains(&name) {
                            return Err(CliError::Usage(format!(
                                "--router must be one of {}, got '{name}'",
                                registry.names().collect::<Vec<_>>().join(", ")
                            )));
                        }
                        options.router = Some(name);
                    }
                    // Long-only: -d already means --device here.
                    "--decomposer" => {
                        let name = flag_value(&rest, &mut i, "--decomposer")?;
                        check_decomposer_name("--decomposer", &name)?;
                        options.decomposer = Some(name);
                    }
                    "--seed" | "-s" => {
                        let v = flag_value(&rest, &mut i, "--seed")?;
                        options.seed = flag_int("--seed", v)?;
                    }
                    // compile-batch falls through to the unknown-flag error
                    // for the per-circuit-output flags it cannot honor,
                    // instead of swallowing them silently.
                    "--improve" if cmd != "compile-batch" => {
                        let v = flag_value(&rest, &mut i, "--improve")?;
                        options.improve = v.parse().map_err(|_| {
                            CliError::Usage(format!("--improve must be a number, got '{v}'"))
                        })?;
                    }
                    "--lookahead" => options.lookahead = true,
                    "--bridge" => options.bridge = true,
                    "--report" => options.report = true,
                    "--emit-qasm" if cmd != "compile-batch" => {
                        options.emit_qasm = Some(flag_value(&rest, &mut i, "--emit-qasm")?)
                    }
                    "--jobs" | "-j" if cmd == "compile-batch" => {
                        let v = flag_value(&rest, &mut i, "--jobs")?;
                        batch.jobs = flag_int("--jobs", v)?;
                    }
                    "--cache-size" if cmd == "compile-batch" => {
                        let v = flag_value(&rest, &mut i, "--cache-size")?;
                        batch.cache_size = flag_int("--cache-size", v)?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError::Usage(format!("unknown flag '{flag}'")))
                    }
                    positional_arg => positional.push(positional_arg.to_string()),
                }
                i += 1;
            }
            match positional.len() {
                0 => return Err(CliError::Usage(format!("{cmd} needs an input"))),
                1 => options.input = positional.remove(0),
                n => return Err(CliError::Usage(format!("{cmd} takes one input, got {n}"))),
            }
            match cmd.as_str() {
                "compile" => Ok(Command::Compile(options)),
                "compile-batch" => {
                    batch.options = options;
                    Ok(Command::CompileBatch(batch))
                }
                "estimate" => Ok(Command::Estimate(options)),
                _ => Ok(Command::Verify(options)),
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}' (try 'trios help')"
        ))),
    }
}

/// Resolves a device spec to a topology via the shared grammar in
/// [`trios_topology::parse_spec`] (named devices plus `line:N`, `ring:N`,
/// `full:N`, `grid:CxR`, `clusters:KxS`, `alltoall:N`, `heavy-hex:N`), so
/// the CLI and the serve protocol accept identical specs.
///
/// # Errors
///
/// Returns [`CliError::Unknown`] for unrecognized specs.
pub fn parse_device(spec: &str) -> Result<Topology, CliError> {
    parse_spec(spec).map_err(|_| CliError::Unknown(format!("device '{spec}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_compile_with_flags() {
        let cmd = parse_args(&args(&[
            "compile",
            "grovers-9",
            "--device",
            "line:12",
            "--pipeline",
            "baseline",
            "--seed",
            "7",
            "--lookahead",
        ]))
        .unwrap();
        let Command::Compile(o) = cmd else {
            panic!("expected compile");
        };
        assert_eq!(o.input, "grovers-9");
        assert_eq!(o.device, "line:12");
        assert_eq!(o.pipeline, Pipeline::Baseline);
        assert_eq!(o.seed, 7);
        assert!(o.lookahead);
    }

    #[test]
    fn parses_compile_batch_with_batch_flags() {
        let cmd = parse_args(&args(&[
            "compile-batch",
            "examples/qasm",
            "--jobs",
            "4",
            "--cache-size",
            "32",
            "--device",
            "grid:3x3",
            "--report",
        ]))
        .unwrap();
        let Command::CompileBatch(batch) = cmd else {
            panic!("expected compile-batch");
        };
        assert_eq!(batch.options.input, "examples/qasm");
        assert_eq!(batch.options.device, "grid:3x3");
        assert!(batch.options.report);
        assert_eq!(batch.jobs, 4);
        assert_eq!(batch.effective_jobs(), 4);
        assert_eq!(batch.cache_size, 32);
    }

    #[test]
    fn compile_batch_defaults_and_flag_scoping() {
        let Command::CompileBatch(batch) = parse_args(&args(&["compile-batch", "d"])).unwrap()
        else {
            panic!("expected compile-batch");
        };
        assert_eq!(batch.jobs, 0, "--jobs defaults to auto");
        assert!(batch.effective_jobs() >= 1);
        assert_eq!(batch.cache_size, 256);
        // The batch flags belong to compile-batch only.
        assert!(parse_args(&args(&["compile", "a", "--jobs", "4"])).is_err());
        assert!(parse_args(&args(&["compile", "a", "--cache-size", "8"])).is_err());
        // And compile-batch rejects the per-circuit-output flags it cannot
        // honor instead of swallowing them.
        assert!(parse_args(&args(&["compile-batch", "d", "--emit-qasm", "o.qasm"])).is_err());
        assert!(parse_args(&args(&["compile-batch", "d", "--improve", "20"])).is_err());
        assert!(parse_args(&args(&["compile-batch", "d", "--jobs", "x"])).is_err());
        assert!(parse_args(&args(&["compile-batch", "d", "--cache-size", "-1"])).is_err());
        assert!(parse_args(&args(&["compile-batch"])).is_err());
    }

    #[test]
    fn parses_router_flag_and_routers_command() {
        assert_eq!(parse_args(&args(&["routers"])).unwrap(), Command::Routers);
        let Command::Compile(o) = parse_args(&args(&[
            "compile",
            "grovers-9",
            "--router",
            "trios-lookahead",
        ]))
        .unwrap() else {
            panic!("expected compile");
        };
        assert_eq!(o.router.as_deref(), Some("trios-lookahead"));
        let Command::CompileBatch(batch) =
            parse_args(&args(&["compile-batch", "d", "-r", "trios-noise"])).unwrap()
        else {
            panic!("expected compile-batch");
        };
        assert_eq!(batch.options.router.as_deref(), Some("trios-noise"));
        // Unknown names fail at parse time, naming the registry.
        let err = parse_args(&args(&["compile", "a", "--router", "sabre"])).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("sabre"), "{text}");
        assert!(text.contains("baseline"), "{text}");
        assert!(parse_args(&args(&["compile", "a", "--router"])).is_err());
    }

    #[test]
    fn parses_decomposer_flag_and_decomposers_command() {
        assert_eq!(
            parse_args(&args(&["decomposers"])).unwrap(),
            Command::Decomposers
        );
        let Command::Compile(o) = parse_args(&args(&["compile", "grovers-9"])).unwrap() else {
            panic!("expected compile");
        };
        assert_eq!(o.decomposer, None, "default is the registry default");
        for name in ["standard", "six", "eight", "tdepth", "relative-phase"] {
            let Command::Compile(o) =
                parse_args(&args(&["compile", "grovers-9", "--decomposer", name])).unwrap()
            else {
                panic!("expected compile");
            };
            assert_eq!(o.decomposer.as_deref(), Some(name));
        }
        let Command::Verify(o) =
            parse_args(&args(&["verify", "grovers-9", "--decomposer", "eight"])).unwrap()
        else {
            panic!("expected verify");
        };
        assert_eq!(o.decomposer.as_deref(), Some("eight"));
        // Unknown names fail at parse time, naming the registry.
        let err = parse_args(&args(&["compile", "a", "--decomposer", "margolus"])).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("margolus"), "{text}");
        assert!(text.contains("relative-phase"), "{text}");
        assert!(parse_args(&args(&["compile", "a", "--decomposer"])).is_err());
    }

    #[test]
    fn parses_sweep_with_defaults_and_flags() {
        let Command::Sweep(o) = parse_args(&args(&["sweep"])).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(o, SweepOptions::default());
        assert_eq!(o.benchmarks, "paper");
        assert_eq!(o.routers, "baseline,trios");
        assert_eq!(o.decomposers, "standard");
        assert_eq!(o.calibrations, "future");

        let Command::Sweep(o) = parse_args(&args(&[
            "sweep",
            "--benchmarks",
            "cnx_inplace-4,grovers-9",
            "--devices",
            "line:8,johannesburg",
            "--routers",
            "baseline,trios-lookahead",
            "--decomposers",
            "standard,eight,qutrit",
            "--calibrations",
            "now,improve:10",
            "--crosstalk",
            "charge:0.02",
            "--shots",
            "50",
            "--jobs",
            "2",
            "--seed",
            "7",
            "--cache-size",
            "64",
            "--report",
            "out.json",
        ]))
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(o.benchmarks, "cnx_inplace-4,grovers-9");
        assert_eq!(o.devices, "line:8,johannesburg");
        assert_eq!(o.routers, "baseline,trios-lookahead");
        assert_eq!(o.decomposers, "standard,eight,qutrit");
        assert_eq!(o.calibrations, "now,improve:10");
        assert_eq!(o.crosstalk, "charge:0.02");
        assert_eq!(o.shots, Some(50));
        assert_eq!(o.jobs, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.cache_size, 64);
        assert_eq!(o.report.as_deref(), Some("out.json"));
    }

    #[test]
    fn sweep_rejects_unknown_routers_and_flags_at_parse_time() {
        let err = parse_args(&args(&["sweep", "--routers", "baseline,sabre"])).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("sabre"), "{text}");
        assert!(text.contains("trios"), "{text}");
        // Decomposer names too.
        let err = parse_args(&args(&["sweep", "--decomposers", "standard,margolus"])).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("margolus"), "{text}");
        assert!(text.contains("qutrit"), "{text}");
        assert!(parse_args(&args(&["sweep", "--wat"])).is_err());
        assert!(parse_args(&args(&["sweep", "positional"])).is_err());
        assert!(parse_args(&args(&["sweep", "--shots", "x"])).is_err());
        assert!(parse_args(&args(&["sweep", "--shots"])).is_err());
    }

    #[test]
    fn parses_gen_with_flags() {
        let Command::Gen(o) = parse_args(&args(&["gen"])).unwrap() else {
            panic!("expected gen");
        };
        assert_eq!(o, GenOptions::default());
        assert!(o.family.is_none());

        let Command::Gen(o) = parse_args(&args(&[
            "gen",
            "layered",
            "-s",
            "7",
            "-n",
            "6",
            "--depth",
            "12",
            "--density",
            "0.5",
        ]))
        .unwrap() else {
            panic!("expected gen");
        };
        assert_eq!(o.family.as_deref(), Some("layered"));
        assert_eq!(o.seed, 7);
        assert_eq!(o.qubits, Some(6));
        assert_eq!(o.depth, Some(12));
        assert_eq!(o.density, Some(0.5));
        assert!(parse_args(&args(&["gen", "a", "b"])).is_err());
        assert!(parse_args(&args(&["gen", "--qubits", "x"])).is_err());
        assert!(parse_args(&args(&["gen", "--density", "1.5"])).is_err());
        assert!(parse_args(&args(&["gen", "--seed"])).is_err());
    }

    #[test]
    fn parses_fuzz_with_defaults_and_flags() {
        let Command::Fuzz(o) = parse_args(&args(&["fuzz"])).unwrap() else {
            panic!("expected fuzz");
        };
        assert_eq!(o, FuzzOptions::default());
        assert_eq!(o.cases, 25);
        assert!(!o.shrink);

        let Command::Fuzz(o) = parse_args(&args(&[
            "fuzz",
            "--seed",
            "42",
            "--cases",
            "50",
            "--families",
            "qft,layered",
            "--routers",
            "baseline,trios",
            "--decomposer",
            "relative-phase",
            "--devices",
            "line:8",
            "--jobs",
            "2",
            "--cache-size",
            "64",
            "--shrink",
            "--backend",
            "stabilizer",
            "--max-dense-qubits",
            "12",
            "--max-terms",
            "4096",
        ]))
        .unwrap() else {
            panic!("expected fuzz");
        };
        assert_eq!(o.seed, 42);
        assert_eq!(o.cases, 50);
        assert_eq!(o.families, "qft,layered");
        assert_eq!(o.routers, "baseline,trios");
        assert_eq!(o.decomposer, "relative-phase");
        assert_eq!(o.devices, "line:8");
        assert_eq!(o.jobs, 2);
        assert_eq!(o.cache_size, 64);
        assert!(o.shrink);
        assert_eq!(o.backend, "stabilizer");
        assert_eq!(o.max_dense_qubits, 12);
        assert_eq!(o.max_terms, 4096);
        assert!(parse_args(&args(&["fuzz", "--backend", "sparse"])).is_ok());
        // Router and decomposer names are validated at parse time.
        assert!(parse_args(&args(&["fuzz", "--routers", "sabre"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--decomposer", "margolus"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--wat"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--cases"])).is_err());
        // Backend names are validated at parse time too.
        assert!(parse_args(&args(&["fuzz", "--backend", "statevector"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_flags() {
        let Command::Serve(o) = parse_args(&args(&["serve"])).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(o, ServeOptions::default());
        assert_eq!(o.addr, "127.0.0.1:7878");
        assert!(!o.allow_shutdown && !o.check);

        let Command::Serve(o) = parse_args(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "8",
            "--shards",
            "4",
            "--cache-size",
            "128",
            "--timeout-ms",
            "500",
            "--max-line-kb",
            "64",
            "--allow-shutdown",
            "--check",
        ]))
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.workers, 2);
        assert_eq!(o.queue, 8);
        assert_eq!(o.shards, 4);
        assert_eq!(o.cache_size, 128);
        assert_eq!(o.timeout_ms, 500);
        assert_eq!(o.max_line_kb, 64);
        assert!(o.allow_shutdown);
        assert!(o.check);

        assert!(parse_args(&args(&["serve", "--queue", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "--workers", "x"])).is_err());
        assert!(parse_args(&args(&["serve", "--wat"])).is_err());
        assert!(parse_args(&args(&["serve", "positional"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["frob"])).is_err());
        assert!(parse_args(&args(&["compile"])).is_err());
        assert!(parse_args(&args(&["compile", "a", "b"])).is_err());
        assert!(parse_args(&args(&["compile", "a", "--pipeline", "x"])).is_err());
        assert!(parse_args(&args(&["compile", "a", "--seed", "x"])).is_err());
        assert!(parse_args(&args(&["compile", "a", "--seed"])).is_err());
        assert!(parse_args(&args(&["compile", "a", "--wat"])).is_err());
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn device_specs_resolve() {
        assert_eq!(parse_device("johannesburg").unwrap().num_qubits(), 20);
        assert_eq!(parse_device("heavy-hex").unwrap().num_qubits(), 27);
        assert_eq!(parse_device("line:7").unwrap().num_qubits(), 7);
        assert_eq!(parse_device("ring:8").unwrap().num_qubits(), 8);
        assert_eq!(parse_device("grid:3x3").unwrap().num_qubits(), 9);
        assert_eq!(parse_device("clusters:2x4").unwrap().num_qubits(), 8);
        assert!(parse_device("torus:3x3").is_err());
        assert!(parse_device("line:x").is_err());
        assert!(parse_device("nonsense").is_err());
    }
}
