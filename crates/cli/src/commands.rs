//! Command execution.

use crate::args::{
    parse_args, parse_device, BatchOptions, Command, FuzzOptions, GenOptions, Options,
    ServeOptions, SweepOptions,
};
use crate::CliError;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use trios_benchmarks::{Benchmark, ExtendedBenchmark};
use trios_core::{
    run_fuzz, run_sweep, Calibration, CompilationCache, CompiledProgram, Compiler, CrosstalkPolicy,
    DecomposerRegistry, FuzzSpec, StrategyRegistry, SweepBenchmark, SweepSpec,
};
use trios_gen::Family;
use trios_ir::Circuit;
use trios_route::LookaheadConfig;

const HELP: &str = "\
trios — the Orchestrated Trios quantum compiler (ASPLOS 2021 reproduction)

USAGE:
    trios <command> [arguments]

COMMANDS:
    list                         benchmarks and devices
    routers                      the registered routing strategies
    decomposers                  the registered Toffoli decompositions
    table1                       regenerate the paper's Table 1
    compile <input> [flags]      compile a benchmark or .qasm file
    compile-batch <dir> [flags]  compile every .qasm under a directory, in
                                 parallel with a compilation cache
    estimate <input> [flags]     compile, then estimate success probability
    verify <input> [flags]       compile, then statevector-check semantics
    sweep [flags]                run a benchmark × device × router ×
                                 calibration evaluation grid (the paper's
                                 Figure 6/8/9/11 comparison)
    gen [family] [flags]         emit a seeded generated circuit as OpenQASM
                                 (no family: list the generator families)
    fuzz [flags]                 differentially fuzz every router: generated
                                 circuits × devices × routers, simulator- and
                                 legality-checked, failures shrunk
    serve [flags]                run the compilation daemon: line-delimited
                                 JSON over TCP with a shared sharded cache,
                                 admission control, and live stats
    help                         this text

FLAGS (compile / estimate):
    --device, -d <spec>          johannesburg | heavy-hex | grid | line |
                                 clusters | line:N | ring:N | full:N |
                                 grid:CxR | clusters:KxS | alltoall:N |
                                 heavy-hex:N (N = 127, 433, 1121, ...)
                                 (default johannesburg)
    --pipeline, -p <which>       baseline | trios          (default trios)
    --router, -r <name>          routing strategy by name (see 'trios routers');
                                 overrides the pipeline's default
    --decomposer <name>          Toffoli decomposition by name (see 'trios
                                 decomposers')          (default standard)
    --seed, -s <n>               routing seed              (default 0)
    --lookahead                  windowed-lookahead pair routing
    --bridge                     distance-2 CNOTs as 4-CNOT bridges
    --improve <factor>           error-improvement factor for estimate
    --emit-qasm <path|->         write the compiled circuit as OpenQASM 2.0
    --report                     print the per-pass compile report

FLAGS (compile-batch only):
    --jobs, -j <n>               worker threads        (default: one per core)
    --cache-size <n>             cache capacity, 0 = off      (default 256)

FLAGS (sweep):
    --benchmarks, -b <list>      'paper' | 'toffoli' | 'generated' | comma-
                                 separated benchmark names, gen:<family>:<seed>
                                 specs, or .qasm paths (default paper)
    --devices, -d <list>         comma-separated device specs (default johannesburg)
    --routers, -r <list>         comma-separated registry names
                                 (default baseline,trios)
    --decomposers <list>         comma-separated decomposition names; the
                                 grid becomes router x decomposer (cost-
                                 model-only entries like 'qutrit' are
                                 repriced, not simulated) (default standard)
    --calibrations, -c <list>    now | future | improve:<f>, comma-separated
                                 (default future = errors improved 20x)
    --crosstalk <policy>         ignore | charge:<p> | avoid  (default ignore)
    --shots <n>                  Monte Carlo cross-check on cells with <= 8
                                 compiled qubits
    --jobs, -j / --seed, -s / --cache-size    as for compile-batch
    --report <path|->            write the SweepReport JSON

FLAGS (gen):
    --seed, -s <n>               generation seed (also picks grid parameters)
    --qubits, -n <n>             width override
    --depth <n>                  depth/layers/sweeps override (per family)
    --density <f>                3q-gate density override (layered only)
    --emit-qasm, -o <path>       write the QASM to a file instead of stdout

FLAGS (fuzz):
    --families, -f <list>        'all' or comma-separated family names
    --cases, -c <n>              generated case count          (default 25)
    --routers, -r <list>         'all' or comma-separated registry names
    --decomposer <name>          executable decomposition to fuzz
                                 (default standard)
    --devices, -d <list>         comma-separated device specs
                                 (default line:8,grid:4x2)
    --shrink                     minimize failing cases to QASM reproducers
    --backend <which>            auto | dense | stabilizer | sparse
                                 (default auto: stabilizer for Clifford
                                 pairs, dense up to --max-dense-qubits,
                                 sparse for wider non-Clifford circuits)
    --max-dense-qubits <n>       widest device dense-checked   (default 8)
    --max-terms <n>              sparse nonzero-amplitude budget; cells
                                 that outgrow it are recorded as skipped
                                 (default 1048576)
    --jobs, -j / --seed, -s / --cache-size    as for compile-batch

FLAGS (serve):
    --addr, -a <host:port>       bind address        (default 127.0.0.1:7878)
    --workers, -j <n>            worker threads      (default: one per core)
    --queue, -q <n>              admission queue capacity; full queues answer
                                 structured 'busy' errors       (default 64)
    --shards <n>                 compilation-cache shard count   (default 8)
    --cache-size <n>             total cache entries, 0 = off  (default 256)
    --timeout-ms <n>             per-request budget, 0 = none    (default 0)
    --max-line-kb <n>            request line limit in KiB    (default 1024)
    --allow-shutdown             honor 'shutdown' requests from clients
    --check                      smoke mode: bind an ephemeral port, round-
                                 trip one compile, and exit 0 (CI probe)

Benchmark inputs everywhere (compile/estimate/verify/sweep) also accept
'gen:<family>:<seed>' for a generated instance.
";

/// Parses `args` (without the program name) and runs the command,
/// returning its rendered output.
///
/// # Errors
///
/// Returns a [`CliError`] for usage errors, unknown inputs, and
/// compilation failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match parse_args(args)? {
        Command::Help => Ok(HELP.to_string()),
        Command::List => Ok(render_list()),
        Command::Routers => Ok(render_routers()),
        Command::Decomposers => Ok(render_decomposers()),
        Command::Table1 => Ok(render_table1()),
        Command::Compile(options) => {
            let (compiled, out) = compile_input(&options)?;
            let mut out = out;
            if let Some(path) = &options.emit_qasm {
                let qasm = trios_qasm::emit(&compiled.circuit);
                if path == "-" {
                    out.push('\n');
                    out.push_str(&qasm);
                } else {
                    std::fs::write(path, qasm)?;
                    let _ = writeln!(out, "\nwrote compiled OpenQASM to {path}");
                }
            }
            Ok(out)
        }
        Command::CompileBatch(batch) => run_compile_batch(&batch),
        Command::Sweep(options) => run_sweep_command(&options),
        Command::Gen(options) => run_gen_command(&options),
        Command::Fuzz(options) => run_fuzz_command(&options),
        Command::Serve(options) => run_serve(&options),
        Command::Verify(options) => {
            let circuit = load_input(&options.input)?;
            let device = parse_device(&options.device)?;
            if device.num_qubits() > trios_sim::MAX_QUBITS {
                return Err(CliError::Usage(format!(
                    "device has {} qubits; dense verification caps at {}",
                    device.num_qubits(),
                    trios_sim::MAX_QUBITS
                )));
            }
            let (compiled, mut out) = compile_input(&options)?;
            let ok = trios_sim::compiled_equivalent(
                &circuit,
                &compiled.circuit,
                &compiled.initial_layout.to_mapping(),
                &compiled.final_layout.to_mapping(),
                2,
                options.seed.wrapping_add(1),
                1e-7,
            )
            .map_err(|e| CliError::Usage(e.to_string()))?;
            let _ = writeln!(
                out,
                "
semantics:       {}",
                if ok {
                    "VERIFIED (statevector replay through initial/final layouts)"
                } else {
                    "FAILED — compiled circuit does not implement the program"
                }
            );
            if !ok {
                return Err(CliError::Usage(
                    "verification failed — please report this as a compiler bug".into(),
                ));
            }
            Ok(out)
        }
        Command::Estimate(options) => {
            let (compiled, mut out) = compile_input(&options)?;
            let calibration = Calibration::johannesburg_2020_08_19().improved(options.improve);
            let estimate = compiled.estimate_success(&calibration);
            let _ = writeln!(
                out,
                "\ncalibration:     Johannesburg 2020-08-19, errors improved {}x",
                options.improve
            );
            let _ = writeln!(out, "est. success:    {estimate}");
            Ok(out)
        }
    }
}

/// Every `.qasm` file under `dir` (recursively), sorted by path so batch
/// order — and therefore output and failure reporting — is deterministic.
/// Symlinks are not followed: a symlink cycle must not hang the walk, and
/// a linked directory would compile the same files twice.
fn collect_qasm_files(dir: &Path) -> Result<Vec<PathBuf>, CliError> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current)? {
            let entry = entry?;
            let file_type = entry.file_type()?;
            let path = entry.path();
            if file_type.is_dir() {
                stack.push(path);
            } else if file_type.is_file() && path.extension().is_some_and(|e| e == "qasm") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn run_compile_batch(batch: &BatchOptions) -> Result<String, CliError> {
    let options = &batch.options;
    let dir = Path::new(&options.input);
    if !dir.is_dir() {
        return Err(CliError::Usage(format!(
            "compile-batch takes a directory of .qasm files, and '{}' is not one",
            dir.display()
        )));
    }
    let files = collect_qasm_files(dir)?;
    if files.is_empty() {
        return Err(CliError::Unknown(format!(
            ".qasm files under '{}' (none found)",
            dir.display()
        )));
    }
    let mut circuits = Vec::with_capacity(files.len());
    for path in &files {
        // Name the file in read/parse failures: in a 50-file batch, a bare
        // "qasm error" would leave the user hunting for the offender.
        let batch_file = |message: String| CliError::BatchFile {
            file: path.display().to_string(),
            message,
        };
        let source = std::fs::read_to_string(path).map_err(|e| batch_file(e.to_string()))?;
        let mut circuit =
            trios_qasm::parse(&source).map_err(|e| batch_file(format!("qasm error: {e}")))?;
        circuit.set_name(path.display().to_string());
        circuits.push(circuit);
    }
    let device = parse_device(&options.device)?;
    let compiler = compiler_for(options);
    let cache = CompilationCache::new(batch.cache_size);
    let jobs = batch.effective_jobs();
    let outcome = compiler
        .compile_batch_parallel_with_cache(&circuits, &device, jobs, Some(&cache))
        .map_err(|e| CliError::Batch {
            file: files[e.index].display().to_string(),
            source: e,
        })?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "batch input:     {} ({} .qasm files)",
        dir.display(),
        files.len()
    );
    let _ = writeln!(out, "device:          {device}");
    let _ = writeln!(
        out,
        "pipeline:        {:?} (router {}, decomposer {}, seed {})",
        options.pipeline,
        compiler.options().router_name(),
        compiler.options().decomposer_name(),
        options.seed
    );
    // Report the clamped worker count the engine actually used (a batch
    // never spawns more workers than it has circuits), so this line and
    // the batch summary below agree.
    let _ = writeln!(
        out,
        "workers:         {} jobs, cache capacity {}",
        outcome.report.jobs, batch.cache_size
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<40} {:>6} {:>6} {:>6} {:>10}",
        "file", "2q", "1q", "depth", "µs"
    );
    for (path, (program, _)) in files.iter().zip(&outcome.results) {
        let _ = writeln!(
            out,
            "{:<40} {:>6} {:>6} {:>6} {:>10.3}",
            path.display(),
            program.stats.two_qubit_gates,
            program.stats.one_qubit_gates,
            program.stats.depth,
            program.stats.duration_us,
        );
    }
    let _ = writeln!(out);
    if options.report {
        let _ = writeln!(out, "{}", outcome.report);
        // The cache's own snapshot (the same CacheStats the serve daemon
        // reports over the wire), next to the batch aggregates.
        let _ = writeln!(out, "cache:           {}", cache.stats());
    } else {
        let report = &outcome.report;
        let _ = writeln!(
            out,
            "batch: {} circuits on {} jobs in {:.1?}, cache {} hits / {} misses",
            report.circuits, report.jobs, report.wall_time, report.cache_hits, report.cache_misses
        );
    }
    Ok(out)
}

/// Resolves the `--benchmarks` selector into measured sweep benchmarks.
fn sweep_benchmarks(selector: &str) -> Result<Vec<SweepBenchmark>, CliError> {
    let named = |benchmarks: Vec<Benchmark>| {
        benchmarks
            .into_iter()
            .map(|b| SweepBenchmark::measured(b.name(), b.build()))
            .collect()
    };
    Ok(match selector {
        "paper" => named(Benchmark::ALL.to_vec()),
        "toffoli" => named(Benchmark::toffoli_suite().collect()),
        // One seed-0 instance per generator family: the open-ended suite.
        "generated" => Family::ALL
            .into_iter()
            .map(|family| {
                let case = family.generate_case(0);
                SweepBenchmark::measured(case.name, case.circuit)
            })
            .collect(),
        list => list
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(|name| {
                let circuit = load_input(name)?;
                // .qasm inputs may already measure; don't double up.
                Ok(if circuit.counts().measure > 0 {
                    SweepBenchmark::new(name, circuit)
                } else {
                    SweepBenchmark::measured(name, circuit)
                })
            })
            .collect::<Result<Vec<_>, CliError>>()?,
    })
}

/// Resolves one `--calibrations` entry.
fn parse_calibration(spec: &str) -> Result<Calibration, CliError> {
    match spec {
        "now" => Ok(Calibration::johannesburg_2020_08_19()),
        "future" => Ok(Calibration::near_future()),
        other => match other.strip_prefix("improve:") {
            Some(factor) => {
                let factor: f64 = factor.parse().map_err(|_| {
                    CliError::Usage(format!("improve:<f> needs a number, got '{other}'"))
                })?;
                if factor <= 0.0 {
                    return Err(CliError::Usage(format!(
                        "improve:<f> needs a positive factor, got '{other}'"
                    )));
                }
                Ok(Calibration::johannesburg_2020_08_19().improved(factor))
            }
            None => Err(CliError::Usage(format!(
                "--calibrations entries are 'now', 'future', or 'improve:<f>', got '{other}'"
            ))),
        },
    }
}

/// Resolves the `--crosstalk` policy.
fn parse_crosstalk(spec: &str) -> Result<CrosstalkPolicy, CliError> {
    match spec {
        "ignore" => Ok(CrosstalkPolicy::Ignore),
        "avoid" => Ok(CrosstalkPolicy::Avoid),
        other => match other.strip_prefix("charge:") {
            Some(rate) => {
                let error_per_conflict: f64 = rate.parse().map_err(|_| {
                    CliError::Usage(format!("charge:<p> needs a number, got '{other}'"))
                })?;
                if !(0.0..=1.0).contains(&error_per_conflict) {
                    return Err(CliError::Usage(format!(
                        "charge:<p> needs a probability, got '{other}'"
                    )));
                }
                Ok(CrosstalkPolicy::Charge { error_per_conflict })
            }
            None => Err(CliError::Usage(format!(
                "--crosstalk is 'ignore', 'charge:<p>', or 'avoid', got '{other}'"
            ))),
        },
    }
}

/// Splits a comma-separated flag value, trimming and dropping empties.
fn comma(list: &str) -> Vec<String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Resolves a comma-separated device list into named topologies.
fn parse_devices(list: &str) -> Result<Vec<(String, trios_core::Topology)>, CliError> {
    comma(list)
        .into_iter()
        .map(|spec| {
            let topology = parse_device(&spec)?;
            Ok((spec, topology))
        })
        .collect()
}

fn run_sweep_command(options: &SweepOptions) -> Result<String, CliError> {
    let devices = parse_devices(&options.devices)?;
    let mut calibrations = Vec::new();
    for spec in comma(&options.calibrations) {
        calibrations.push((spec.clone(), parse_calibration(&spec)?));
    }
    let spec = SweepSpec {
        benchmarks: sweep_benchmarks(&options.benchmarks)?,
        devices,
        routers: comma(&options.routers),
        decomposers: comma(&options.decomposers),
        calibrations,
        crosstalk: parse_crosstalk(&options.crosstalk)?,
        seed: options.seed,
        jobs: options.jobs,
        cache_size: options.cache_size,
        monte_carlo_shots: options.shots,
    };
    let report = run_sweep(&spec)?;
    let mut out = report.summary_table();
    if let Some(path) = &options.report {
        let json = report.to_json_pretty();
        if path == "-" {
            out.push('\n');
            out.push_str(&json);
            out.push('\n');
        } else {
            std::fs::write(path, json)?;
            let _ = writeln!(out, "\nwrote SweepReport JSON to {path}");
        }
    }
    Ok(out)
}

/// Resolves a generator-family name, listing the valid names on failure.
fn parse_family(name: &str) -> Result<Family, CliError> {
    Family::parse(name).ok_or_else(|| {
        CliError::Unknown(format!(
            "family '{name}' (families: {})",
            Family::ALL.map(|f| f.name()).join(", ")
        ))
    })
}

fn run_gen_command(options: &GenOptions) -> Result<String, CliError> {
    // Flags without a family never reach here: parse_gen_args rejects
    // them, so a missing family always means listing mode.
    let Some(name) = &options.family else {
        return Ok(render_families());
    };
    let family = parse_family(name)?;
    let mut case = family.generate_case(options.seed);
    if options.qubits.is_some() || options.depth.is_some() || options.density.is_some() {
        let mut params = case.params;
        if let Some(qubits) = options.qubits {
            params.qubits = qubits;
        }
        if let Some(depth) = options.depth {
            params.depth = depth;
        }
        if let Some(density) = options.density {
            params.three_q_density = density;
        }
        if params.qubits < 3 {
            return Err(CliError::Usage("--qubits must be at least 3".into()));
        }
        let circuit = family.generate(&params, options.seed);
        case.name = circuit.name().to_string();
        case.params = params;
        case.circuit = circuit;
    }
    let qasm = trios_qasm::emit(&case.circuit);
    match &options.out {
        Some(path) => {
            std::fs::write(path, &qasm)?;
            Ok(format!(
                "wrote {} ({} gates, {} qubits) to {path}\n",
                case.name,
                case.circuit.len(),
                case.circuit.num_qubits()
            ))
        }
        None => Ok(qasm),
    }
}

fn render_families() -> String {
    let mut out = String::new();
    out.push_str("generator families (use with 'trios gen <family>', 'trios fuzz --families',\nor as benchmark inputs 'gen:<family>:<seed>'):\n");
    for family in Family::ALL {
        let grid = family.grid();
        let widths: Vec<usize> = grid.iter().map(|p| p.qubits).collect();
        let _ = writeln!(
            out,
            "  {:<16} {} ({} grid entries, {}-{} qubits)",
            family.name(),
            family.description(),
            grid.len(),
            widths.iter().min().expect("grids are nonempty"),
            widths.iter().max().expect("grids are nonempty"),
        );
    }
    out.push_str("\ndeterminism: the same (family, parameters, seed) always generates a\nbyte-identical circuit.\n");
    out
}

fn run_fuzz_command(options: &FuzzOptions) -> Result<String, CliError> {
    let families = if options.families == "all" {
        Family::ALL.to_vec()
    } else {
        comma(&options.families)
            .iter()
            .map(|name| parse_family(name))
            .collect::<Result<Vec<_>, CliError>>()?
    };
    let routers = if options.routers == "all" {
        StrategyRegistry::standard()
            .names()
            .map(str::to_string)
            .collect()
    } else {
        comma(&options.routers)
    };
    let devices = parse_devices(&options.devices)?;
    let spec = FuzzSpec {
        families,
        cases: options.cases,
        seed: options.seed,
        routers,
        decomposer: options.decomposer.clone(),
        devices,
        jobs: options.jobs,
        cache_size: options.cache_size,
        shrink: options.shrink,
        backend: options.backend.parse().map_err(CliError::Usage)?,
        max_sim_qubits: options.max_dense_qubits,
        max_terms: options.max_terms,
        ..FuzzSpec::new()
    };
    let report = run_fuzz(&spec)?;
    if !report.passed() {
        return Err(CliError::FuzzFailed {
            failures: report.failures.len(),
            report: report.to_string(),
        });
    }
    // A forced backend that skipped every compiled cell verified nothing;
    // exiting zero here would turn "couldn't check" into a silent PASS.
    if report.forced_backend_futile() {
        return Err(CliError::FuzzAllSkipped {
            backend: report.backend.to_string(),
            skipped: report.skips.len(),
            report: report.to_string(),
        });
    }
    Ok(format!("{report}\n"))
}

fn run_serve(options: &ServeOptions) -> Result<String, CliError> {
    use trios_server::{Client, Server, ServerConfig};
    let config = ServerConfig {
        // --check must not collide with a real daemon on the default port.
        addr: if options.check {
            "127.0.0.1:0".into()
        } else {
            options.addr.clone()
        },
        workers: options.workers,
        queue_capacity: options.queue,
        shards: options.shards,
        cache_capacity: options.cache_size,
        timeout_ms: options.timeout_ms,
        max_line_bytes: options.max_line_kb * 1024,
        allow_shutdown: options.allow_shutdown || options.check,
    };
    let workers = config.effective_workers();
    let server = Server::start(config)
        .map_err(|e| CliError::Usage(format!("cannot bind '{}': {e}", options.addr)))?;
    let addr = server.local_addr();

    if options.check {
        // Smoke probe: a real client on a real socket round-trips the
        // whole stack — ping, one compile, stats, drained shutdown.
        let mut client = Client::connect(addr)?;
        client.ping()?;
        let response = client.call(
            "compile",
            r#"{"benchmark": "cnx_inplace-4", "device": "line:6"}"#,
        )?;
        if !response.contains("\"ok\":true") {
            return Err(CliError::Usage(format!(
                "serve check: compile round-trip failed: {response}"
            )));
        }
        let stats = client.call("stats", "{}")?;
        if !stats.contains("\"served\"") {
            return Err(CliError::Usage(format!(
                "serve check: stats round-trip failed: {stats}"
            )));
        }
        let _ = client.call("shutdown", "{}")?;
        server.join();
        return Ok(format!(
            "serve check: ok ({addr}, ping + compile + stats round-tripped, drained)\n"
        ));
    }

    // Daemon mode: announce immediately (run()'s return value only prints
    // after the server stops), then block until a client asks us to stop
    // (--allow-shutdown) or the process is killed.
    println!(
        "trios serve: listening on {addr} ({workers} workers, queue {}, {} cache entries in {} shards{})",
        options.queue,
        options.cache_size,
        options.shards,
        if options.allow_shutdown {
            ", shutdown-by-request on"
        } else {
            ""
        }
    );
    server.join();
    Ok("trios serve: drained and stopped\n".to_string())
}

fn load_input(input: &str) -> Result<Circuit, CliError> {
    if input.ends_with(".qasm") {
        let source = std::fs::read_to_string(input)?;
        return Ok(trios_qasm::parse(&source)?);
    }
    if let Some(rest) = input.strip_prefix("gen:") {
        // `gen:<family>[:<seed>]`: a generated instance as a benchmark.
        let (name, seed) = match rest.split_once(':') {
            Some((name, seed)) => (
                name,
                seed.parse::<u64>().map_err(|_| {
                    CliError::Usage(format!(
                        "gen:<family>:<seed> needs an integer seed, got '{seed}'"
                    ))
                })?,
            ),
            None => (rest, 0),
        };
        return Ok(parse_family(name)?.generate_case(seed).circuit);
    }
    if let Some(b) = Benchmark::ALL.into_iter().find(|b| b.name() == input) {
        return Ok(b.build());
    }
    if let Some(b) = ExtendedBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == input)
    {
        return Ok(b.build());
    }
    Err(CliError::Unknown(format!(
        "benchmark '{input}' (and it is not a .qasm path; see 'trios list')"
    )))
}

/// The one translation from CLI [`Options`] to a configured [`Compiler`],
/// shared by `compile` and `compile-batch` so their outputs cannot diverge
/// flag by flag.
fn compiler_for(options: &Options) -> Compiler {
    let mut builder = Compiler::builder()
        .pipeline(options.pipeline)
        .seed(options.seed)
        .lookahead(options.lookahead.then(LookaheadConfig::default))
        .bridge(options.bridge);
    if let Some(router) = &options.router {
        builder = builder.router(router.clone());
    }
    if let Some(decomposer) = &options.decomposer {
        builder = builder.decomposer(decomposer.clone());
    }
    builder.build()
}

fn compile_input(options: &Options) -> Result<(CompiledProgram, String), CliError> {
    let circuit = load_input(&options.input)?;
    let device = parse_device(&options.device)?;
    let compiler = compiler_for(options);
    let (compiled, report) = compiler.compile_with_report(&circuit, &device)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "input:           {} ({})",
        options.input,
        circuit.counts()
    );
    let _ = writeln!(out, "device:          {device}");
    let _ = writeln!(
        out,
        "pipeline:        {:?} (router {}, decomposer {}, seed {}{}{})",
        options.pipeline,
        compiler.options().router_name(),
        compiler.options().decomposer_name(),
        options.seed,
        if options.lookahead { ", lookahead" } else { "" },
        if options.bridge { ", bridge" } else { "" }
    );
    let _ = writeln!(out, "two-qubit gates: {}", compiled.stats.two_qubit_gates);
    let _ = writeln!(out, "one-qubit gates: {}", compiled.stats.one_qubit_gates);
    let _ = writeln!(out, "SWAPs inserted:  {}", compiled.stats.swap_count);
    let _ = writeln!(out, "depth:           {}", compiled.stats.depth);
    let _ = writeln!(out, "duration:        {:.3} µs", compiled.stats.duration_us);
    let _ = writeln!(out, "final layout:    {}", compiled.final_layout);
    if options.report {
        let _ = writeln!(out, "\n{report}");
    }
    Ok((compiled, out))
}

fn render_list() -> String {
    let mut out = String::new();
    out.push_str("paper benchmarks (Table 1):\n");
    for b in Benchmark::ALL {
        let (q, t, cx) = b.table1_row();
        let _ = writeln!(
            out,
            "  {:<28} {:>2} qubits {:>3} toffolis {:>4} cnots",
            b.name(),
            q,
            t,
            cx
        );
    }
    out.push_str("\nextended benchmarks:\n");
    for b in ExtendedBenchmark::ALL {
        let c = b.build();
        let counts = c.counts();
        let _ = writeln!(
            out,
            "  {:<28} {:>2} qubits {:>3} three-qubit gates",
            b.name(),
            c.num_qubits(),
            counts.three_qubit
        );
    }
    out.push_str("\ngenerator families (seeded; see 'trios gen'):\n");
    for family in Family::ALL {
        let _ = writeln!(out, "  gen:{}:<seed>", family.name());
    }
    out.push_str(
        "\ndevices: johannesburg, heavy-hex, grid, line, clusters,\n         \
         line:N, ring:N, full:N, grid:CxR, clusters:KxS,\n         \
         alltoall:N, heavy-hex:N (N a lattice count: 127, 433, 1121, ...)\n",
    );
    out
}

fn render_routers() -> String {
    let registry = StrategyRegistry::standard();
    let mut out = String::new();
    out.push_str("registered routing strategies (select with --router <name>):\n");
    for name in registry.names() {
        let strategy = registry.get(name).expect("listed name resolves");
        let _ = writeln!(out, "  {:<18} {}", name, strategy.description());
        if !strategy.handles_three_qubit_gates() {
            let _ = writeln!(out, "  {:<18} (Toffolis are decomposed before routing)", "");
        }
    }
    out.push_str(
        "\ncustom strategies: implement trios_route::RoutingStrategy and register it\n\
         in a StrategyRegistry (see README \"Choosing a router\")\n",
    );
    out
}

fn render_decomposers() -> String {
    let registry = DecomposerRegistry::standard();
    let mut out = String::new();
    out.push_str("registered Toffoli decompositions (select with --decomposer <name>):\n");
    for name in registry.names() {
        let strategy = registry.get(name).expect("listed name resolves");
        let _ = writeln!(out, "  {:<16} {}", name, strategy.description());
        if !strategy.executable() {
            let _ = writeln!(
                out,
                "  {:<16} (cost model only: sweeps reprice, nothing compiles)",
                ""
            );
        }
    }
    out.push_str(
        "\ncustom strategies: implement trios_passes::DecompositionStrategy and\n\
         register it in a DecomposerRegistry (see README \"Choosing a decomposition\")\n",
    );
    out
}

fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: benchmark inventory (CNOTs after 8-CNOT Toffoli decomposition)\n");
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>9} {:>7}",
        "benchmark", "qubits", "toffolis", "cnots"
    );
    let _ = writeln!(out, "{}", "-".repeat(54));
    for b in Benchmark::ALL {
        let (q, t, cx) = b.table1_row();
        let _ = writeln!(out, "{:<28} {:>7} {:>9} {:>7}", b.name(), q, t, cx);
    }
    out
}

/// The binary's entry logic: run and print, mapping errors to stderr and
/// a nonzero exit code.
pub fn main_impl() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trios: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_lists_commands() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("compile"));
        assert!(out.contains("estimate"));
        assert!(out.contains("--device"));
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run(&args(&["list"])).unwrap();
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "{}", b.name());
        }
        for b in ExtendedBenchmark::ALL {
            assert!(out.contains(b.name()), "{}", b.name());
        }
    }

    #[test]
    fn routers_lists_every_registered_strategy() {
        let out = run(&args(&["routers"])).unwrap();
        for name in StrategyRegistry::standard().names() {
            assert!(out.contains(name), "missing {name}:\n{out}");
        }
        assert!(out.contains("--router"));
        assert!(out.contains("RoutingStrategy"));
    }

    #[test]
    fn router_flag_selects_the_strategy() {
        let base = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-s",
            "1",
        ]))
        .unwrap();
        assert!(base.contains("router trios"), "{base}");
        for router in ["baseline", "trios-lookahead", "trios-noise"] {
            let out = run(&args(&[
                "compile",
                "cnx_inplace-4",
                "-d",
                "line:6",
                "-s",
                "1",
                "--router",
                router,
            ]))
            .unwrap();
            assert!(out.contains(&format!("router {router}")), "{out}");
        }
        // The explicit name equals the pipeline spelling of the same
        // strategy.
        let named = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-s",
            "1",
            "-r",
            "baseline",
        ]))
        .unwrap();
        let via_pipeline = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-s",
            "1",
            "-p",
            "baseline",
        ]))
        .unwrap();
        let gates = |s: &str| -> String {
            s.lines()
                .filter(|l| l.starts_with("two-qubit") | l.starts_with("depth"))
                .collect()
        };
        assert_eq!(gates(&named), gates(&via_pipeline));
    }

    #[test]
    fn decomposers_lists_every_registered_strategy() {
        let out = run(&args(&["decomposers"])).unwrap();
        for name in DecomposerRegistry::standard().names() {
            assert!(out.contains(name), "missing {name}:\n{out}");
        }
        assert!(out.contains("--decomposer"));
        assert!(out.contains("DecompositionStrategy"));
        assert!(out.contains("cost model only"), "{out}");
    }

    #[test]
    fn decomposer_flag_selects_the_lowering_and_verifies() {
        let base = run(&args(&["compile", "cnx_inplace-4", "-d", "line:6"])).unwrap();
        assert!(base.contains("decomposer standard"), "{base}");
        for name in ["six", "eight", "tdepth", "relative-phase"] {
            let out = run(&args(&[
                "verify",
                "cnx_inplace-4",
                "--device",
                "line:6",
                "--decomposer",
                name,
            ]))
            .unwrap();
            assert!(out.contains(&format!("decomposer {name}")), "{out}");
            assert!(out.contains("VERIFIED"), "{name}:\n{out}");
        }
        // The cost-model-only strategy cannot compile: clean diagnostic.
        let err = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "--decomposer",
            "qutrit",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cost-model-only"), "{err}");
    }

    #[test]
    fn sweep_expands_the_decomposer_grid() {
        let out = run(&args(&[
            "sweep",
            "-b",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-r",
            "baseline,trios",
            "--decomposers",
            "standard,qutrit",
            "-c",
            "future",
            "-j",
            "2",
        ]))
        .unwrap();
        assert!(
            out.contains("1 benchmarks x 1 devices x 2 routers x 2 decomposers x 1 calibrations"),
            "{out}"
        );
        assert!(out.contains("qutrit"), "{out}");
        assert!(out.contains("geomean(trios x qutrit / baseline)"), "{out}");
    }

    #[test]
    fn fuzz_relative_phase_smoke_passes() {
        let out = run(&args(&[
            "fuzz",
            "--families",
            "toffoli-ripple",
            "--cases",
            "2",
            "--seed",
            "5",
            "--routers",
            "trios",
            "--devices",
            "line:8",
            "--decomposer",
            "relative-phase",
        ]))
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("decomposer: relative-phase"), "{out}");
    }

    #[test]
    fn verify_passes_for_every_registered_router() {
        for router in StrategyRegistry::standard().names() {
            let out = run(&args(&[
                "verify",
                "cnx_inplace-4",
                "--device",
                "line:6",
                "--router",
                router,
            ]))
            .unwrap();
            assert!(out.contains("VERIFIED"), "{router}:\n{out}");
        }
    }

    #[test]
    fn table1_matches_paper_rows() {
        let out = run(&args(&["table1"])).unwrap();
        assert!(out.contains("cnx_dirty-11"));
        assert!(out.contains("128"));
    }

    #[test]
    fn compile_reports_stats() {
        let out = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("two-qubit gates:"));
        assert!(out.contains("line-6"));
    }

    #[test]
    fn compile_emits_inline_qasm() {
        let out = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--emit-qasm",
            "-",
        ]))
        .unwrap();
        assert!(out.contains("OPENQASM 2.0;"));
        assert!(out.contains("qreg q[6];"));
    }

    #[test]
    fn estimate_includes_probability() {
        let out = run(&args(&[
            "estimate",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--improve",
            "20",
        ]))
        .unwrap();
        assert!(out.contains("est. success:"));
        assert!(out.contains("20x"));
    }

    #[test]
    fn compile_accepts_qasm_files() {
        let dir = std::env::temp_dir().join("trios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        let out = run(&args(&[
            "compile",
            path.to_str().unwrap(),
            "--device",
            "line:4",
        ]))
        .unwrap();
        assert!(out.contains("two-qubit gates: 1"));
    }

    fn batch_dir(name: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("trios-cli-test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("nested")).unwrap();
        for (file, source) in files {
            std::fs::write(dir.join(file), source).unwrap();
        }
        dir
    }

    const BELL: &str = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    const TOFF: &str = "OPENQASM 2.0;\nqreg q[3];\nccx q[0], q[1], q[2];\n";

    #[test]
    fn compile_batch_compiles_a_directory() {
        let dir = batch_dir(
            "batch-ok",
            &[
                ("bell.qasm", BELL),
                ("toffoli.qasm", TOFF),
                ("toffoli_again.qasm", TOFF),
                ("nested/deep.qasm", BELL),
                ("ignored.txt", "not qasm"),
            ],
        );
        let out = run(&args(&[
            "compile-batch",
            dir.to_str().unwrap(),
            "--device",
            "line:5",
            "--jobs",
            "1",
            "--cache-size",
            "16",
        ]))
        .unwrap();
        assert!(out.contains("4 .qasm files"), "{out}");
        assert!(out.contains("bell.qasm"));
        assert!(
            out.contains("deep.qasm"),
            "recursion must find nested files"
        );
        assert!(!out.contains("ignored.txt"));
        // bell/deep and toffoli/toffoli_again are structurally identical
        // pairs: with one worker, each pair is one miss then one hit.
        assert!(out.contains("cache 2 hits / 2 misses"), "{out}");
    }

    #[test]
    fn compile_batch_report_flag_prints_aggregate_passes() {
        let dir = batch_dir("batch-report", &[("toffoli.qasm", TOFF)]);
        let out = run(&args(&[
            "compile-batch",
            dir.to_str().unwrap(),
            "--device",
            "line:4",
            "--report",
        ]))
        .unwrap();
        assert!(out.contains("route-trios"), "{out}");
        assert!(out.contains("throughput:"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        // The CacheStats snapshot line (shared with serve's stats method).
        assert!(out.contains("cache:           "), "{out}");
        assert!(out.contains("entries"), "{out}");
    }

    #[test]
    fn compile_batch_matches_single_compiles() {
        let dir = batch_dir(
            "batch-equiv",
            &[("a_bell.qasm", BELL), ("b_toffoli.qasm", TOFF)],
        );
        let batch_out = run(&args(&[
            "compile-batch",
            dir.to_str().unwrap(),
            "-d",
            "grid:3x2",
            "-s",
            "5",
            "-j",
            "3",
        ]))
        .unwrap();
        // Per-file stats in the batch table match a single `compile` run.
        for file in ["a_bell.qasm", "b_toffoli.qasm"] {
            let single = run(&args(&[
                "compile",
                dir.join(file).to_str().unwrap(),
                "-d",
                "grid:3x2",
                "-s",
                "5",
            ]))
            .unwrap();
            let single_2q: usize = single
                .lines()
                .find(|l| l.starts_with("two-qubit gates:"))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|n| n.parse().ok())
                .unwrap();
            let batch_line = batch_out.lines().find(|l| l.contains(file)).unwrap();
            let batch_2q: usize = batch_line
                .split_whitespace()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(batch_2q, single_2q, "{file}: {batch_line}");
        }
    }

    #[test]
    fn compile_batch_rejects_non_directories_and_empty_dirs() {
        let err = run(&args(&["compile-batch", "/no/such/dir"])).unwrap_err();
        assert!(err.to_string().contains("not one"), "{err}");
        let dir = batch_dir("batch-empty", &[("readme.txt", "no circuits here")]);
        let err = run(&args(&["compile-batch", dir.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("none found"), "{err}");
    }

    #[test]
    fn compile_batch_names_unparseable_files() {
        let dir = batch_dir(
            "batch-badqasm",
            &[
                ("good.qasm", BELL),
                ("mangled.qasm", "OPENQASM 2.0;\nqreg q[2;\n"),
            ],
        );
        let err = run(&args(&[
            "compile-batch",
            dir.to_str().unwrap(),
            "-d",
            "line:4",
        ]))
        .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("mangled.qasm"), "{text}");
        assert!(text.contains("qasm"), "{text}");
    }

    #[test]
    fn compile_batch_worker_count_is_consistent() {
        // 1 file, --jobs 8: both printed worker counts must be the clamped
        // value, not the requested one.
        let dir = batch_dir("batch-clamp", &[("bell.qasm", BELL)]);
        let out = run(&args(&[
            "compile-batch",
            dir.to_str().unwrap(),
            "-d",
            "line:4",
            "-j",
            "8",
        ]))
        .unwrap();
        assert!(out.contains("workers:         1 jobs"), "{out}");
        assert!(out.contains("on 1 jobs"), "{out}");
    }

    #[test]
    fn compile_batch_names_the_failing_file() {
        // line:4 cannot fit a 9-qubit circuit: the second file fails.
        let wide = "OPENQASM 2.0;\nqreg q[9];\ncx q[0], q[8];\n";
        let dir = batch_dir("batch-fail", &[("a_ok.qasm", BELL), ("b_wide.qasm", wide)]);
        let err = run(&args(&[
            "compile-batch",
            dir.to_str().unwrap(),
            "--device",
            "line:4",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("b_wide.qasm"), "{err}");
    }

    #[test]
    fn sweep_reports_ratio_table_and_geomean() {
        let out = run(&args(&[
            "sweep",
            "--benchmarks",
            "cnx_inplace-4,incrementer_borrowedbit-5",
            "--devices",
            "line:6",
            "--routers",
            "baseline,trios",
            "--calibrations",
            "now,future",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(
            out.contains("2 benchmarks x 1 devices x 2 routers x 1 decomposers x 2 calibrations"),
            "{out}"
        );
        assert!(out.contains("cnx_inplace-4"), "{out}");
        assert!(
            out.contains("success-probability ratios vs baseline:"),
            "{out}"
        );
        assert!(
            out.contains("geomean(trios x standard / baseline)"),
            "{out}"
        );
    }

    #[test]
    fn sweep_writes_a_json_report_that_parses_back() {
        use trios_core::SweepReport;
        let dir = std::env::temp_dir().join("trios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let out = run(&args(&[
            "sweep",
            "-b",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-r",
            "baseline,trios",
            "-c",
            "now",
            "--shots",
            "30",
            "--report",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote SweepReport JSON"), "{out}");
        assert!(out.contains("monte carlo:"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let report = SweepReport::from_json(&json).unwrap();
        assert_eq!(report.benchmarks, ["cnx_inplace-4"]);
        assert_eq!(report.routers, ["baseline", "trios"]);
        assert_eq!(report.shots, Some(30));
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let mc = cell.monte_carlo.expect("line:6 cells are simulable");
            assert!(mc.bound_ok, "{cell:?}");
        }
        assert!(report.geomean_for("trios").is_some());
    }

    #[test]
    fn sweep_inline_report_and_bad_specs() {
        let out = run(&args(&[
            "sweep",
            "-b",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-c",
            "improve:5",
            "--report",
            "-",
        ]))
        .unwrap();
        assert!(out.contains("\"benchmarks\""), "{out}");
        assert!(out.contains("\"improve:5\""), "{out}");
        // Unknown benchmark, device, calibration, and crosstalk specs all
        // surface as clean usage errors.
        assert!(run(&args(&["sweep", "-b", "nope"])).is_err());
        assert!(run(&args(&["sweep", "-d", "torus:3x3"])).is_err());
        assert!(run(&args(&["sweep", "-c", "later"])).is_err());
        assert!(run(&args(&["sweep", "--crosstalk", "maybe"])).is_err());
        assert!(run(&args(&["sweep", "--crosstalk", "charge:2.0"])).is_err());
        assert!(run(&args(&["sweep", "-c", "improve:-3"])).is_err());
    }

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let err = run(&args(&["compile", "not_a_benchmark", "-d", "line:4"])).unwrap_err();
        assert!(err.to_string().contains("not_a_benchmark"));
    }

    #[test]
    fn gen_without_family_lists_families() {
        let out = run(&args(&["gen"])).unwrap();
        for family in Family::ALL {
            assert!(out.contains(family.name()), "missing {family}:\n{out}");
        }
        assert!(out.contains("determinism"), "{out}");
    }

    #[test]
    fn gen_emits_deterministic_qasm() {
        let a = run(&args(&["gen", "layered", "--seed", "42"])).unwrap();
        let b = run(&args(&["gen", "layered", "--seed", "42"])).unwrap();
        assert_eq!(a, b, "same seed must emit byte-identical QASM");
        assert!(a.contains("OPENQASM 2.0;"), "{a}");
        let c = run(&args(&["gen", "layered", "--seed", "43"])).unwrap();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn gen_honors_parameter_overrides_and_writes_files() {
        let out = run(&args(&["gen", "qft", "--qubits", "4", "--seed", "1"])).unwrap();
        assert!(out.contains("qreg q[4];"), "{out}");
        let dir = std::env::temp_dir().join("trios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.qasm");
        let out = run(&args(&[
            "gen",
            "toffoli-ripple",
            "--qubits",
            "5",
            "--depth",
            "2",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(trios_qasm::parse(&written).is_ok());
    }

    #[test]
    fn gen_rejects_bad_inputs() {
        assert!(run(&args(&["gen", "nope"])).is_err());
        assert!(run(&args(&["gen", "qft", "--qubits", "2"])).is_err());
        assert!(run(&args(&["gen", "qft", "extra"])).is_err());
        assert!(run(&args(&["gen", "layered", "--density", "7"])).is_err());
        assert!(run(&args(&["gen", "layered", "--wat"])).is_err());
        // Flags without a family are a forgotten argument, not a listing
        // request: erroring beats silently skipping --emit-qasm.
        let err = run(&args(&["gen", "--seed", "7"])).unwrap_err();
        assert!(err.to_string().contains("need a family"), "{err}");
    }

    #[test]
    fn gen_benchmark_selector_compiles_and_verifies() {
        let out = run(&args(&[
            "verify",
            "gen:toffoli-ripple:3",
            "--device",
            "line:8",
        ]))
        .unwrap();
        assert!(out.contains("VERIFIED"), "{out}");
        assert!(run(&args(&["compile", "gen:nope:3", "-d", "line:8"])).is_err());
        assert!(run(&args(&["compile", "gen:qft:x", "-d", "line:8"])).is_err());
    }

    #[test]
    fn fuzz_smoke_passes_and_is_deterministic_across_jobs() {
        let fuzz = |jobs: &str| {
            run(&args(&[
                "fuzz",
                "--families",
                "toffoli-ripple,clifford-t",
                "--cases",
                "4",
                "--seed",
                "5",
                "--routers",
                "baseline,trios",
                "--devices",
                "line:8",
                "--jobs",
                jobs,
            ]))
            .unwrap()
        };
        let one = fuzz("1");
        assert!(one.contains("PASS"), "{one}");
        assert!(one.contains("4 cases x 1 devices x 2 routers"), "{one}");
        assert_eq!(one, fuzz("4"), "report must not depend on --jobs");
    }

    #[test]
    fn sweep_accepts_generated_benchmarks() {
        let out = run(&args(&[
            "sweep",
            "-b",
            "gen:toffoli-ripple:1,gen:layered:2",
            "-d",
            "line:8",
            "-r",
            "baseline,trios",
            "-c",
            "future",
            "-j",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("toffoli-ripple"), "{out}");
        assert!(out.contains("layered"), "{out}");
        assert!(
            out.contains("geomean(trios x standard / baseline)"),
            "{out}"
        );
    }

    #[test]
    fn fuzz_forced_dense_on_a_wide_device_exits_nonzero() {
        // Before the skip-reason rework, forcing dense onto a 100-qubit
        // grid silently skipped every equivalence check and reported PASS.
        let err = run(&args(&[
            "fuzz",
            "--families",
            "toffoli-ripple",
            "--cases",
            "2",
            "--devices",
            "grid:10x10",
            "--routers",
            "trios",
            "--backend",
            "dense",
        ]))
        .unwrap_err();
        match err {
            CliError::FuzzAllSkipped {
                ref backend,
                skipped,
                ref report,
            } => {
                assert_eq!(backend, "dense");
                assert!(skipped > 0);
                assert!(report.contains("exceeds the dense cap"), "{report}");
            }
            other => panic!("expected FuzzAllSkipped, got {other}"),
        }
        // The same cells verify cleanly when the backend choice is left
        // to the policy (sparse picks them up at full width).
        let out = run(&args(&[
            "fuzz",
            "--families",
            "toffoli-ripple",
            "--cases",
            "2",
            "--devices",
            "grid:10x10",
            "--routers",
            "trios",
        ]))
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("sparse"), "{out}");
    }

    #[test]
    fn fuzz_rejects_bad_specs() {
        assert!(run(&args(&["fuzz", "--families", "nope"])).is_err());
        assert!(run(&args(&["fuzz", "--routers", "sabre"])).is_err());
        assert!(run(&args(&["fuzz", "--devices", "torus:3x3"])).is_err());
        assert!(run(&args(&["fuzz", "--cases", "x"])).is_err());
        assert!(run(&args(&["fuzz", "positional"])).is_err());
    }

    #[test]
    fn baseline_and_trios_differ_on_toffoli_input() {
        let base = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-p",
            "baseline",
        ]))
        .unwrap();
        let trios = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-p",
            "trios",
        ]))
        .unwrap();
        let gates = |s: &str| -> usize {
            s.lines()
                .find(|l| l.starts_with("two-qubit gates:"))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|n| n.parse().ok())
                .unwrap()
        };
        assert!(gates(&trios) < gates(&base));
    }

    #[test]
    fn verify_confirms_correct_compilation() {
        let out = run(&args(&[
            "verify",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--seed",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("VERIFIED"));
    }

    #[test]
    fn verify_rejects_oversimulatable_devices() {
        let err = run(&args(&["verify", "bv-20", "--device", "full:25"])).unwrap_err();
        assert!(err.to_string().contains("caps at"));
    }

    #[test]
    fn verify_works_on_qasm_input() {
        let dir = std::env::temp_dir().join("trios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ghz.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\nccx q[0], q[1], q[2];\n",
        )
        .unwrap();
        let out = run(&args(&[
            "verify",
            path.to_str().unwrap(),
            "--device",
            "grid:3x2",
        ]))
        .unwrap();
        assert!(out.contains("VERIFIED"));
    }

    #[test]
    fn report_flag_prints_per_pass_table() {
        let out = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--report",
        ]))
        .unwrap();
        for pass in [
            "initial-mapping",
            "route-trios",
            "lower",
            "optimize",
            "validate",
            "schedule",
        ] {
            assert!(out.contains(pass), "missing pass {pass}:\n{out}");
        }
        assert!(out.contains("total:"));
    }

    #[test]
    fn serve_check_round_trips_a_real_socket() {
        let out = run(&args(&["serve", "--check", "--workers", "2"])).unwrap();
        assert!(out.contains("serve check: ok"), "{out}");
        assert!(out.contains("drained"), "{out}");
    }

    #[test]
    fn help_names_the_serve_command() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("serve"), "{out}");
        assert!(out.contains("--allow-shutdown"), "{out}");
        assert!(out.contains("--check"), "{out}");
    }

    #[test]
    fn lookahead_flag_compiles() {
        let out = run(&args(&[
            "compile",
            "grovers-9",
            "-d",
            "grid:3x3",
            "--lookahead",
        ]))
        .unwrap();
        assert!(out.contains("lookahead"));
    }
}
