//! Command execution.

use crate::args::{parse_args, parse_device, Command, Options};
use crate::CliError;
use std::fmt::Write as _;
use trios_benchmarks::{Benchmark, ExtendedBenchmark};
use trios_core::{Calibration, CompiledProgram, Compiler};
use trios_ir::Circuit;
use trios_route::LookaheadConfig;

const HELP: &str = "\
trios — the Orchestrated Trios quantum compiler (ASPLOS 2021 reproduction)

USAGE:
    trios <command> [arguments]

COMMANDS:
    list                         benchmarks and devices
    table1                       regenerate the paper's Table 1
    compile <input> [flags]      compile a benchmark or .qasm file
    estimate <input> [flags]     compile, then estimate success probability
    verify <input> [flags]       compile, then statevector-check semantics
    help                         this text

FLAGS (compile / estimate):
    --device, -d <spec>          johannesburg | heavy-hex | grid | line |
                                 clusters | line:N | ring:N | full:N |
                                 grid:CxR | clusters:KxS   (default johannesburg)
    --pipeline, -p <which>       baseline | trios          (default trios)
    --toffoli <which>            6 | 8 | aware             (default aware)
    --seed, -s <n>               routing seed              (default 0)
    --lookahead                  windowed-lookahead pair routing
    --bridge                     distance-2 CNOTs as 4-CNOT bridges
    --improve <factor>           error-improvement factor for estimate
    --emit-qasm <path|->         write the compiled circuit as OpenQASM 2.0
    --report                     print the per-pass compile report
";

/// Parses `args` (without the program name) and runs the command,
/// returning its rendered output.
///
/// # Errors
///
/// Returns a [`CliError`] for usage errors, unknown inputs, and
/// compilation failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match parse_args(args)? {
        Command::Help => Ok(HELP.to_string()),
        Command::List => Ok(render_list()),
        Command::Table1 => Ok(render_table1()),
        Command::Compile(options) => {
            let (compiled, out) = compile_input(&options)?;
            let mut out = out;
            if let Some(path) = &options.emit_qasm {
                let qasm = trios_qasm::emit(&compiled.circuit);
                if path == "-" {
                    out.push('\n');
                    out.push_str(&qasm);
                } else {
                    std::fs::write(path, qasm)?;
                    let _ = writeln!(out, "\nwrote compiled OpenQASM to {path}");
                }
            }
            Ok(out)
        }
        Command::Verify(options) => {
            let circuit = load_input(&options.input)?;
            let device = parse_device(&options.device)?;
            if device.num_qubits() > trios_sim::MAX_QUBITS {
                return Err(CliError::Usage(format!(
                    "device has {} qubits; dense verification caps at {}",
                    device.num_qubits(),
                    trios_sim::MAX_QUBITS
                )));
            }
            let (compiled, mut out) = compile_input(&options)?;
            let ok = trios_sim::compiled_equivalent(
                &circuit,
                &compiled.circuit,
                &compiled.initial_layout.to_mapping(),
                &compiled.final_layout.to_mapping(),
                2,
                options.seed.wrapping_add(1),
                1e-7,
            )
            .map_err(|e| CliError::Usage(e.to_string()))?;
            let _ = writeln!(
                out,
                "
semantics:       {}",
                if ok {
                    "VERIFIED (statevector replay through initial/final layouts)"
                } else {
                    "FAILED — compiled circuit does not implement the program"
                }
            );
            if !ok {
                return Err(CliError::Usage(
                    "verification failed — please report this as a compiler bug".into(),
                ));
            }
            Ok(out)
        }
        Command::Estimate(options) => {
            let (compiled, mut out) = compile_input(&options)?;
            let calibration = Calibration::johannesburg_2020_08_19().improved(options.improve);
            let estimate = compiled.estimate_success(&calibration);
            let _ = writeln!(
                out,
                "\ncalibration:     Johannesburg 2020-08-19, errors improved {}x",
                options.improve
            );
            let _ = writeln!(out, "est. success:    {estimate}");
            Ok(out)
        }
    }
}

fn load_input(input: &str) -> Result<Circuit, CliError> {
    if input.ends_with(".qasm") {
        let source = std::fs::read_to_string(input)?;
        return Ok(trios_qasm::parse(&source)?);
    }
    if let Some(b) = Benchmark::ALL.into_iter().find(|b| b.name() == input) {
        return Ok(b.build());
    }
    if let Some(b) = ExtendedBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == input)
    {
        return Ok(b.build());
    }
    Err(CliError::Unknown(format!(
        "benchmark '{input}' (and it is not a .qasm path; see 'trios list')"
    )))
}

fn compile_input(options: &Options) -> Result<(CompiledProgram, String), CliError> {
    let circuit = load_input(&options.input)?;
    let device = parse_device(&options.device)?;
    let compiler = Compiler::builder()
        .pipeline(options.pipeline)
        .toffoli(options.toffoli)
        .seed(options.seed)
        .lookahead(options.lookahead.then(LookaheadConfig::default))
        .bridge(options.bridge)
        .build();
    let (compiled, report) = compiler.compile_with_report(&circuit, &device)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "input:           {} ({})",
        options.input,
        circuit.counts()
    );
    let _ = writeln!(out, "device:          {device}");
    let _ = writeln!(
        out,
        "pipeline:        {:?} (toffoli {:?}, seed {}{}{})",
        options.pipeline,
        options.toffoli,
        options.seed,
        if options.lookahead { ", lookahead" } else { "" },
        if options.bridge { ", bridge" } else { "" }
    );
    let _ = writeln!(out, "two-qubit gates: {}", compiled.stats.two_qubit_gates);
    let _ = writeln!(out, "one-qubit gates: {}", compiled.stats.one_qubit_gates);
    let _ = writeln!(out, "SWAPs inserted:  {}", compiled.stats.swap_count);
    let _ = writeln!(out, "depth:           {}", compiled.stats.depth);
    let _ = writeln!(out, "duration:        {:.3} µs", compiled.stats.duration_us);
    let _ = writeln!(out, "final layout:    {}", compiled.final_layout);
    if options.report {
        let _ = writeln!(out, "\n{report}");
    }
    Ok((compiled, out))
}

fn render_list() -> String {
    let mut out = String::new();
    out.push_str("paper benchmarks (Table 1):\n");
    for b in Benchmark::ALL {
        let (q, t, cx) = b.table1_row();
        let _ = writeln!(
            out,
            "  {:<28} {:>2} qubits {:>3} toffolis {:>4} cnots",
            b.name(),
            q,
            t,
            cx
        );
    }
    out.push_str("\nextended benchmarks:\n");
    for b in ExtendedBenchmark::ALL {
        let c = b.build();
        let counts = c.counts();
        let _ = writeln!(
            out,
            "  {:<28} {:>2} qubits {:>3} three-qubit gates",
            b.name(),
            c.num_qubits(),
            counts.three_qubit
        );
    }
    out.push_str(
        "\ndevices: johannesburg, heavy-hex, grid, line, clusters,\n         \
         line:N, ring:N, full:N, grid:CxR, clusters:KxS\n",
    );
    out
}

fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: benchmark inventory (CNOTs after 8-CNOT Toffoli decomposition)\n");
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>9} {:>7}",
        "benchmark", "qubits", "toffolis", "cnots"
    );
    let _ = writeln!(out, "{}", "-".repeat(54));
    for b in Benchmark::ALL {
        let (q, t, cx) = b.table1_row();
        let _ = writeln!(out, "{:<28} {:>7} {:>9} {:>7}", b.name(), q, t, cx);
    }
    out
}

/// The binary's entry logic: run and print, mapping errors to stderr and
/// a nonzero exit code.
pub fn main_impl() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trios: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_lists_commands() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("compile"));
        assert!(out.contains("estimate"));
        assert!(out.contains("--device"));
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run(&args(&["list"])).unwrap();
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "{}", b.name());
        }
        for b in ExtendedBenchmark::ALL {
            assert!(out.contains(b.name()), "{}", b.name());
        }
    }

    #[test]
    fn table1_matches_paper_rows() {
        let out = run(&args(&["table1"])).unwrap();
        assert!(out.contains("cnx_dirty-11"));
        assert!(out.contains("128"));
    }

    #[test]
    fn compile_reports_stats() {
        let out = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("two-qubit gates:"));
        assert!(out.contains("line-6"));
    }

    #[test]
    fn compile_emits_inline_qasm() {
        let out = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--emit-qasm",
            "-",
        ]))
        .unwrap();
        assert!(out.contains("OPENQASM 2.0;"));
        assert!(out.contains("qreg q[6];"));
    }

    #[test]
    fn estimate_includes_probability() {
        let out = run(&args(&[
            "estimate",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--improve",
            "20",
        ]))
        .unwrap();
        assert!(out.contains("est. success:"));
        assert!(out.contains("20x"));
    }

    #[test]
    fn compile_accepts_qasm_files() {
        let dir = std::env::temp_dir().join("trios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        let out = run(&args(&[
            "compile",
            path.to_str().unwrap(),
            "--device",
            "line:4",
        ]))
        .unwrap();
        assert!(out.contains("two-qubit gates: 1"));
    }

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let err = run(&args(&["compile", "not_a_benchmark", "-d", "line:4"])).unwrap_err();
        assert!(err.to_string().contains("not_a_benchmark"));
    }

    #[test]
    fn baseline_and_trios_differ_on_toffoli_input() {
        let base = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-p",
            "baseline",
        ]))
        .unwrap();
        let trios = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "-d",
            "line:6",
            "-p",
            "trios",
        ]))
        .unwrap();
        let gates = |s: &str| -> usize {
            s.lines()
                .find(|l| l.starts_with("two-qubit gates:"))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|n| n.parse().ok())
                .unwrap()
        };
        assert!(gates(&trios) < gates(&base));
    }

    #[test]
    fn verify_confirms_correct_compilation() {
        let out = run(&args(&[
            "verify",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--seed",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("VERIFIED"));
    }

    #[test]
    fn verify_rejects_oversimulatable_devices() {
        let err = run(&args(&["verify", "bv-20", "--device", "full:25"])).unwrap_err();
        assert!(err.to_string().contains("caps at"));
    }

    #[test]
    fn verify_works_on_qasm_input() {
        let dir = std::env::temp_dir().join("trios-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ghz.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\nccx q[0], q[1], q[2];\n",
        )
        .unwrap();
        let out = run(&args(&[
            "verify",
            path.to_str().unwrap(),
            "--device",
            "grid:3x2",
        ]))
        .unwrap();
        assert!(out.contains("VERIFIED"));
    }

    #[test]
    fn report_flag_prints_per_pass_table() {
        let out = run(&args(&[
            "compile",
            "cnx_inplace-4",
            "--device",
            "line:6",
            "--report",
        ]))
        .unwrap();
        for pass in [
            "initial-mapping",
            "route-trios",
            "lower",
            "optimize",
            "validate",
            "schedule",
        ] {
            assert!(out.contains(pass), "missing pass {pass}:\n{out}");
        }
        assert!(out.contains("total:"));
    }

    #[test]
    fn lookahead_flag_compiles() {
        let out = run(&args(&[
            "compile",
            "grovers-9",
            "-d",
            "grid:3x3",
            "--lookahead",
        ]))
        .unwrap();
        assert!(out.contains("lookahead"));
    }
}
