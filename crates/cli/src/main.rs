//! The `trios` binary: thin wrapper over [`trios_cli::run`].

fn main() -> std::process::ExitCode {
    trios_cli::commands_main()
}
