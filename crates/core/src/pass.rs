//! The [`Pass`] trait and the named passes wrapping each compilation
//! stage of the paper's Figure 2, so pipelines can be assembled, reordered
//! and ablated instead of hardcoded.

use crate::context::{CompileContext, PostRouteCircuit, ProgramSchedule, RouterTrace, SwapTrace};
use crate::{Diagnostic, Pipeline};
use trios_passes::{
    decompose_toffolis, lower_to_hardware_gates, optimize, DecomposerHandle, DecomposerRegistry,
    DecompositionStrategy,
};
use trios_route::{
    check_legal, initial_layout, RouterOptions, RoutingTrace, StrategyRegistry, ToffoliPolicy,
};
use trios_schedule::{schedule_asap, GateDurations};

/// One compilation stage: a named transformation of a [`CompileContext`].
///
/// Passes are `Send + Sync` so a [`PassManager`](crate::PassManager) —
/// and any pipeline assembled from custom passes — can be moved into, or
/// shared with, the worker threads of
/// [`Compiler::compile_batch_parallel`](crate::Compiler::compile_batch_parallel).
/// Pass state must therefore be self-contained (all the built-in passes
/// are plain data plus lazily-built tables).
pub trait Pass: Send + Sync {
    /// Stable, human-readable pass name (used in reports and diagnostics).
    fn name(&self) -> &'static str;

    /// Transforms the context.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] describing the failure; the pass manager
    /// stops at the first failing pass.
    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic>;
}

/// Chooses the initial logical→physical placement (the paper fixes it for
/// the single-Toffoli experiments, and maps greedily otherwise).
#[derive(Debug, Default, Clone, Copy)]
pub struct InitialMappingPass;

impl Pass for InitialMappingPass {
    fn name(&self) -> &'static str {
        "initial-mapping"
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        let layout = initial_layout(&cx.circuit, cx.topology, &cx.options.mapping)
            .map_err(|e| Diagnostic::routing(self.name(), e))?;
        cx.layout = Some(layout);
        Ok(())
    }
}

/// Decomposes every Toffoli up-front with canonical qubit roles — the
/// *baseline* pipeline's first stage (paper Fig. 2a). The Trios pipeline
/// omits this pass; its router decomposes placement-aware instead.
///
/// Both this pre-route pass and the router's second pass resolve the same
/// [`DecompositionStrategy`] by name, so there is exactly one lowering
/// seam no matter which pipeline runs.
#[derive(Debug, Clone)]
pub struct DecomposeToffolisPass {
    decomposer: String,
    registry: DecomposerRegistry,
}

impl Default for DecomposeToffolisPass {
    fn default() -> Self {
        DecomposeToffolisPass::named("standard")
    }
}

impl DecomposeToffolisPass {
    /// A pre-route decomposition pass using the strategy registered under
    /// `decomposer` in the standard registry. Unknown names surface as a
    /// validation [`Diagnostic`] when the pass runs.
    pub fn named(decomposer: impl Into<String>) -> Self {
        DecomposeToffolisPass::with_registry(decomposer, DecomposerRegistry::standard())
    }

    /// A pre-route decomposition pass resolving `decomposer` in a
    /// caller-supplied `registry`.
    pub fn with_registry(decomposer: impl Into<String>, registry: DecomposerRegistry) -> Self {
        DecomposeToffolisPass {
            decomposer: decomposer.into(),
            registry,
        }
    }
}

/// Resolves `name` in `registry`, rejecting unknown names and (unless
/// `allow_cost_model`) strategies that cannot emit gates.
fn resolve_decomposer(
    pass: &'static str,
    name: &str,
    registry: &DecomposerRegistry,
) -> Result<Box<dyn DecompositionStrategy>, Diagnostic> {
    let strategy = registry.get(name).ok_or_else(|| {
        Diagnostic::validation(
            pass,
            format!(
                "unknown decomposer '{}' (registered: {})",
                name,
                registry.names().collect::<Vec<_>>().join(", ")
            ),
        )
    })?;
    if !strategy.executable() {
        return Err(Diagnostic::validation(
            pass,
            format!(
                "decomposer '{}' is cost-model-only and cannot compile circuits \
                 (use it with estimates and sweeps)",
                name
            ),
        ));
    }
    Ok(strategy)
}

impl Pass for DecomposeToffolisPass {
    fn name(&self) -> &'static str {
        "decompose-toffolis"
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        let strategy = resolve_decomposer(self.name(), &self.decomposer, &self.registry)?;
        cx.circuit = decompose_toffolis(&cx.circuit, &*strategy);
        Ok(())
    }
}

/// Routes the circuit through a named [`RoutingStrategy`] from a
/// [`StrategyRegistry`] (the standard one unless
/// [`RoutePass::with_registry`] supplies another): the conventional
/// per-pair strategy (`"baseline"`, [`Pipeline::Baseline`]'s choice), the
/// paper's trio gathering with inline mapping-aware decomposition
/// (`"trios"`, [`Pipeline::Trios`]'s choice), or any other registered
/// strategy (`"trios-lookahead"`, `"trios-noise"`, custom registrations).
///
/// Publishes [`PostRouteCircuit`], [`SwapTrace`], and [`RouterTrace`]
/// artifacts.
///
/// [`RoutingStrategy`]: trios_route::RoutingStrategy
#[derive(Debug, Clone)]
pub struct RoutePass {
    router: String,
    registry: StrategyRegistry,
    decomposers: DecomposerRegistry,
}

impl RoutePass {
    /// A routing pass using `pipeline`'s default strategy.
    pub fn new(pipeline: Pipeline) -> Self {
        RoutePass::named(match pipeline {
            Pipeline::Baseline => "baseline",
            Pipeline::Trios => "trios",
        })
    }

    /// A routing pass using the strategy registered under `router` in the
    /// standard registry. Unknown names surface as a validation
    /// [`Diagnostic`] when the pass runs.
    pub fn named(router: impl Into<String>) -> Self {
        RoutePass::with_registry(router, StrategyRegistry::standard())
    }

    /// A routing pass resolving `router` in a caller-supplied `registry` —
    /// the injection point for custom [`RoutingStrategy`] implementations:
    /// register the constructor, then assemble a pipeline around this pass
    /// with [`PassManager::push`](crate::PassManager::push).
    ///
    /// Note on reporting: [`Pass::name`] returns `&'static str`, so only
    /// the built-in registry names get strategy-specific pass names
    /// (`route-trios-noise`, …); any other strategy reports under the
    /// generic pass name `"route"`. The strategy that actually ran is
    /// always recorded in the published [`RouterTrace`] artifact.
    ///
    /// [`RoutingStrategy`]: trios_route::RoutingStrategy
    pub fn with_registry(router: impl Into<String>, registry: StrategyRegistry) -> Self {
        RoutePass {
            router: router.into(),
            registry,
            decomposers: DecomposerRegistry::standard(),
        }
    }

    /// Replaces the decomposer registry the router's second decomposition
    /// pass resolves [`CompileOptions::decomposer`] in — the injection
    /// point for custom [`DecompositionStrategy`] implementations.
    ///
    /// [`CompileOptions::decomposer`]: crate::CompileOptions::decomposer
    pub fn with_decomposers(mut self, decomposers: DecomposerRegistry) -> Self {
        self.decomposers = decomposers;
        self
    }

    /// The registry name this pass routes with.
    pub fn router(&self) -> &str {
        &self.router
    }
}

impl Pass for RoutePass {
    fn name(&self) -> &'static str {
        match self.router.as_str() {
            "baseline" => "route-pairs",
            "trios" => "route-trios",
            "trios-lookahead" => "route-trios-lookahead",
            "trios-noise" => "route-trios-noise",
            _ => "route",
        }
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        let strategy = self.registry.get(&self.router).ok_or_else(|| {
            Diagnostic::validation(
                self.name(),
                format!(
                    "unknown router '{}' (registered: {})",
                    self.router,
                    self.registry.names().collect::<Vec<_>>().join(", ")
                ),
            )
        })?;
        let layout = cx.layout.take().ok_or_else(|| {
            Diagnostic::validation(self.name(), "no initial layout: run initial-mapping first")
        })?;
        let options = cx.options;
        // Resolve the decomposer here (in the caller-supplied registry)
        // rather than letting the engine look the name up in the standard
        // registry — custom registrations must reach the router.
        let decomposer =
            resolve_decomposer(self.name(), options.decomposer_name(), &self.decomposers)?;
        let router_options = RouterOptions {
            decomposer: DecomposerHandle::Custom(decomposer.into()),
            direction: options.direction,
            metric: options.metric.clone(),
            seed: options.seed,
            lower_toffoli: true,
            lookahead: options.lookahead,
            bridge: options.bridge,
        };
        let mut trace = RoutingTrace::new();
        let routed = strategy
            .route(
                &cx.circuit,
                cx.topology,
                layout,
                &router_options,
                &mut trace,
            )
            .map_err(|e| Diagnostic::routing(self.name(), e))?;
        cx.circuit = routed.circuit.clone();
        cx.initial_layout = Some(routed.initial_layout);
        cx.final_layout = Some(routed.final_layout);
        cx.swap_count = routed.swap_count;
        cx.artifacts.insert(PostRouteCircuit(routed.circuit));
        // SwapTrace predates RouterTrace and is kept for compatibility;
        // both carry the (small, Copy) trio events — one per routed
        // three-qubit gate — by the engine's contract that the trace
        // accumulates while each RoutedCircuit owns its own run's events.
        cx.artifacts.insert(SwapTrace(routed.trio_events));
        cx.artifacts.insert(RouterTrace(trace));
        Ok(())
    }
}

/// Lowers SWAPs, CZ/CP/controlled roots, and any remaining Toffolis into
/// the hardware set `{1q, cx, measure}`.
#[derive(Debug, Default, Clone, Copy)]
pub struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &'static str {
        "lower"
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        // Any remaining three-qubit gate is a leftover the earlier passes
        // should have eliminated; lower it with the configured strategy
        // when that strategy is a standard executable one, else with
        // `standard` (custom registrations live in the route pass — this
        // safety net must not reject them).
        let strategy = DecomposerRegistry::standard()
            .get(cx.options.decomposer_name())
            .filter(|s| s.executable())
            .unwrap_or_else(|| {
                DecomposerRegistry::standard()
                    .get("standard")
                    .expect("standard registry always has 'standard'")
            });
        cx.circuit = lower_to_hardware_gates(&cx.circuit, &*strategy);
        Ok(())
    }
}

/// Gate-level cleanup: inverse-pair cancellation and single-qubit-run
/// merging, mirroring the light optimization of the paper's baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct OptimizePass;

impl Pass for OptimizePass {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        cx.circuit = optimize(&cx.circuit, cx.options.optimize);
        Ok(())
    }
}

/// Checks the routed-by-construction invariants for real: every gate in
/// the hardware set, every multi-qubit gate on a coupling edge.
///
/// The legacy pipeline only `debug_assert!`ed these, so release builds
/// silently trusted them; as a pass, a violation is a recoverable
/// [`Diagnostic`] in every build profile.
#[derive(Debug, Default, Clone, Copy)]
pub struct ValidatePass;

impl Pass for ValidatePass {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        if let Some(offender) = cx
            .circuit
            .iter()
            .enumerate()
            .find(|(_, i)| !i.gate().is_hardware_supported())
        {
            return Err(Diagnostic::lowering(
                self.name(),
                offender.0,
                offender.1.gate(),
            ));
        }
        check_legal(&cx.circuit, cx.topology, ToffoliPolicy::Forbid)
            .map_err(|v| Diagnostic::legality(self.name(), v))?;
        Ok(())
    }
}

/// ASAP-schedules the final circuit under Johannesburg gate times and
/// publishes the [`ProgramSchedule`] artifact (the paper's duration
/// metric Δ).
#[derive(Debug, Default, Clone)]
pub struct SchedulePass {
    durations: Option<GateDurations>,
}

impl SchedulePass {
    /// Schedules with the paper's Johannesburg gate times.
    pub fn new() -> Self {
        SchedulePass::default()
    }

    /// Schedules with a shared, precomputed duration table — used by
    /// batch compilation to build the table once per batch.
    pub fn with_durations(durations: GateDurations) -> Self {
        SchedulePass {
            durations: Some(durations),
        }
    }
}

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<(), Diagnostic> {
        let durations = self
            .durations
            .get_or_insert_with(GateDurations::johannesburg);
        let schedule = schedule_asap(&cx.circuit, durations);
        if schedule.total_duration_us() < 0.0 {
            return Err(Diagnostic::validation(
                self.name(),
                format!("negative total duration {}", schedule.total_duration_us()),
            ));
        }
        cx.artifacts.insert(ProgramSchedule(schedule));
        Ok(())
    }
}
