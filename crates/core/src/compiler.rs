//! [`Compiler`]: the builder-configured entrypoint over the pass-pipeline
//! API, including batch compilation with shared precomputation.

use crate::context::{CompileContext, ProgramSchedule};
use crate::manager::PassManager;
use crate::report::{CompileReport, CompileStats};
use crate::{CompileOptions, CompiledProgram, Diagnostic, PaperConfig, Pipeline};
use std::error::Error;
use std::fmt;
use trios_ir::Circuit;
use trios_passes::{OptimizeOptions, ToffoliDecomposition};
use trios_route::{DirectionPolicy, InitialMapping, LookaheadConfig, PathMetric};
use trios_topology::Topology;

/// The compiler, configured once and reusable across circuits and
/// topologies.
///
/// Construct with [`Compiler::builder`] (or [`Compiler::new`] from
/// existing [`CompileOptions`]); compile with [`Compiler::compile`],
/// [`Compiler::compile_with_report`] (adds per-pass instrumentation), or
/// [`Compiler::compile_batch`] (many circuits, one device, shared
/// precomputation).
///
/// # Examples
///
/// ```
/// use trios_core::{Compiler, PaperConfig};
/// use trios_ir::Circuit;
/// use trios_topology::johannesburg;
///
/// let mut program = Circuit::new(3);
/// program.ccx(0, 1, 2);
///
/// let compiler = Compiler::builder().config(PaperConfig::Trios).seed(7).build();
/// let (compiled, report) = compiler.compile_with_report(&program, &johannesburg())?;
/// assert!(compiled.circuit.is_hardware_lowered());
/// assert!(report.pass("route-trios").is_some());
/// # Ok::<(), trios_core::Diagnostic>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// Starts building a compiler from the default (full-Trios) options.
    pub fn builder() -> CompilerBuilder {
        CompilerBuilder::default()
    }

    /// A compiler running exactly `options`.
    pub fn new(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// The configuration this compiler runs.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles one circuit for one device.
    ///
    /// # Errors
    ///
    /// Returns the first failing pass's [`Diagnostic`].
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &Topology,
    ) -> Result<CompiledProgram, Diagnostic> {
        self.compile_with_report(circuit, topology)
            .map(|(compiled, _)| compiled)
    }

    /// Compiles one circuit and additionally returns the per-pass
    /// [`CompileReport`] (wall times, gate-count deltas).
    ///
    /// # Errors
    ///
    /// Returns the first failing pass's [`Diagnostic`].
    pub fn compile_with_report(
        &self,
        circuit: &Circuit,
        topology: &Topology,
    ) -> Result<(CompiledProgram, CompileReport), Diagnostic> {
        let mut manager = PassManager::for_options(&self.options);
        self.run_pipeline(&mut manager, circuit, topology)
    }

    /// Compiles many circuits over one device with one reused pass
    /// pipeline, so per-pipeline setup — in particular the schedule
    /// pass's gate-duration table, cached inside [`SchedulePass`] after
    /// its first run — happens once per batch instead of once per
    /// circuit. (The topology's all-pairs distance matrix is precomputed
    /// when the [`Topology`] is constructed, so it is shared by every
    /// compilation, batched or not.)
    ///
    /// Output is identical to calling [`Compiler::compile`] on each
    /// circuit in order (each compilation seeds its own RNG from
    /// [`CompileOptions::seed`]), so batching is a pure throughput
    /// optimization — the first step toward serving concurrent traffic.
    ///
    /// # Errors
    ///
    /// Stops at the first circuit that fails, returning its index and
    /// diagnostic.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        topology: &Topology,
    ) -> Result<Vec<CompiledProgram>, BatchDiagnostic> {
        self.compile_batch_with_reports(circuits, topology)
            .map(|v| v.into_iter().map(|(program, _)| program).collect())
    }

    /// Like [`Compiler::compile_batch`] but also returns each circuit's
    /// [`CompileReport`].
    ///
    /// # Errors
    ///
    /// Stops at the first circuit that fails, returning its index and
    /// diagnostic.
    pub fn compile_batch_with_reports(
        &self,
        circuits: &[Circuit],
        topology: &Topology,
    ) -> Result<Vec<(CompiledProgram, CompileReport)>, BatchDiagnostic> {
        let mut manager = PassManager::for_options(&self.options);
        circuits
            .iter()
            .enumerate()
            .map(|(index, circuit)| {
                self.run_pipeline(&mut manager, circuit, topology)
                    .map_err(|diagnostic| BatchDiagnostic { index, diagnostic })
            })
            .collect()
    }

    fn run_pipeline(
        &self,
        manager: &mut PassManager,
        circuit: &Circuit,
        topology: &Topology,
    ) -> Result<(CompiledProgram, CompileReport), Diagnostic> {
        let mut cx = CompileContext::new(circuit.clone(), topology, &self.options);
        let records = manager.run(&mut cx)?;
        let duration_us = cx
            .artifacts
            .get::<ProgramSchedule>()
            .map(|s| s.0.total_duration_us())
            .unwrap_or_default();
        // The last pass record already carries the final circuit's counts
        // and depth; rescan only when the pipeline ran no passes.
        let (counts, depth) = match records.last() {
            Some(last) => (last.gates_after, last.depth_after),
            None => (cx.circuit.counts(), cx.circuit.depth()),
        };
        let stats = CompileStats::new(cx.swap_count, counts, depth, duration_us);
        let initial_layout = cx.initial_layout.take().ok_or_else(|| {
            Diagnostic::validation("compile", "pipeline produced no initial layout")
        })?;
        let final_layout = cx.final_layout.take().ok_or_else(|| {
            Diagnostic::validation("compile", "pipeline produced no final layout")
        })?;
        let report = CompileReport::new(records, stats);
        let compiled = CompiledProgram {
            circuit: cx.circuit,
            initial_layout,
            final_layout,
            stats,
        };
        Ok((compiled, report))
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new(CompileOptions::default())
    }
}

/// A failure while compiling one circuit of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDiagnostic {
    /// Index of the failing circuit in the input slice.
    pub index: usize,
    /// The failure itself.
    pub diagnostic: Diagnostic,
}

impl fmt::Display for BatchDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit {} failed: {}", self.index, self.diagnostic)
    }
}

impl Error for BatchDiagnostic {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.diagnostic)
    }
}

/// Fluent configuration for a [`Compiler`].
///
/// Starts from [`CompileOptions::default`] (the paper's full Trios);
/// every setter overrides one knob. [`CompilerBuilder::config`] applies a
/// named [`PaperConfig`] wholesale.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompilerBuilder {
    options: CompileOptions,
}

impl CompilerBuilder {
    /// Applies a named paper configuration — its pipeline, Toffoli
    /// decomposition, and (stochastic) direction policy — leaving every
    /// other knob set on this builder untouched.
    pub fn config(mut self, config: PaperConfig) -> Self {
        let named = config.to_options(self.options.seed);
        self.options.pipeline = named.pipeline;
        self.options.toffoli = named.toffoli;
        self.options.direction = named.direction;
        self
    }

    /// Replaces all options at once.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Which pass structure to use (paper Fig. 2).
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.options.pipeline = pipeline;
        self
    }

    /// Toffoli decomposition strategy.
    pub fn toffoli(mut self, toffoli: ToffoliDecomposition) -> Self {
        self.options.toffoli = toffoli;
        self
    }

    /// Initial placement strategy.
    pub fn mapping(mut self, mapping: InitialMapping) -> Self {
        self.options.mapping = mapping;
        self
    }

    /// Which endpoint moves when routing distant pairs.
    pub fn direction(mut self, direction: DirectionPolicy) -> Self {
        self.options.direction = direction;
        self
    }

    /// Path metric (hops or noise-aware edge weights).
    pub fn metric(mut self, metric: PathMetric) -> Self {
        self.options.metric = metric;
        self
    }

    /// Seed for stochastic choices.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Post-routing gate-level optimizations.
    pub fn optimize(mut self, optimize: OptimizeOptions) -> Self {
        self.options.optimize = optimize;
        self
    }

    /// Windowed-lookahead pair routing (`None` = committed shortest-path
    /// walks, as in the paper's experiments).
    pub fn lookahead(mut self, lookahead: Option<LookaheadConfig>) -> Self {
        self.options.lookahead = lookahead;
        self
    }

    /// Implement distance-2 CNOTs as 4-CNOT bridges instead of
    /// SWAP-then-CNOT.
    pub fn bridge(mut self, bridge: bool) -> Self {
        self.options.bridge = bridge;
        self
    }

    /// Whether to run the `validate` pass (hardware gate set + coupling
    /// legality as real, recoverable errors). On by default.
    pub fn validate(mut self, validate: bool) -> Self {
        self.options.validate = validate;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Compiler {
        Compiler::new(self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_topology::johannesburg;

    #[test]
    fn builder_defaults_to_full_trios() {
        let compiler = Compiler::builder().build();
        assert_eq!(compiler.options().pipeline, Pipeline::Trios);
        assert_eq!(
            compiler.options().toffoli,
            ToffoliDecomposition::ConnectivityAware
        );
        assert!(compiler.options().validate);
    }

    #[test]
    fn builder_setters_override_knobs() {
        let compiler = Compiler::builder()
            .pipeline(Pipeline::Baseline)
            .toffoli(ToffoliDecomposition::Eight)
            .direction(DirectionPolicy::MoveFirst)
            .seed(9)
            .bridge(true)
            .validate(false)
            .build();
        let o = compiler.options();
        assert_eq!(o.pipeline, Pipeline::Baseline);
        assert_eq!(o.toffoli, ToffoliDecomposition::Eight);
        assert_eq!(o.direction, DirectionPolicy::MoveFirst);
        assert_eq!(o.seed, 9);
        assert!(o.bridge);
        assert!(!o.validate);
    }

    #[test]
    fn config_preserves_seed() {
        let compiler = Compiler::builder()
            .seed(42)
            .config(PaperConfig::QiskitEight)
            .build();
        assert_eq!(compiler.options().seed, 42);
        assert_eq!(compiler.options().pipeline, Pipeline::Baseline);
        assert_eq!(compiler.options().toffoli, ToffoliDecomposition::Eight);
    }

    #[test]
    fn config_preserves_other_knobs_regardless_of_order() {
        let compiler = Compiler::builder()
            .validate(false)
            .bridge(true)
            .mapping(InitialMapping::Fixed(vec![0, 1, 2]))
            .config(PaperConfig::Trios)
            .build();
        let o = compiler.options();
        assert!(!o.validate, ".config must not reset validate");
        assert!(o.bridge, ".config must not reset bridge");
        assert_eq!(o.mapping, InitialMapping::Fixed(vec![0, 1, 2]));
        assert_eq!(o.pipeline, Pipeline::Trios);
    }

    #[test]
    fn report_covers_every_stage_with_timings() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let compiler = Compiler::builder().seed(1).build();
        let (compiled, report) = compiler
            .compile_with_report(&program, &johannesburg())
            .unwrap();
        assert_eq!(
            report.pass_names().collect::<Vec<_>>(),
            [
                "initial-mapping",
                "route-trios",
                "lower",
                "optimize",
                "validate",
                "schedule"
            ]
        );
        // Routing grows the circuit; optimize never grows it.
        assert!(report.pass("route-trios").unwrap().total_delta() > 0);
        assert!(report.pass("optimize").unwrap().total_delta() <= 0);
        assert_eq!(report.stats, compiled.stats);
        assert!(report.total_time >= report.passes.iter().map(|p| p.wall_time).max().unwrap());
    }

    #[test]
    fn batch_error_reports_failing_index() {
        let ok = Circuit::new(3);
        let too_wide = Circuit::new(25);
        let compiler = Compiler::default();
        let err = compiler
            .compile_batch(&[ok, too_wide], &johannesburg())
            .unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.diagnostic, Diagnostic::Routing { .. }));
        assert!(err.to_string().contains("circuit 1"));
    }
}
