//! [`Compiler`]: the builder-configured entrypoint over the pass-pipeline
//! API, including batch compilation with shared precomputation.

use crate::batch::{BatchOutcome, BatchReport};
use crate::cache::CompilationCache;
use crate::context::{CompileContext, ProgramSchedule, RouterTrace};
use crate::manager::PassManager;
use crate::report::{CompileReport, CompileStats};
use crate::{CompileOptions, CompiledProgram, Diagnostic, PaperConfig, Pipeline};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use trios_ir::Circuit;
use trios_passes::{DecomposerRegistry, OptimizeOptions};
use trios_route::{DirectionPolicy, InitialMapping, LookaheadConfig, PathMetric, StrategyRegistry};
use trios_topology::Topology;

/// The compiler, configured once and reusable across circuits and
/// topologies.
///
/// Construct with [`Compiler::builder`] (or [`Compiler::new`] from
/// existing [`CompileOptions`]); compile with [`Compiler::compile`],
/// [`Compiler::compile_with_report`] (adds per-pass instrumentation), or
/// [`Compiler::compile_batch`] (many circuits, one device, shared
/// precomputation).
///
/// # Examples
///
/// ```
/// use trios_core::{Compiler, PaperConfig};
/// use trios_ir::Circuit;
/// use trios_topology::johannesburg;
///
/// let mut program = Circuit::new(3);
/// program.ccx(0, 1, 2);
///
/// let compiler = Compiler::builder().config(PaperConfig::Trios).seed(7).build();
/// let (compiled, report) = compiler.compile_with_report(&program, &johannesburg())?;
/// assert!(compiled.circuit.is_hardware_lowered());
/// assert!(report.pass("route-trios").is_some());
/// # Ok::<(), trios_core::Diagnostic>(())
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    options: CompileOptions,
    registry: StrategyRegistry,
    decomposers: DecomposerRegistry,
}

impl PartialEq for Compiler {
    fn eq(&self, other: &Self) -> bool {
        // Registries hold constructors, which cannot be compared; two
        // compilers are equal when they run the same options over
        // registries exposing the same strategy names.
        self.options == other.options
            && self.registry.names().eq(other.registry.names())
            && self.decomposers.names().eq(other.decomposers.names())
    }
}

impl Compiler {
    /// Starts building a compiler from the default (full-Trios) options.
    pub fn builder() -> CompilerBuilder {
        CompilerBuilder::default()
    }

    /// A compiler running exactly `options` over the standard
    /// [`StrategyRegistry`].
    pub fn new(options: CompileOptions) -> Self {
        Compiler::with_strategies(options, StrategyRegistry::standard())
    }

    /// A compiler resolving [`CompileOptions::router_name`] in a
    /// caller-supplied registry — the injection point for custom
    /// [`RoutingStrategy`](trios_route::RoutingStrategy) implementations
    /// into every compile path, including the parallel batch compiler
    /// and [`fuzz`](crate::fuzz).
    pub fn with_strategies(options: CompileOptions, registry: StrategyRegistry) -> Self {
        Compiler::with_registries(options, registry, DecomposerRegistry::standard())
    }

    /// A compiler resolving both [`CompileOptions::router_name`] and
    /// [`CompileOptions::decomposer_name`] in caller-supplied registries —
    /// the full injection point when custom
    /// [`DecompositionStrategy`](trios_passes::DecompositionStrategy)
    /// implementations are in play as well.
    pub fn with_registries(
        options: CompileOptions,
        registry: StrategyRegistry,
        decomposers: DecomposerRegistry,
    ) -> Self {
        Compiler {
            options,
            registry,
            decomposers,
        }
    }

    /// The configuration this compiler runs.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The strategy registry this compiler resolves routers in.
    pub fn strategies(&self) -> &StrategyRegistry {
        &self.registry
    }

    /// The registry this compiler resolves Toffoli/CCZ decomposers in.
    pub fn decomposer_strategies(&self) -> &DecomposerRegistry {
        &self.decomposers
    }

    fn pass_manager(&self) -> PassManager {
        PassManager::for_options_with_registries(&self.options, &self.registry, &self.decomposers)
    }

    /// Compiles one circuit for one device.
    ///
    /// # Errors
    ///
    /// Returns the first failing pass's [`Diagnostic`].
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &Topology,
    ) -> Result<CompiledProgram, Diagnostic> {
        self.compile_with_report(circuit, topology)
            .map(|(compiled, _)| compiled)
    }

    /// Compiles one circuit and additionally returns the per-pass
    /// [`CompileReport`] (wall times, gate-count deltas).
    ///
    /// # Errors
    ///
    /// Returns the first failing pass's [`Diagnostic`].
    pub fn compile_with_report(
        &self,
        circuit: &Circuit,
        topology: &Topology,
    ) -> Result<(CompiledProgram, CompileReport), Diagnostic> {
        let mut manager = self.pass_manager();
        self.run_pipeline(&mut manager, circuit, topology)
    }

    /// Compiles many circuits over one device with one reused pass
    /// pipeline, so per-pipeline setup — in particular the schedule
    /// pass's gate-duration table, cached inside [`SchedulePass`] after
    /// its first run — happens once per batch instead of once per
    /// circuit. (The topology's all-pairs distance matrix is precomputed
    /// when the [`Topology`] is constructed, so it is shared by every
    /// compilation, batched or not.)
    ///
    /// Output is identical to calling [`Compiler::compile`] on each
    /// circuit in order (each compilation seeds its own RNG from
    /// [`CompileOptions::seed`]), so batching is a pure throughput
    /// optimization — the first step toward serving concurrent traffic.
    ///
    /// # Errors
    ///
    /// Stops at the first circuit that fails, returning its index and
    /// diagnostic.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
        topology: &Topology,
    ) -> Result<Vec<CompiledProgram>, BatchDiagnostic> {
        self.compile_batch_with_reports(circuits, topology)
            .map(|v| v.into_iter().map(|(program, _)| program).collect())
    }

    /// Like [`Compiler::compile_batch`] but also returns each circuit's
    /// [`CompileReport`].
    ///
    /// # Errors
    ///
    /// Stops at the first circuit that fails, returning its index and
    /// diagnostic.
    pub fn compile_batch_with_reports(
        &self,
        circuits: &[Circuit],
        topology: &Topology,
    ) -> Result<Vec<(CompiledProgram, CompileReport)>, BatchDiagnostic> {
        let mut manager = self.pass_manager();
        circuits
            .iter()
            .enumerate()
            .map(|(index, circuit)| {
                self.run_pipeline(&mut manager, circuit, topology)
                    .map_err(|diagnostic| BatchDiagnostic { index, diagnostic })
            })
            .collect()
    }

    /// Compiles many circuits concurrently on a [`std::thread::scope`]
    /// worker pool of up to `jobs` threads, returning results in **input
    /// order**.
    ///
    /// Output is byte-identical to [`Compiler::compile_batch`] (and thus
    /// to per-circuit [`Compiler::compile`]): compilation is deterministic
    /// per job — stochastic choices are seeded from
    /// [`CompileOptions::seed`], routing tie-breaks are by lowest qubit
    /// index — and each result lands in the slot of its input index, so
    /// worker scheduling cannot reorder or perturb anything.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index failing circuit's [`BatchDiagnostic`],
    /// exactly as the sequential batch would.
    pub fn compile_batch_parallel(
        &self,
        circuits: &[Circuit],
        topology: &Topology,
        jobs: usize,
    ) -> Result<Vec<CompiledProgram>, BatchDiagnostic> {
        self.compile_batch_parallel_with_cache(circuits, topology, jobs, None)
            .map(|outcome| {
                outcome
                    .results
                    .into_iter()
                    .map(|(program, _)| program)
                    .collect()
            })
    }

    /// Like [`Compiler::compile_batch_parallel`], but returns per-circuit
    /// [`CompileReport`]s plus an aggregate [`BatchReport`], and optionally
    /// consults (and fills) a shared [`CompilationCache`].
    ///
    /// A cache hit replays the stored program and report without running
    /// any pass; because compilation is deterministic, hits are
    /// indistinguishable from recompiling apart from the recorded
    /// wall times. Keep one cache across repeated batches (workload
    /// sweeps, ablations) to skip every previously-seen job.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index failing circuit's [`BatchDiagnostic`].
    /// Workers stop picking up new circuits once any failure is observed;
    /// circuits before the failing index are still compiled (they were
    /// claimed earlier), so the reported failure matches sequential order.
    pub fn compile_batch_parallel_with_cache(
        &self,
        circuits: &[Circuit],
        topology: &Topology,
        jobs: usize,
        cache: Option<&CompilationCache>,
    ) -> Result<BatchOutcome, BatchDiagnostic> {
        type Slot = Option<Result<(CompiledProgram, CompileReport, bool), Diagnostic>>;
        let started = Instant::now();
        let jobs = jobs.max(1).min(circuits.len().max(1));
        let slots: Vec<Mutex<Slot>> = circuits.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    // One pipeline per worker, reused across its circuits,
                    // so per-pipeline setup (the schedule pass's duration
                    // table) happens once per worker, not once per circuit.
                    let mut manager = self.pass_manager();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= circuits.len() {
                            break;
                        }
                        let outcome = self.compile_one_cached(
                            &mut manager,
                            &circuits[index],
                            topology,
                            cache,
                        );
                        if outcome.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[index].lock().expect("batch slot lock poisoned") = Some(outcome);
                    }
                });
            }
        });
        // Indices are claimed in order and every claimed circuit completes,
        // so the filled slots form a prefix and the first error found in
        // index order is the same failure sequential compilation reports.
        let mut results = Vec::with_capacity(circuits.len());
        let mut fresh = Vec::with_capacity(circuits.len());
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().expect("batch slot lock poisoned") {
                Some(Ok((program, report, was_hit))) => {
                    results.push((program, report));
                    fresh.push(!was_hit);
                }
                Some(Err(diagnostic)) => return Err(BatchDiagnostic { index, diagnostic }),
                None => {
                    unreachable!("unfilled batch slot {index} without a recorded failure")
                }
            }
        }
        let report = BatchReport::aggregate(&results, &fresh, jobs, started.elapsed());
        Ok(BatchOutcome { results, report })
    }

    fn compile_one_cached(
        &self,
        manager: &mut PassManager,
        circuit: &Circuit,
        topology: &Topology,
        cache: Option<&CompilationCache>,
    ) -> Result<(CompiledProgram, CompileReport, bool), Diagnostic> {
        let key = cache.map(|_| CompilationCache::key(circuit, topology, &self.options));
        if let (Some(cache), Some(key)) = (cache, key) {
            if let Some((program, report)) = cache.get(key) {
                return Ok((program, report, true));
            }
        }
        let (program, report) = self.run_pipeline(manager, circuit, topology)?;
        if let (Some(cache), Some(key)) = (cache, key) {
            cache.insert(key, (program.clone(), report.clone()));
        }
        Ok((program, report, false))
    }

    fn run_pipeline(
        &self,
        manager: &mut PassManager,
        circuit: &Circuit,
        topology: &Topology,
    ) -> Result<(CompiledProgram, CompileReport), Diagnostic> {
        let mut cx = CompileContext::new(circuit.clone(), topology, &self.options);
        let records = manager.run(&mut cx)?;
        let duration_us = cx
            .artifacts
            .get::<ProgramSchedule>()
            .map(|s| s.0.total_duration_us())
            .unwrap_or_default();
        // The last pass record already carries the final circuit's counts
        // and depth; rescan only when the pipeline ran no passes.
        let (counts, depth) = match records.last() {
            Some(last) => (last.gates_after, last.depth_after),
            None => (cx.circuit.counts(), cx.circuit.depth()),
        };
        let mut stats = CompileStats::new(cx.swap_count, counts, depth, duration_us);
        stats.mean_gather_distance = cx
            .artifacts
            .get::<RouterTrace>()
            .and_then(|trace| trace.0.mean_gather_distance());
        let initial_layout = cx.initial_layout.take().ok_or_else(|| {
            Diagnostic::validation("compile", "pipeline produced no initial layout")
        })?;
        let final_layout = cx.final_layout.take().ok_or_else(|| {
            Diagnostic::validation("compile", "pipeline produced no final layout")
        })?;
        let report = CompileReport::new(records, stats);
        let compiled = CompiledProgram {
            circuit: cx.circuit,
            initial_layout,
            final_layout,
            stats,
        };
        Ok((compiled, report))
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new(CompileOptions::default())
    }
}

/// A failure while compiling one circuit of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDiagnostic {
    /// Index of the failing circuit in the input slice.
    pub index: usize,
    /// The failure itself.
    pub diagnostic: Diagnostic,
}

impl fmt::Display for BatchDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit {} failed: {}", self.index, self.diagnostic)
    }
}

impl Error for BatchDiagnostic {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.diagnostic)
    }
}

/// Fluent configuration for a [`Compiler`].
///
/// Starts from [`CompileOptions::default`] (the paper's full Trios);
/// every setter overrides one knob. [`CompilerBuilder::config`] applies a
/// named [`PaperConfig`] wholesale.
#[derive(Debug, Clone, Default)]
pub struct CompilerBuilder {
    options: CompileOptions,
    registry: Option<StrategyRegistry>,
    decomposers: Option<DecomposerRegistry>,
}

impl PartialEq for CompilerBuilder {
    fn eq(&self, other: &Self) -> bool {
        let names = |r: &Option<StrategyRegistry>| -> Option<Vec<String>> {
            r.as_ref().map(|r| r.names().map(str::to_string).collect())
        };
        let dnames = |r: &Option<DecomposerRegistry>| -> Option<Vec<String>> {
            r.as_ref().map(|r| r.names().map(str::to_string).collect())
        };
        self.options == other.options
            && names(&self.registry) == names(&other.registry)
            && dnames(&self.decomposers) == dnames(&other.decomposers)
    }
}

impl CompilerBuilder {
    /// Applies a named paper configuration — its pipeline, Toffoli
    /// decomposition, and (stochastic) direction policy — leaving every
    /// other knob set on this builder untouched.
    pub fn config(mut self, config: PaperConfig) -> Self {
        let named = config.to_options(self.options.seed);
        self.options.pipeline = named.pipeline;
        self.options.decomposer = named.decomposer;
        self.options.direction = named.direction;
        self
    }

    /// Replaces all options at once.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Which pass structure to use (paper Fig. 2).
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.options.pipeline = pipeline;
        self
    }

    /// Routing strategy by registry name (`"baseline"`, `"trios"`,
    /// `"trios-lookahead"`, `"trios-noise"`), overriding the pipeline's
    /// default choice.
    pub fn router(mut self, router: impl Into<String>) -> Self {
        self.options.router = Some(router.into());
        self
    }

    /// Toffoli/CCZ decomposition strategy by registry name (`"standard"`,
    /// `"six"`, `"eight"`, `"tdepth"`, `"relative-phase"`, `"qutrit"`),
    /// overriding the connectivity-aware default.
    pub fn decomposer(mut self, name: impl Into<String>) -> Self {
        self.options.decomposer = Some(name.into());
        self
    }

    /// Initial placement strategy.
    pub fn mapping(mut self, mapping: InitialMapping) -> Self {
        self.options.mapping = mapping;
        self
    }

    /// Which endpoint moves when routing distant pairs.
    pub fn direction(mut self, direction: DirectionPolicy) -> Self {
        self.options.direction = direction;
        self
    }

    /// Path metric (hops or noise-aware edge weights).
    pub fn metric(mut self, metric: PathMetric) -> Self {
        self.options.metric = metric;
        self
    }

    /// Seed for stochastic choices.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Post-routing gate-level optimizations.
    pub fn optimize(mut self, optimize: OptimizeOptions) -> Self {
        self.options.optimize = optimize;
        self
    }

    /// Windowed-lookahead pair routing (`None` = committed shortest-path
    /// walks, as in the paper's experiments).
    pub fn lookahead(mut self, lookahead: Option<LookaheadConfig>) -> Self {
        self.options.lookahead = lookahead;
        self
    }

    /// Implement distance-2 CNOTs as 4-CNOT bridges instead of
    /// SWAP-then-CNOT.
    pub fn bridge(mut self, bridge: bool) -> Self {
        self.options.bridge = bridge;
        self
    }

    /// Whether to run the `validate` pass (hardware gate set + coupling
    /// legality as real, recoverable errors). On by default.
    pub fn validate(mut self, validate: bool) -> Self {
        self.options.validate = validate;
        self
    }

    /// Resolves routers in `registry` instead of the standard one, so
    /// custom [`RoutingStrategy`](trios_route::RoutingStrategy)
    /// registrations are selectable by name through every compile path.
    pub fn strategies(mut self, registry: StrategyRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Resolves decomposers in `registry` instead of the standard one, so
    /// custom [`DecompositionStrategy`](trios_passes::DecompositionStrategy)
    /// registrations are selectable by name through every compile path.
    pub fn decomposer_strategies(mut self, registry: DecomposerRegistry) -> Self {
        self.decomposers = Some(registry);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Compiler {
        Compiler::with_registries(
            self.options,
            self.registry.unwrap_or_else(StrategyRegistry::standard),
            self.decomposers
                .unwrap_or_else(DecomposerRegistry::standard),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_topology::johannesburg;

    #[test]
    fn builder_defaults_to_full_trios() {
        let compiler = Compiler::builder().build();
        assert_eq!(compiler.options().pipeline, Pipeline::Trios);
        assert_eq!(compiler.options().decomposer_name(), "standard");
        assert!(compiler.options().validate);
    }

    #[test]
    fn builder_setters_override_knobs() {
        let compiler = Compiler::builder()
            .pipeline(Pipeline::Baseline)
            .decomposer("eight")
            .direction(DirectionPolicy::MoveFirst)
            .seed(9)
            .bridge(true)
            .validate(false)
            .build();
        let o = compiler.options();
        assert_eq!(o.pipeline, Pipeline::Baseline);
        assert_eq!(o.decomposer_name(), "eight");
        assert_eq!(o.direction, DirectionPolicy::MoveFirst);
        assert_eq!(o.seed, 9);
        assert!(o.bridge);
        assert!(!o.validate);
    }

    #[test]
    fn config_preserves_seed() {
        let compiler = Compiler::builder()
            .seed(42)
            .config(PaperConfig::QiskitEight)
            .build();
        assert_eq!(compiler.options().seed, 42);
        assert_eq!(compiler.options().pipeline, Pipeline::Baseline);
        assert_eq!(compiler.options().decomposer_name(), "eight");
    }

    #[test]
    fn config_preserves_other_knobs_regardless_of_order() {
        let compiler = Compiler::builder()
            .validate(false)
            .bridge(true)
            .mapping(InitialMapping::Fixed(vec![0, 1, 2]))
            .config(PaperConfig::Trios)
            .build();
        let o = compiler.options();
        assert!(!o.validate, ".config must not reset validate");
        assert!(o.bridge, ".config must not reset bridge");
        assert_eq!(o.mapping, InitialMapping::Fixed(vec![0, 1, 2]));
        assert_eq!(o.pipeline, Pipeline::Trios);
    }

    #[test]
    fn named_routers_compile_and_match_pipeline_defaults() {
        let mut program = Circuit::new(4);
        program.h(0).ccx(0, 1, 2).cx(2, 3);
        let topo = johannesburg();
        // Named "trios"/"baseline" are byte-identical to the pipeline
        // defaults they alias.
        let trios_default = Compiler::builder().seed(3).build();
        let trios_named = Compiler::builder().seed(3).router("trios").build();
        assert_eq!(
            trios_default.compile(&program, &topo).unwrap(),
            trios_named.compile(&program, &topo).unwrap()
        );
        let base_default = Compiler::builder()
            .seed(3)
            .pipeline(Pipeline::Baseline)
            .build();
        let base_named = Compiler::builder().seed(3).router("baseline").build();
        assert_eq!(
            base_default.compile(&program, &topo).unwrap(),
            base_named.compile(&program, &topo).unwrap()
        );
        // The new strategies compile end to end and report their own pass
        // names.
        for (router, pass) in [
            ("trios-lookahead", "route-trios-lookahead"),
            ("trios-noise", "route-trios-noise"),
        ] {
            let compiler = Compiler::builder().seed(3).router(router).build();
            let (compiled, report) = compiler.compile_with_report(&program, &topo).unwrap();
            assert!(compiled.circuit.is_hardware_lowered(), "{router}");
            assert!(report.pass(pass).is_some(), "{router}");
        }
    }

    #[test]
    fn unknown_router_is_a_clean_diagnostic() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let compiler = Compiler::builder().router("sabre").build();
        let err = compiler.compile(&program, &johannesburg()).unwrap_err();
        assert!(matches!(err, Diagnostic::Validation { .. }));
        let text = err.to_string();
        assert!(text.contains("sabre"), "{text}");
        assert!(text.contains("trios-lookahead"), "{text}");
    }

    #[test]
    fn report_covers_every_stage_with_timings() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let compiler = Compiler::builder().seed(1).build();
        let (compiled, report) = compiler
            .compile_with_report(&program, &johannesburg())
            .unwrap();
        assert_eq!(
            report.pass_names().collect::<Vec<_>>(),
            [
                "initial-mapping",
                "route-trios",
                "lower",
                "optimize",
                "validate",
                "schedule"
            ]
        );
        // Routing grows the circuit; optimize never grows it.
        assert!(report.pass("route-trios").unwrap().total_delta() > 0);
        assert!(report.pass("optimize").unwrap().total_delta() <= 0);
        assert_eq!(report.stats, compiled.stats);
        assert!(report.total_time >= report.passes.iter().map(|p| p.wall_time).max().unwrap());
    }

    #[test]
    fn stats_carry_mean_gather_distance_for_trio_routing_only() {
        let mut program = Circuit::new(5);
        program.ccx(0, 2, 4);
        let topo = johannesburg();
        // Trio routing records gather events; the (6-17-3)-style distant
        // trivial placement guarantees a positive gather distance.
        let trios = Compiler::builder().seed(1).build();
        let compiled = trios.compile(&program, &topo).unwrap();
        let gather = compiled.stats.mean_gather_distance.unwrap();
        assert!(gather > 0.0, "distant trio must report a gather distance");
        // The decompose-first baseline records no trio events.
        let baseline = Compiler::builder()
            .seed(1)
            .pipeline(Pipeline::Baseline)
            .build();
        let compiled = baseline.compile(&program, &topo).unwrap();
        assert_eq!(compiled.stats.mean_gather_distance, None);
        // A Toffoli-free program reports None even under trio routing.
        let mut pairs_only = Circuit::new(3);
        pairs_only.h(0).cx(0, 2);
        let compiled = trios.compile(&pairs_only, &topo).unwrap();
        assert_eq!(compiled.stats.mean_gather_distance, None);
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let mut circuits = Vec::new();
        for width in [3, 4, 5, 6] {
            let mut c = Circuit::new(width);
            c.h(0).ccx(0, 1, 2).cx(width - 1, 0);
            circuits.push(c);
        }
        let topo = johannesburg();
        let compiler = Compiler::builder().seed(11).build();
        let sequential = compiler.compile_batch(&circuits, &topo).unwrap();
        for jobs in [1, 2, 4, 16] {
            let parallel = compiler
                .compile_batch_parallel(&circuits, &topo, jobs)
                .unwrap();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_batch_reports_and_caches() {
        let mut circuits = Vec::new();
        for _ in 0..3 {
            let mut c = Circuit::new(3);
            c.ccx(0, 1, 2);
            circuits.push(c); // 3 identical jobs: 1 miss + 2 hits
        }
        let topo = johannesburg();
        let compiler = Compiler::builder().seed(2).build();
        let cache = CompilationCache::new(16);
        let outcome = compiler
            .compile_batch_parallel_with_cache(&circuits, &topo, 1, Some(&cache))
            .unwrap();
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.report.circuits, 3);
        assert_eq!(outcome.report.cache_hits, 2);
        assert_eq!(outcome.report.cache_misses, 1);
        assert_eq!(outcome.report.pass("route-trios").unwrap().runs, 1);
        // Hits replay the exact same result.
        assert_eq!(outcome.results[0], outcome.results[1]);
        assert_eq!(outcome.results[0], outcome.results[2]);
        // A second, warm batch over the same jobs is all hits.
        let warm = compiler
            .compile_batch_parallel_with_cache(&circuits, &topo, 2, Some(&cache))
            .unwrap();
        assert_eq!(warm.report.cache_hits, 3);
        assert_eq!(warm.report.cache_misses, 0);
        assert_eq!(warm.results, outcome.results);
    }

    #[test]
    fn parallel_batch_error_is_lowest_failing_index() {
        let ok = Circuit::new(3);
        let too_wide = Circuit::new(25);
        let batch = vec![ok.clone(), too_wide.clone(), ok, too_wide];
        let compiler = Compiler::default();
        for jobs in [1, 2, 4] {
            let err = compiler
                .compile_batch_parallel(&batch, &johannesburg(), jobs)
                .unwrap_err();
            assert_eq!(err.index, 1, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_batch_handles_empty_and_zero_jobs() {
        let compiler = Compiler::default();
        let topo = johannesburg();
        assert!(compiler
            .compile_batch_parallel(&[], &topo, 4)
            .unwrap()
            .is_empty());
        // jobs = 0 is clamped to one worker rather than hanging.
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let out = compiler
            .compile_batch_parallel(std::slice::from_ref(&c), &topo, 0)
            .unwrap();
        assert_eq!(out[0], compiler.compile(&c, &topo).unwrap());
    }

    #[test]
    fn batch_error_reports_failing_index() {
        let ok = Circuit::new(3);
        let too_wide = Circuit::new(25);
        let compiler = Compiler::default();
        let err = compiler
            .compile_batch(&[ok, too_wide], &johannesburg())
            .unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.diagnostic, Diagnostic::Routing { .. }));
        assert!(err.to_string().contains("circuit 1"));
    }
}
