//! Compilation options and the paper's named compiler configurations.

use trios_passes::OptimizeOptions;
use trios_route::{DirectionPolicy, InitialMapping, LookaheadConfig, PathMetric};

/// Which pass structure to use (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pipeline {
    /// Conventional: decompose everything to 1q/2q gates **before**
    /// mapping and routing (Fig. 2a). The paper's Qiskit-style baseline.
    Baseline,
    /// Orchestrated Trios: stop decomposition at the Toffoli, route trios
    /// as units, then decompose placement-aware (Fig. 2b).
    #[default]
    Trios,
}

/// Everything a [`compile`](crate::compile) call needs to know.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// Pass structure.
    pub pipeline: Pipeline,
    /// Routing strategy, by registry name (`"baseline"`, `"trios"`,
    /// `"trios-lookahead"`, `"trios-noise"`, or a custom registration).
    /// `None` derives the strategy from [`CompileOptions::pipeline`]
    /// (`Baseline` → `"baseline"`, `Trios` → `"trios"`); an explicit name
    /// overrides the pipeline's choice.
    pub router: Option<String>,
    /// Decomposition strategy, by registry name (`"standard"`, `"six"`,
    /// `"eight"`, `"tdepth"`, `"relative-phase"`, `"qutrit"`, or a custom
    /// registration). For [`Pipeline::Baseline`] it is applied up-front
    /// with canonical qubit roles; for [`Pipeline::Trios`] it is the
    /// placement-aware second pass. `None` means `"standard"` — the
    /// paper's connectivity-aware 6/8-CNOT split.
    pub decomposer: Option<String>,
    /// Initial placement strategy.
    pub mapping: InitialMapping,
    /// Which endpoint moves when routing distant pairs.
    pub direction: DirectionPolicy,
    /// Path metric (hops or noise-aware edge weights).
    pub metric: PathMetric,
    /// Seed for stochastic choices.
    pub seed: u64,
    /// Post-routing gate-level optimizations.
    pub optimize: OptimizeOptions,
    /// Windowed-lookahead pair routing (paper §3's comparator); `None`
    /// uses committed shortest-path walks as in the paper's experiments.
    pub lookahead: Option<LookaheadConfig>,
    /// Implement distance-2 CNOTs as 4-CNOT bridges (layout unchanged)
    /// instead of SWAP-then-CNOT. Off in the paper's experiments.
    pub bridge: bool,
    /// Run the `validate` pass: check the hardware gate set and coupling
    /// legality of the output as real, recoverable errors (the original
    /// implementation only `debug_assert!`ed these, so release builds
    /// silently trusted routed-by-construction). On by default.
    pub validate: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            pipeline: Pipeline::Trios,
            router: None,
            decomposer: None,
            mapping: InitialMapping::Trivial,
            direction: DirectionPolicy::Stochastic,
            metric: PathMetric::Hops,
            seed: 0,
            optimize: OptimizeOptions::default(),
            lookahead: None,
            bridge: false,
            validate: true,
        }
    }
}

impl CompileOptions {
    /// Default options with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        CompileOptions {
            seed,
            ..CompileOptions::default()
        }
    }

    /// The decomposition-strategy registry name this compilation uses:
    /// the explicit [`CompileOptions::decomposer`] when set, otherwise
    /// `"standard"`.
    pub fn decomposer_name(&self) -> &str {
        self.decomposer.as_deref().unwrap_or("standard")
    }

    /// The routing-strategy registry name this compilation uses: the
    /// explicit [`CompileOptions::router`] when set, otherwise the name
    /// the [`Pipeline`] implies.
    pub fn router_name(&self) -> &str {
        match &self.router {
            Some(name) => name,
            None => match self.pipeline {
                Pipeline::Baseline => "baseline",
                Pipeline::Trios => "trios",
            },
        }
    }
}

/// The four compiler configurations of the paper's Toffoli experiments
/// (Figures 6 and 7), plus the full Trios used in the benchmark studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperConfig {
    /// "Qiskit (baseline)": decompose-first with the 6-CNOT Toffoli.
    QiskitBaseline,
    /// "Qiskit (8-CNOT Toffoli)": decompose-first with the 8-CNOT form.
    QiskitEight,
    /// "Trios (6-CNOT Toffoli)": trio routing, forced 6-CNOT second pass.
    TriosSix,
    /// "Trios (8-CNOT Toffoli)": trio routing, forced 8-CNOT second pass.
    TriosEight,
    /// Full Trios: trio routing with connectivity-aware decomposition
    /// (what the benchmark figures call simply "Trios").
    Trios,
}

impl PaperConfig {
    /// The four Figure 6/7 series, in the paper's legend order.
    pub const FIG6: [PaperConfig; 4] = [
        PaperConfig::QiskitBaseline,
        PaperConfig::QiskitEight,
        PaperConfig::TriosSix,
        PaperConfig::TriosEight,
    ];

    /// The legend label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PaperConfig::QiskitBaseline => "Qiskit (baseline)",
            PaperConfig::QiskitEight => "Qiskit (8-CNOT Toffoli)",
            PaperConfig::TriosSix => "Trios (6-CNOT Toffoli)",
            PaperConfig::TriosEight => "Trios (8-CNOT Toffoli)",
            PaperConfig::Trios => "Trios",
        }
    }

    /// Expands to full [`CompileOptions`]. The direction policy is
    /// stochastic — the paper's Qiskit baseline uses a stochastic routing
    /// policy (§5.2), and §3's "even chance" of separating just-gathered
    /// qubits is central to its motivation — but seeded, so every figure
    /// is exactly reproducible.
    pub fn to_options(self, seed: u64) -> CompileOptions {
        let (pipeline, decomposer) = match self {
            PaperConfig::QiskitBaseline => (Pipeline::Baseline, Some("six")),
            PaperConfig::QiskitEight => (Pipeline::Baseline, Some("eight")),
            PaperConfig::TriosSix => (Pipeline::Trios, Some("six")),
            PaperConfig::TriosEight => (Pipeline::Trios, Some("eight")),
            PaperConfig::Trios => (Pipeline::Trios, None),
        };
        CompileOptions {
            pipeline,
            decomposer: decomposer.map(String::from),
            direction: DirectionPolicy::Stochastic,
            seed,
            ..CompileOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_trios() {
        let o = CompileOptions::default();
        assert_eq!(o.pipeline, Pipeline::Trios);
        assert_eq!(o.decomposer, None);
        assert_eq!(o.decomposer_name(), "standard");
    }

    #[test]
    fn paper_configs_expand_correctly() {
        let o = PaperConfig::QiskitBaseline.to_options(1);
        assert_eq!(o.pipeline, Pipeline::Baseline);
        assert_eq!(o.decomposer_name(), "six");
        let o = PaperConfig::TriosEight.to_options(1);
        assert_eq!(o.pipeline, Pipeline::Trios);
        assert_eq!(o.decomposer_name(), "eight");
        assert_eq!(
            PaperConfig::Trios.to_options(1).decomposer_name(),
            "standard"
        );
        assert_eq!(PaperConfig::FIG6.len(), 4);
    }

    #[test]
    fn router_name_follows_pipeline_unless_overridden() {
        let mut o = CompileOptions::default();
        assert_eq!(o.router_name(), "trios");
        o.pipeline = Pipeline::Baseline;
        assert_eq!(o.router_name(), "baseline");
        o.router = Some("trios-noise".into());
        assert_eq!(o.router_name(), "trios-noise", "explicit name wins");
        for config in PaperConfig::FIG6 {
            assert!(config.to_options(0).router.is_none());
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(PaperConfig::QiskitBaseline.label(), "Qiskit (baseline)");
        assert_eq!(PaperConfig::TriosEight.label(), "Trios (8-CNOT Toffoli)");
    }
}
