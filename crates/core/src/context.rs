//! [`CompileContext`]: the mutable state a pass pipeline threads through
//! its passes, including a typed artifact map for intermediate results.

use crate::CompileOptions;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use trios_ir::Circuit;
use trios_route::Layout;
use trios_schedule::Schedule;
use trios_topology::Topology;

/// An intermediate result a pass publishes for later passes and for the
/// caller to inspect after compilation.
///
/// Artifacts are keyed by type: publishing a second value of the same type
/// replaces the first. The marker trait keeps the artifact map closed over
/// deliberately published types instead of arbitrary `Any` values.
pub trait Artifact: Any + fmt::Debug {}

/// The circuit as it left routing: physical qubits, explicit SWAPs, not
/// yet lowered to the hardware gate set.
#[derive(Debug, Clone, PartialEq)]
pub struct PostRouteCircuit(pub Circuit);

impl Artifact for PostRouteCircuit {}

/// The trio router's per-Toffoli trace (empty for the baseline pair
/// router): gather distances, SWAPs spent, and final shapes, in program
/// order — the data behind the paper's Figure 6/7 x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapTrace(pub Vec<trios_route::TrioEvent>);

impl Artifact for SwapTrace {}

/// The routing strategy's full [`trios_route::RoutingTrace`]: which
/// strategy ran plus its SWAP/bridge/lookahead counters and trio events.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterTrace(pub trios_route::RoutingTrace);

impl Artifact for RouterTrace {}

/// The ASAP schedule of the final circuit.
#[derive(Debug, Clone)]
pub struct ProgramSchedule(pub Schedule);

impl Artifact for ProgramSchedule {}

/// Typed storage for pass-published intermediate results.
#[derive(Default)]
pub struct ArtifactMap {
    entries: HashMap<TypeId, Box<dyn Any>>,
}

impl ArtifactMap {
    /// Publishes `artifact`, replacing any previous value of the same type.
    pub fn insert<T: Artifact>(&mut self, artifact: T) {
        self.entries.insert(TypeId::of::<T>(), Box::new(artifact));
    }

    /// The published artifact of type `T`, if any pass produced one.
    pub fn get<T: Artifact>(&self) -> Option<&T> {
        self.entries
            .get(&TypeId::of::<T>())
            .and_then(|boxed| boxed.downcast_ref())
    }

    /// Removes and returns the artifact of type `T`.
    pub fn take<T: Artifact>(&mut self) -> Option<T> {
        self.entries
            .remove(&TypeId::of::<T>())
            .and_then(|boxed| boxed.downcast().ok())
            .map(|boxed| *boxed)
    }

    /// Number of published artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no artifacts have been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for ArtifactMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArtifactMap({} artifacts)", self.entries.len())
    }
}

/// Everything a [`Pass`](crate::Pass) reads and writes while compiling one
/// circuit for one device.
#[derive(Debug)]
pub struct CompileContext<'a> {
    /// The device being compiled for.
    pub topology: &'a Topology,
    /// The configuration of this compilation.
    pub options: &'a CompileOptions,
    /// The working circuit; passes rewrite it in place.
    pub circuit: Circuit,
    /// The initial placement chosen by the mapping pass (logical →
    /// physical), before routing permutes it.
    pub layout: Option<Layout>,
    /// Where each logical qubit started, fixed by the routing pass.
    pub initial_layout: Option<Layout>,
    /// Where each logical qubit ended after all routing SWAPs.
    pub final_layout: Option<Layout>,
    /// SWAPs inserted by routing.
    pub swap_count: usize,
    /// Intermediate results published by passes.
    pub artifacts: ArtifactMap,
}

impl<'a> CompileContext<'a> {
    /// A fresh context for compiling `circuit` on `topology` under
    /// `options`.
    pub fn new(circuit: Circuit, topology: &'a Topology, options: &'a CompileOptions) -> Self {
        CompileContext {
            topology,
            options,
            circuit,
            layout: None,
            initial_layout: None,
            final_layout: None,
            swap_count: 0,
            artifacts: ArtifactMap::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_map_is_typed() {
        let mut map = ArtifactMap::default();
        assert!(map.is_empty());
        map.insert(SwapTrace(Vec::new()));
        map.insert(PostRouteCircuit(Circuit::new(2)));
        assert_eq!(map.len(), 2);
        assert!(map.get::<SwapTrace>().unwrap().0.is_empty());
        assert_eq!(map.get::<PostRouteCircuit>().unwrap().0.num_qubits(), 2);
        let taken = map.take::<SwapTrace>().unwrap();
        assert!(taken.0.is_empty());
        assert!(map.get::<SwapTrace>().is_none());
    }

    #[test]
    fn inserting_twice_replaces() {
        let mut map = ArtifactMap::default();
        map.insert(PostRouteCircuit(Circuit::new(2)));
        map.insert(PostRouteCircuit(Circuit::new(5)));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get::<PostRouteCircuit>().unwrap().0.num_qubits(), 5);
    }
}
