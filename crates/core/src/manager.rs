//! [`PassManager`]: an ordered, instrumented sequence of passes.

use crate::context::CompileContext;
use crate::pass::{
    DecomposeToffolisPass, InitialMappingPass, LowerPass, OptimizePass, Pass, RoutePass,
    SchedulePass, ValidatePass,
};
use crate::report::PassRecord;
use crate::{CompileOptions, Diagnostic, Pipeline};
use std::fmt;
use std::time::Instant;
use trios_passes::DecomposerRegistry;
use trios_route::StrategyRegistry;

/// An ordered pipeline of [`Pass`]es with per-pass instrumentation.
///
/// The standard pipelines of the paper's Figure 2 come from
/// [`PassManager::for_options`]; custom pipelines (ablations, new stage
/// orders) are assembled with [`PassManager::push`].
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// The standard pipeline for `options` (paper Fig. 2):
    ///
    /// * *Baseline*: initial-mapping → decompose-toffolis → route-pairs →
    ///   lower → optimize → \[validate\] → schedule
    /// * *Trios*: initial-mapping → route-trios (with inline mapping-aware
    ///   decomposition) → lower → optimize → \[validate\] → schedule
    ///
    /// The routing stage is the strategy [`CompileOptions::router_name`]
    /// resolves to in the standard [`StrategyRegistry`]; the up-front
    /// `decompose-toffolis` pass is inserted exactly when that strategy
    /// cannot route three-qubit gates itself (only `"baseline"` among the
    /// built-ins). The `validate` pass is included iff
    /// [`CompileOptions::validate`] is set (it is by default).
    ///
    /// [`StrategyRegistry`]: trios_route::StrategyRegistry
    pub fn for_options(options: &CompileOptions) -> Self {
        PassManager::for_options_with_registry(options, &StrategyRegistry::standard())
    }

    /// [`PassManager::for_options`] resolving the router in a
    /// caller-supplied `registry` instead of the standard one — how
    /// custom [`RoutingStrategy`] implementations enter the full
    /// pipeline (and, through
    /// [`Compiler::strategies`](crate::CompilerBuilder::strategies), the
    /// batch compiler and the fuzz harness).
    ///
    /// [`RoutingStrategy`]: trios_route::RoutingStrategy
    pub fn for_options_with_registry(
        options: &CompileOptions,
        registry: &StrategyRegistry,
    ) -> Self {
        PassManager::for_options_with_registries(options, registry, &DecomposerRegistry::standard())
    }

    /// [`PassManager::for_options`] resolving both the router and the
    /// decomposer in caller-supplied registries — the full injection
    /// point when custom [`DecompositionStrategy`] implementations are in
    /// play as well.
    ///
    /// [`DecompositionStrategy`]: trios_passes::DecompositionStrategy
    pub fn for_options_with_registries(
        options: &CompileOptions,
        registry: &StrategyRegistry,
        decomposers: &DecomposerRegistry,
    ) -> Self {
        let router = options.router_name();
        // Unknown names fall back to the pipeline's ordering here; the
        // route pass itself reports them as a proper diagnostic.
        let decompose_first = match registry.get(router) {
            Some(strategy) => !strategy.handles_three_qubit_gates(),
            None => options.pipeline == Pipeline::Baseline,
        };
        let mut manager = PassManager::new();
        manager.push(InitialMappingPass);
        if decompose_first {
            manager.push(DecomposeToffolisPass::with_registry(
                options.decomposer_name(),
                decomposers.clone(),
            ));
        }
        manager.push(
            RoutePass::with_registry(router, registry.clone())
                .with_decomposers(decomposers.clone()),
        );
        manager.push(LowerPass);
        manager.push(OptimizePass);
        if options.validate {
            manager.push(ValidatePass);
        }
        manager.push(SchedulePass::new());
        manager
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// `true` when the pipeline has no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The pass names, in execution order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over `cx` in order, recording wall time and
    /// gate-count deltas for each.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first failing pass's [`Diagnostic`].
    pub fn run(&mut self, cx: &mut CompileContext<'_>) -> Result<Vec<PassRecord>, Diagnostic> {
        let mut records = Vec::with_capacity(self.passes.len());
        // Each pass's exit counts are the next pass's entry counts, so
        // the circuit is scanned once per pass boundary, not twice.
        let mut gates = cx.circuit.counts();
        let mut depth = cx.circuit.depth();
        for pass in &mut self.passes {
            let (gates_before, depth_before) = (gates, depth);
            let start = Instant::now();
            pass.run(cx)?;
            let wall_time = start.elapsed();
            gates = cx.circuit.counts();
            depth = cx.circuit.depth();
            records.push(PassRecord {
                pass: pass.name(),
                wall_time,
                gates_before,
                gates_after: gates,
                depth_before,
                depth_after: depth,
            });
        }
        Ok(records)
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trios_pipeline_has_expected_stages() {
        let manager = PassManager::for_options(&CompileOptions::default());
        assert_eq!(
            manager.names(),
            [
                "initial-mapping",
                "route-trios",
                "lower",
                "optimize",
                "validate",
                "schedule"
            ]
        );
    }

    #[test]
    fn baseline_pipeline_decomposes_up_front() {
        let options = CompileOptions {
            pipeline: Pipeline::Baseline,
            ..CompileOptions::default()
        };
        let names = PassManager::for_options(&options).names();
        assert_eq!(names[1], "decompose-toffolis");
        assert_eq!(names[2], "route-pairs");
    }

    #[test]
    fn named_routers_select_their_stage() {
        // A trios-family router keeps Toffolis for the router even when
        // the pipeline field says Baseline: the explicit name wins.
        let options = CompileOptions {
            pipeline: Pipeline::Baseline,
            router: Some("trios-lookahead".into()),
            ..CompileOptions::default()
        };
        let names = PassManager::for_options(&options).names();
        assert!(!names.contains(&"decompose-toffolis"), "{names:?}");
        assert_eq!(names[1], "route-trios-lookahead");

        // And the baseline strategy forces up-front decomposition even
        // under the Trios pipeline.
        let options = CompileOptions {
            pipeline: Pipeline::Trios,
            router: Some("baseline".into()),
            ..CompileOptions::default()
        };
        let names = PassManager::for_options(&options).names();
        assert_eq!(names[1], "decompose-toffolis");
        assert_eq!(names[2], "route-pairs");

        let options = CompileOptions {
            router: Some("trios-noise".into()),
            ..CompileOptions::default()
        };
        assert_eq!(
            PassManager::for_options(&options).names()[1],
            "route-trios-noise"
        );
    }

    #[test]
    fn validate_pass_is_optional() {
        let options = CompileOptions {
            validate: false,
            ..CompileOptions::default()
        };
        let names = PassManager::for_options(&options).names();
        assert!(!names.contains(&"validate"));
    }

    #[test]
    fn pass_manager_crosses_thread_boundaries() {
        // `Pass: Send + Sync` must make whole pipelines shareable with the
        // batch worker threads; this is a compile-time guarantee.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PassManager>();
        assert_send_sync::<Box<dyn Pass>>();

        // And it must hold dynamically: run a pipeline on another thread.
        let options = CompileOptions::default();
        let manager = PassManager::for_options(&options);
        let names = std::thread::spawn(move || manager.names()).join().unwrap();
        assert_eq!(names.first(), Some(&"initial-mapping"));
    }

    #[test]
    fn custom_strategy_routes_through_a_custom_registry() {
        use crate::CompileContext;
        use trios_route::{
            Layout, RouteError, RoutedCircuit, RouterOptions, RoutingEngine, RoutingStrategy,
            RoutingTrace,
        };
        use trios_topology::{johannesburg, Topology};

        // A custom strategy, registered under its own name and selected
        // through RoutePass::with_registry — the documented injection
        // point for strategies outside the standard registry.
        struct ReverseTrios;
        impl RoutingStrategy for ReverseTrios {
            fn name(&self) -> &str {
                "reverse-trios"
            }
            fn route(
                &self,
                circuit: &trios_ir::Circuit,
                topology: &Topology,
                layout: Layout,
                options: &RouterOptions,
                trace: &mut RoutingTrace,
            ) -> Result<RoutedCircuit, RouteError> {
                trace.strategy = Some(self.name().to_string());
                // Drive the shared engine directly, as the README's
                // custom-strategy example does.
                RoutingEngine::new(topology, layout, options, circuit, trace)?.run(circuit, true)
            }
        }

        let mut registry = StrategyRegistry::standard();
        registry.register("reverse-trios", || Box::new(ReverseTrios));

        let mut manager = PassManager::new();
        manager
            .push(InitialMappingPass)
            .push(RoutePass::with_registry("reverse-trios", registry))
            .push(LowerPass)
            .push(ValidatePass);

        let mut circuit = trios_ir::Circuit::new(3);
        circuit.ccx(0, 1, 2);
        let topo = johannesburg();
        let options = CompileOptions::default();
        let mut cx = CompileContext::new(circuit, &topo, &options);
        let records = manager.run(&mut cx).unwrap();
        assert_eq!(records[1].pass, "route");
        assert!(cx.circuit.is_hardware_lowered());
        let trace = cx.artifacts.get::<crate::RouterTrace>().unwrap();
        assert_eq!(trace.0.strategy.as_deref(), Some("reverse-trios"));
    }

    #[test]
    fn custom_pipelines_compose() {
        let mut manager = PassManager::new();
        assert!(manager.is_empty());
        manager.push(InitialMappingPass).push(LowerPass);
        assert_eq!(manager.len(), 2);
        assert_eq!(manager.names(), ["initial-mapping", "lower"]);
        assert!(format!("{manager:?}").contains("initial-mapping"));
    }
}
