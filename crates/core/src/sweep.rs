//! The evaluation sweep subsystem: run a `(benchmark × device × router ×
//! decomposer × calibration)` grid through the parallel batch compiler
//! and the §2.6 analytic success model, producing the paper's
//! baseline-vs-trios success-probability comparison (Figures 6, 8, 9,
//! and 11) — and its router × decomposer extension — as one
//! machine-checkable [`SweepReport`].
//!
//! A [`SweepSpec`] names the grid; [`run_sweep`] expands it into jobs,
//! executes them over [`Compiler::compile_batch_parallel_with_cache`]
//! with one [`CompilationCache`] warm across every cell, estimates each
//! compiled program's success probability (optionally with a crosstalk
//! model), optionally cross-validates the analytic model with a Monte
//! Carlo trajectory simulation on small cells, and collects everything —
//! per-cell [`SweepCell`] breakdowns, trios/baseline ratio rows, and
//! per-router geometric means (the paper's headline ~2× geomean claim) —
//! into a [`SweepReport`].
//!
//! Results are deterministic: cells are keyed and sorted by their grid
//! coordinates, compilation is seeded, and Monte Carlo seeds derive from
//! the sorted cell index, so a sweep's (timing-normalized) report is
//! byte-identical regardless of the worker count.
//!
//! With the `serde` feature the report serializes to the documented JSON
//! schema ([`SweepReport::to_json`]) and parses back
//! ([`SweepReport::from_json`]):
//!
//! ```json
//! {
//!   "benchmarks": ["..."], "devices": ["..."], "routers": ["..."],
//!   "decomposers": ["..."], "calibrations": ["..."], "crosstalk": "ignore",
//!   "seed": 0, "shots": null,
//!   "cells": [ { "benchmark": "...", "device": "...", "router": "...",
//!                "decomposer": "standard",
//!                "calibration": "...", "probability": 0.5, "p_gates": 0.6,
//!                "p_readout": 0.9, "p_coherence": 0.9, "duration_us": 1.0,
//!                "two_qubit_gates": 0, "one_qubit_gates": 0,
//!                "measurements": 0, "swap_count": 0, "depth": 0,
//!                "gates_in": 0, "two_qubit_in": 0, "two_qubit_delta": 0,
//!                "depth_delta": 0, "mean_gather_distance": null,
//!                "compile_time_s": 0.0,
//!                "monte_carlo": { "shots": 100, "mean_fidelity": 1.0,
//!                                 "std_error": 0.0,
//!                                 "error_free_fraction": 1.0,
//!                                 "analytic_error_free": 1.0,
//!                                 "bound_ok": true } } ],
//!   "ratios": [ { "benchmark": "...", "device": "...",
//!                 "calibration": "...", "router": "...",
//!                 "decomposer": "standard",
//!                 "baseline_probability": 0.25, "probability": 0.5,
//!                 "ratio": 2.0 } ],
//!   "geomeans": [ { "router": "trios", "decomposer": "standard",
//!                   "geomean": 2.0, "cells": 8 } ],
//!   "cache_hits": 0, "cache_misses": 0, "wall_time_s": 0.0
//! }
//! ```

use crate::cache::CompilationCache;
use crate::{Compiler, Diagnostic};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::time::Instant;
use trios_ir::Circuit;
use trios_noise::{
    analytic_error_free_probability, estimate_success_with_crosstalk, monte_carlo_fidelity,
    Calibration, CrosstalkPolicy, MonteCarloOptions,
};
use trios_passes::DecomposerRegistry;
use trios_route::{InitialMapping, StrategyRegistry};
use trios_topology::Topology;

/// Widest compiled circuit the Monte Carlo cross-check simulates; cells on
/// larger devices record no [`SweepMonteCarlo`] (dense trajectory
/// simulation of every shot would dominate the sweep).
pub const MONTE_CARLO_MAX_QUBITS: usize = 8;

/// One benchmark of a sweep: a named circuit, optionally pinned to an
/// explicit initial placement (the single-Toffoli experiments of Figures
/// 6–8 fix their triplet "to force routing to occur").
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBenchmark {
    /// Display name (also the JSON key; must be unique within a spec).
    pub name: String,
    /// The circuit to compile.
    pub circuit: Circuit,
    /// Per-benchmark initial-mapping override; `None` uses the compiler's
    /// default (trivial) placement.
    pub mapping: Option<InitialMapping>,
}

impl SweepBenchmark {
    /// A benchmark compiled exactly as given.
    pub fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        SweepBenchmark {
            name: name.into(),
            circuit,
            mapping: None,
        }
    }

    /// A benchmark with every qubit measured (the paper's benchmark
    /// studies measure all data qubits before estimating success).
    pub fn measured(name: impl Into<String>, circuit: Circuit) -> Self {
        let measured =
            crate::with_measurements(&circuit, &(0..circuit.num_qubits()).collect::<Vec<_>>());
        SweepBenchmark::new(name, measured)
    }

    /// A benchmark pinned to the explicit placement `mapping[l] = p` (the
    /// Figure 6/8 single-Toffoli protocol).
    pub fn pinned(name: impl Into<String>, circuit: Circuit, mapping: Vec<usize>) -> Self {
        SweepBenchmark {
            name: name.into(),
            circuit,
            mapping: Some(InitialMapping::Fixed(mapping)),
        }
    }
}

/// The grid a sweep runs: every benchmark × device × router ×
/// calibration combination becomes one [`SweepCell`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The circuits to compile.
    pub benchmarks: Vec<SweepBenchmark>,
    /// Named devices to compile onto.
    pub devices: Vec<(String, Topology)>,
    /// Routing strategies by registry name (`"baseline"`, `"trios"`, …).
    /// Ratio rows are emitted relative to `"baseline"` when present.
    pub routers: Vec<String>,
    /// Toffoli/CCZ decomposers by registry name (`"standard"`, `"six"`,
    /// `"tdepth"`, …). Cost-model-only strategies (`"qutrit"`) compile
    /// with the standard lowering and re-price each routed trio with
    /// their [`LoweringCost`](trios_passes::LoweringCost).
    pub decomposers: Vec<String>,
    /// Named calibrations to estimate under (calibration does not affect
    /// compilation, so cells differing only here share one compile).
    pub calibrations: Vec<(String, Calibration)>,
    /// How crosstalk enters the success estimates.
    pub crosstalk: CrosstalkPolicy,
    /// Seed for stochastic routing (and the base of Monte Carlo seeds).
    pub seed: u64,
    /// Worker threads for batch compilation; `0` = one per available core.
    /// Results are independent of this knob.
    pub jobs: usize,
    /// Compilation-cache capacity in entries (`0` disables; the cache is
    /// shared across every cell of the sweep).
    pub cache_size: usize,
    /// `Some(shots)` runs the Monte Carlo cross-check with that many
    /// trajectories on every cell whose compiled circuit has at most
    /// [`MONTE_CARLO_MAX_QUBITS`] qubits. Must be nonzero.
    pub monte_carlo_shots: Option<usize>,
}

impl SweepSpec {
    /// An empty spec with the default knobs (crosstalk ignored, seed 0,
    /// auto worker count, cache capacity 256, no Monte Carlo).
    pub fn new() -> Self {
        SweepSpec {
            benchmarks: Vec::new(),
            devices: Vec::new(),
            routers: Vec::new(),
            decomposers: vec!["standard".into()],
            calibrations: Vec::new(),
            crosstalk: CrosstalkPolicy::Ignore,
            seed: 0,
            jobs: 0,
            cache_size: 256,
            monte_carlo_shots: None,
        }
    }
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new()
    }
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A grid dimension is empty.
    EmptyDimension {
        /// Which dimension (`"benchmarks"`, `"devices"`, …).
        dimension: &'static str,
    },
    /// Two entries of one dimension share a name.
    DuplicateName {
        /// Which dimension.
        dimension: &'static str,
        /// The offending name.
        name: String,
    },
    /// A router name is not in the standard registry.
    UnknownRouter {
        /// The unknown name.
        router: String,
        /// The registered names, comma-separated.
        registered: String,
    },
    /// A decomposer name is not in the standard registry.
    UnknownDecomposer {
        /// The unknown name.
        decomposer: String,
        /// The registered names, comma-separated.
        registered: String,
    },
    /// `monte_carlo_shots == Some(0)`.
    ZeroShots,
    /// A cell failed to compile.
    Compile {
        /// The failing benchmark.
        benchmark: String,
        /// The device it was compiled for.
        device: String,
        /// The router in use.
        router: String,
        /// The underlying diagnostic (boxed: diagnostics are large and
        /// the happy path should not pay for them).
        diagnostic: Box<Diagnostic>,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyDimension { dimension } => {
                write!(f, "sweep needs at least one entry in '{dimension}'")
            }
            SweepError::DuplicateName { dimension, name } => {
                write!(f, "duplicate {dimension} name '{name}' in sweep spec")
            }
            SweepError::UnknownRouter { router, registered } => {
                write!(f, "unknown router '{router}' (registered: {registered})")
            }
            SweepError::UnknownDecomposer {
                decomposer,
                registered,
            } => {
                write!(
                    f,
                    "unknown decomposer '{decomposer}' (registered: {registered})"
                )
            }
            SweepError::ZeroShots => {
                write!(f, "monte_carlo_shots must be nonzero when set")
            }
            SweepError::Compile {
                benchmark,
                device,
                router,
                diagnostic,
            } => write!(
                f,
                "compiling '{benchmark}' for '{device}' with router '{router}' failed: {diagnostic}"
            ),
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Compile { diagnostic, .. } => Some(diagnostic.as_ref()),
            _ => None,
        }
    }
}

/// The Monte Carlo cross-check of one cell: trajectory statistics next to
/// the analytic error-free product they validate.
///
/// The validated quantity is
/// [`analytic_error_free_probability`](trios_noise::analytic_error_free_probability)
/// — the exact probability that a trajectory injects no error, under the
/// same per-gate and **per-qubit** decoherence channels the sampler uses.
/// Error-free trajectories replay the ideal circuit (fidelity 1), so mean
/// fidelity upper-bounds this product up to binomial sampling error; that
/// is the invariant [`SweepMonteCarlo::bound_ok`] records. The §2.6
/// whole-program product `p_gates · p_coherence` sits on the cell itself
/// and is looser in the gate-error-dominated regime but, charging
/// decoherence once rather than per qubit, can exceed the measured
/// fidelity on wide idle-heavy cells — which is exactly the model
/// approximation the cross-check makes visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepMonteCarlo {
    /// Trajectories sampled.
    pub shots: usize,
    /// Mean fidelity with the noiseless output.
    pub mean_fidelity: f64,
    /// Standard error of the mean fidelity.
    pub std_error: f64,
    /// Fraction of trajectories with no injected error — an unbiased
    /// estimator of [`SweepMonteCarlo::analytic_error_free`], and an exact
    /// lower bound on [`SweepMonteCarlo::mean_fidelity`].
    pub error_free_fraction: f64,
    /// The exact per-channel no-error probability of one trajectory.
    pub analytic_error_free: f64,
    /// `mean_fidelity + 4·σ_binomial ≥ analytic_error_free` with
    /// `σ_binomial = sqrt(p(1−p)/shots)` — the cross-check the sweep
    /// asserts.
    pub bound_ok: bool,
}

/// One cell of the sweep grid: a benchmark compiled for a device with a
/// router, estimated under a calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Device name.
    pub device: String,
    /// Router registry name.
    pub router: String,
    /// Decomposer registry name. Cost-model-only strategies carry
    /// re-priced gate counts and `p_gates` (see [`SweepSpec::decomposers`]).
    pub decomposer: String,
    /// Calibration name.
    pub calibration: String,
    /// Overall success probability (the §2.6 product, with the spec's
    /// crosstalk policy applied).
    pub probability: f64,
    /// Probability that no gate error occurs.
    pub p_gates: f64,
    /// Probability that no readout error occurs.
    pub p_readout: f64,
    /// Probability that no decoherence occurs.
    pub p_coherence: f64,
    /// Scheduled program duration Δ (µs).
    pub duration_us: f64,
    /// Two-qubit gates in the compiled circuit (the paper's primary
    /// static metric).
    pub two_qubit_gates: usize,
    /// One-qubit gates in the compiled circuit.
    pub one_qubit_gates: usize,
    /// Measurements in the compiled circuit.
    pub measurements: usize,
    /// SWAPs the router inserted.
    pub swap_count: usize,
    /// Compiled circuit depth.
    pub depth: usize,
    /// Total instructions entering compilation.
    pub gates_in: usize,
    /// Two-qubit gates entering compilation.
    pub two_qubit_in: usize,
    /// Two-qubit delta across compilation (output − input).
    pub two_qubit_delta: isize,
    /// Depth delta across compilation (output − input).
    pub depth_delta: isize,
    /// Mean gather distance over routed trios (`None` when the router
    /// recorded no trio events).
    pub mean_gather_distance: Option<f64>,
    /// Wall-clock compile time of this cell's (possibly cached)
    /// compilation. Zeroed by [`SweepReport::normalized`].
    pub compile_time_s: f64,
    /// The Monte Carlo cross-check, when requested and the cell is small
    /// enough to simulate.
    pub monte_carlo: Option<SweepMonteCarlo>,
}

/// One row of the success-ratio table: a non-baseline router's probability
/// relative to `"baseline"` on the same benchmark × device × calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Device name.
    pub device: String,
    /// Calibration name.
    pub calibration: String,
    /// The non-baseline router.
    pub router: String,
    /// The decomposer both cells of the ratio share.
    pub decomposer: String,
    /// The baseline cell's success probability.
    pub baseline_probability: f64,
    /// This router's success probability.
    pub probability: f64,
    /// `probability / baseline_probability` — the paper's normalized
    /// success metric (Figures 8 and 11).
    pub ratio: f64,
}

/// The geometric-mean success ratio of one router × decomposer grid cell
/// over its ratio rows.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterGeomean {
    /// The router.
    pub router: String,
    /// The decomposer.
    pub decomposer: String,
    /// Geometric mean of its trios/baseline ratios.
    pub geomean: f64,
    /// How many ratio rows contributed.
    pub cells: usize,
}

/// Everything a sweep produced. See the module docs for the JSON schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Benchmark names, in spec order.
    pub benchmarks: Vec<String>,
    /// Device names, in spec order.
    pub devices: Vec<String>,
    /// Router names, in spec order.
    pub routers: Vec<String>,
    /// Decomposer names, in spec order.
    pub decomposers: Vec<String>,
    /// Calibration names, in spec order.
    pub calibrations: Vec<String>,
    /// The crosstalk policy, rendered (`"ignore"`, `"charge:<p>"`,
    /// `"avoid"`).
    pub crosstalk: String,
    /// The routing seed.
    pub seed: u64,
    /// Monte Carlo shots per eligible cell, when requested.
    pub shots: Option<usize>,
    /// Every grid cell, sorted by (benchmark, device, router,
    /// calibration) spec order.
    pub cells: Vec<SweepCell>,
    /// Success ratios of every non-baseline router against `"baseline"`
    /// (empty when the spec has no baseline router).
    pub ratios: Vec<RatioRow>,
    /// Per-router geometric means over [`SweepReport::ratios`].
    pub geomeans: Vec<RouterGeomean>,
    /// Compilations answered by the shared cache.
    pub cache_hits: u64,
    /// Compilations performed from scratch.
    pub cache_misses: u64,
    /// End-to-end sweep wall time. Zeroed by [`SweepReport::normalized`].
    pub wall_time_s: f64,
}

impl SweepReport {
    /// The first geometric-mean success ratio recorded for `router`
    /// (its first decomposer in spec order), if any.
    pub fn geomean_for(&self, router: &str) -> Option<f64> {
        self.geomeans
            .iter()
            .find(|g| g.router == router)
            .map(|g| g.geomean)
    }

    /// The geometric-mean success ratio of one router × decomposer grid
    /// cell, if any.
    pub fn geomean_for_grid(&self, router: &str, decomposer: &str) -> Option<f64> {
        self.geomeans
            .iter()
            .find(|g| g.router == router && g.decomposer == decomposer)
            .map(|g| g.geomean)
    }

    /// The cell at the given grid coordinates, if present.
    pub fn cell(
        &self,
        benchmark: &str,
        device: &str,
        router: &str,
        decomposer: &str,
        calibration: &str,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.benchmark == benchmark
                && c.device == device
                && c.router == router
                && c.decomposer == decomposer
                && c.calibration == calibration
        })
    }

    /// A copy with every timing zeroed (`wall_time_s` and each cell's
    /// `compile_time_s`). Everything else a sweep reports is
    /// deterministic, so two normalized reports of the same spec are
    /// equal — and serialize to byte-identical JSON — regardless of the
    /// worker count.
    pub fn normalized(&self) -> SweepReport {
        let mut report = self.clone();
        report.wall_time_s = 0.0;
        for cell in &mut report.cells {
            cell.compile_time_s = 0.0;
        }
        report
    }

    /// The human-readable summary: the per-cell table, the ratio table,
    /// and the per-router geomeans.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep: {} benchmarks x {} devices x {} routers x {} decomposers x {} calibrations = {} cells",
            self.benchmarks.len(),
            self.devices.len(),
            self.routers.len(),
            self.decomposers.len(),
            self.calibrations.len(),
            self.cells.len(),
        );
        let _ = writeln!(
            out,
            "cache: {} hits / {} misses | seed {} | crosstalk {} | wall {:.2}s",
            self.cache_hits, self.cache_misses, self.seed, self.crosstalk, self.wall_time_s
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<28} {:<14} {:<16} {:<14} {:<8} {:>10} {:>6} {:>6} {:>6} {:>9} {:>7}",
            "benchmark",
            "device",
            "router",
            "decomposer",
            "cal",
            "P",
            "2q",
            "swaps",
            "depth",
            "Δµs",
            "gather"
        );
        for cell in &self.cells {
            let gather = match cell.mean_gather_distance {
                Some(g) => format!("{g:.2}"),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "{:<28} {:<14} {:<16} {:<14} {:<8} {:>10.3e} {:>6} {:>6} {:>6} {:>9.2} {:>7}",
                cell.benchmark,
                cell.device,
                cell.router,
                cell.decomposer,
                cell.calibration,
                cell.probability,
                cell.two_qubit_gates,
                cell.swap_count,
                cell.depth,
                cell.duration_us,
                gather,
            );
            if let Some(mc) = &cell.monte_carlo {
                let _ = writeln!(
                    out,
                    "{:<28} monte carlo: fidelity {:.4} ± {:.4} (error-free {:.4}, analytic {:.4}, bound {})",
                    "",
                    mc.mean_fidelity,
                    mc.std_error,
                    mc.error_free_fraction,
                    mc.analytic_error_free,
                    if mc.bound_ok { "ok" } else { "VIOLATED" },
                );
            }
        }
        if !self.ratios.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "success-probability ratios vs baseline:");
            let _ = writeln!(
                out,
                "{:<28} {:<14} {:<8} {:<16} {:<14} {:>8}",
                "benchmark", "device", "cal", "router", "decomposer", "ratio"
            );
            for row in &self.ratios {
                let _ = writeln!(
                    out,
                    "{:<28} {:<14} {:<8} {:<16} {:<14} {:>7.2}x",
                    row.benchmark,
                    row.device,
                    row.calibration,
                    row.router,
                    row.decomposer,
                    row.ratio
                );
            }
        }
        for g in &self.geomeans {
            let _ = writeln!(
                out,
                "geomean({} x {} / baseline) = {:.2}x over {} cells",
                g.router, g.decomposer, g.geomean, g.cells
            );
        }
        out
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary_table())
    }
}

/// Renders a [`CrosstalkPolicy`] as the stable string the report carries.
fn crosstalk_label(policy: CrosstalkPolicy) -> String {
    match policy {
        CrosstalkPolicy::Ignore => "ignore".into(),
        CrosstalkPolicy::Charge { error_per_conflict } => format!("charge:{error_per_conflict}"),
        CrosstalkPolicy::Avoid => "avoid".into(),
    }
}

fn validate(spec: &SweepSpec) -> Result<(), SweepError> {
    for (dimension, names) in [
        (
            "benchmarks",
            spec.benchmarks
                .iter()
                .map(|b| b.name.clone())
                .collect::<Vec<_>>(),
        ),
        (
            "devices",
            spec.devices.iter().map(|(n, _)| n.clone()).collect(),
        ),
        ("routers", spec.routers.clone()),
        ("decomposers", spec.decomposers.clone()),
        (
            "calibrations",
            spec.calibrations.iter().map(|(n, _)| n.clone()).collect(),
        ),
    ] {
        if names.is_empty() {
            return Err(SweepError::EmptyDimension { dimension });
        }
        for (i, name) in names.iter().enumerate() {
            if names[..i].contains(name) {
                return Err(SweepError::DuplicateName {
                    dimension,
                    name: name.clone(),
                });
            }
        }
    }
    let registry = StrategyRegistry::standard();
    for router in &spec.routers {
        if !registry.contains(router) {
            return Err(SweepError::UnknownRouter {
                router: router.clone(),
                registered: registry.names().collect::<Vec<_>>().join(", "),
            });
        }
    }
    let decomposers = DecomposerRegistry::standard();
    for decomposer in &spec.decomposers {
        if !decomposers.contains(decomposer) {
            return Err(SweepError::UnknownDecomposer {
                decomposer: decomposer.clone(),
                registered: decomposers.names().collect::<Vec<_>>().join(", "),
            });
        }
    }
    if spec.monte_carlo_shots == Some(0) {
        return Err(SweepError::ZeroShots);
    }
    Ok(())
}

/// Re-prices a cost-model-only cell: each of its `trios` routed trios
/// swaps the standard lowering's [`LoweringCost`] for the strategy's own
/// (first-order, per Gokhale et al.'s qutrit analysis — the gathered trio
/// executes as native multi-valued gates instead of a CNOT network).
/// Gate counts shift by the per-trio delta, and `p_gates` — a product of
/// per-gate success factors, so log-linear in the gate count — is
/// rescaled by the same cost-weighted exponent (one-qubit gates weighted
/// 1/10 of a two-qubit gate, the usual error-rate ratio).
fn reprice_cell(
    cell: &mut SweepCell,
    trios: usize,
    cost: trios_passes::LoweringCost,
    standard_cost: trios_passes::LoweringCost,
) {
    let trios = trios as f64;
    let two_adj = (cell.two_qubit_gates as f64 + trios * (cost.two_qubit - standard_cost.two_qubit))
        .round()
        .max(0.0) as usize;
    let one_adj = (cell.one_qubit_gates as f64 + trios * (cost.one_qubit - standard_cost.one_qubit))
        .round()
        .max(0.0) as usize;
    let weight = |two: usize, one: usize| two as f64 + one as f64 / 10.0;
    let before = weight(cell.two_qubit_gates, cell.one_qubit_gates);
    let after = weight(two_adj, one_adj);
    if before > 0.0 && cell.p_gates > 0.0 {
        let p_gates_adj = cell.p_gates.powf(after / before);
        // probability may carry readout/coherence/crosstalk factors;
        // scale only its gate component.
        cell.probability *= p_gates_adj / cell.p_gates;
        cell.p_gates = p_gates_adj;
    }
    cell.two_qubit_gates = two_adj;
    cell.one_qubit_gates = one_adj;
    cell.two_qubit_delta = two_adj as isize - cell.two_qubit_in as isize;
}

/// Runs the sweep described by `spec`.
///
/// Cells sharing a device and router are compiled as one batch over the
/// parallel batch compiler; one [`CompilationCache`] is shared across the
/// whole sweep, so repeated circuits (and repeated sweeps over one spec)
/// compile once. Calibration never affects compilation, so each compiled
/// program is estimated under every calibration without recompiling.
///
/// # Errors
///
/// Returns a [`SweepError`] for malformed specs (empty dimensions,
/// duplicate or unknown names, zero Monte Carlo shots) or for the first
/// cell whose compilation fails.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepReport, SweepError> {
    validate(spec)?;
    let started = Instant::now();
    let jobs = if spec.jobs > 0 {
        spec.jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let cache = CompilationCache::new(spec.cache_size);
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);

    // Collect (sort key, cell, compiled circuit, calibration) so the
    // Monte Carlo pass can run over the canonically ordered cells. The
    // circuit is cloned into a cell only when that pass will actually
    // simulate it.
    type Keyed = (
        (usize, usize, usize, usize, usize),
        SweepCell,
        Option<Circuit>,
        Calibration,
    );
    let mut keyed: Vec<Keyed> = Vec::new();

    let decomposer_registry = DecomposerRegistry::standard();
    let standard_cost = decomposer_registry
        .get("standard")
        .expect("standard decomposer is registered")
        .trio_cost();

    for (di, (device_name, topology)) in spec.devices.iter().enumerate() {
        for (ri, router) in spec.routers.iter().enumerate() {
            for (xi, decomposer_name) in spec.decomposers.iter().enumerate() {
                let strategy = decomposer_registry
                    .get(decomposer_name)
                    .expect("decomposer names are validated");
                let executable = strategy.executable();
                let cost = strategy.trio_cost();
                // Cost-model-only strategies (qutrit) compile with the
                // standard lowering — routing, swaps, and scheduling stay
                // realistic — and re-price the trios afterwards.
                let compiled_decomposer = if executable {
                    decomposer_name.as_str()
                } else {
                    "standard"
                };
                // Benchmarks sharing a mapping override share one compiler,
                // and therefore one batch call.
                let mut groups: Vec<(Option<InitialMapping>, Vec<usize>)> = Vec::new();
                for (bi, bench) in spec.benchmarks.iter().enumerate() {
                    match groups.iter_mut().find(|(m, _)| *m == bench.mapping) {
                        Some((_, indices)) => indices.push(bi),
                        None => groups.push((bench.mapping.clone(), vec![bi])),
                    }
                }
                for (mapping, indices) in groups {
                    let mut builder = Compiler::builder()
                        .router(router.clone())
                        .decomposer(compiled_decomposer)
                        .seed(spec.seed);
                    if let Some(mapping) = mapping {
                        builder = builder.mapping(mapping);
                    }
                    let compiler = builder.build();
                    let circuits: Vec<Circuit> = indices
                        .iter()
                        .map(|&bi| spec.benchmarks[bi].circuit.clone())
                        .collect();
                    let outcome = compiler
                        .compile_batch_parallel_with_cache(&circuits, topology, jobs, Some(&cache))
                        .map_err(|e| SweepError::Compile {
                            benchmark: spec.benchmarks[indices[e.index]].name.clone(),
                            device: device_name.clone(),
                            router: router.clone(),
                            diagnostic: Box::new(e.diagnostic),
                        })?;
                    cache_hits += outcome.report.cache_hits;
                    cache_misses += outcome.report.cache_misses;
                    for (&bi, (program, report)) in indices.iter().zip(&outcome.results) {
                        let bench = &spec.benchmarks[bi];
                        let (gates_in, two_qubit_in, three_qubit_in, depth_in) = report
                            .passes
                            .first()
                            .map(|p| {
                                (
                                    p.gates_before.total,
                                    p.gates_before.two_qubit,
                                    p.gates_before.three_qubit,
                                    p.depth_before,
                                )
                            })
                            .unwrap_or_default();
                        for (ci, (cal_name, calibration)) in spec.calibrations.iter().enumerate() {
                            let estimate = estimate_success_with_crosstalk(
                                &program.circuit,
                                calibration,
                                topology,
                                spec.crosstalk,
                            );
                            let mut cell = SweepCell {
                                benchmark: bench.name.clone(),
                                device: device_name.clone(),
                                router: router.clone(),
                                decomposer: decomposer_name.clone(),
                                calibration: cal_name.clone(),
                                probability: estimate.probability(),
                                p_gates: estimate.p_gates,
                                p_readout: estimate.p_readout,
                                p_coherence: estimate.p_coherence,
                                duration_us: estimate.duration_us,
                                two_qubit_gates: program.stats.two_qubit_gates,
                                one_qubit_gates: program.stats.one_qubit_gates,
                                measurements: program.stats.measurements,
                                swap_count: program.stats.swap_count,
                                depth: program.stats.depth,
                                gates_in,
                                two_qubit_in,
                                two_qubit_delta: program.stats.two_qubit_gates as isize
                                    - two_qubit_in as isize,
                                depth_delta: program.stats.depth as isize - depth_in as isize,
                                mean_gather_distance: program.stats.mean_gather_distance,
                                compile_time_s: report.total_time.as_secs_f64(),
                                monte_carlo: None,
                            };
                            if !executable {
                                reprice_cell(&mut cell, three_qubit_in, cost, standard_cost);
                            }
                            // Cost-model cells carry re-priced numbers the
                            // compiled circuit does not match, so they are
                            // never cross-checked by simulation.
                            let simulable = executable
                                && spec.monte_carlo_shots.is_some()
                                && program.circuit.num_qubits() <= MONTE_CARLO_MAX_QUBITS;
                            keyed.push((
                                (bi, di, ri, xi, ci),
                                cell,
                                simulable.then(|| program.circuit.clone()),
                                *calibration,
                            ));
                        }
                    }
                }
            }
        }
    }

    keyed.sort_by_key(|k| k.0);

    // Monte Carlo cross-check, seeded from the canonical cell index so
    // results do not depend on worker scheduling.
    if let Some(shots) = spec.monte_carlo_shots {
        for (index, (_, cell, circuit, calibration)) in keyed.iter_mut().enumerate() {
            let Some(circuit) = circuit else {
                continue;
            };
            let options = MonteCarloOptions {
                shots,
                seed: spec.seed.wrapping_add(index as u64),
                gate_errors: true,
                decoherence: true,
            };
            let mc = monte_carlo_fidelity(circuit, calibration, options)
                .expect("cell fits the dense simulator and shots > 0");
            let analytic_error_free =
                analytic_error_free_probability(circuit, calibration, options);
            // Error-free shots have fidelity 1, so mean fidelity bounds
            // the error-free probability up to its binomial sampling
            // error.
            let sigma = (analytic_error_free * (1.0 - analytic_error_free) / shots as f64).sqrt();
            cell.monte_carlo = Some(SweepMonteCarlo {
                shots,
                mean_fidelity: mc.mean_fidelity,
                std_error: mc.std_error,
                error_free_fraction: mc.error_free_fraction(),
                analytic_error_free,
                bound_ok: mc.mean_fidelity + 4.0 * sigma + 1e-9 >= analytic_error_free,
            });
        }
    }

    let cells: Vec<SweepCell> = keyed.into_iter().map(|(_, cell, _, _)| cell).collect();

    // Ratio rows: every non-baseline router against "baseline" under the
    // same decomposer, per (benchmark, device, calibration).
    let mut ratios = Vec::new();
    if spec.routers.iter().any(|r| r == "baseline") {
        for cell in &cells {
            if cell.router == "baseline" {
                continue;
            }
            let base = cells.iter().find(|c| {
                c.router == "baseline"
                    && c.decomposer == cell.decomposer
                    && c.benchmark == cell.benchmark
                    && c.device == cell.device
                    && c.calibration == cell.calibration
            });
            if let Some(base) = base {
                if base.probability > 0.0 {
                    ratios.push(RatioRow {
                        benchmark: cell.benchmark.clone(),
                        device: cell.device.clone(),
                        calibration: cell.calibration.clone(),
                        router: cell.router.clone(),
                        decomposer: cell.decomposer.clone(),
                        baseline_probability: base.probability,
                        probability: cell.probability,
                        ratio: cell.probability / base.probability,
                    });
                }
            }
        }
    }

    // One geomean per (router × decomposer) grid cell — the sweep's
    // router-cooperation headline.
    let mut geomeans = Vec::new();
    for router in &spec.routers {
        if router == "baseline" {
            continue;
        }
        for decomposer in &spec.decomposers {
            let values: Vec<f64> = ratios
                .iter()
                .filter(|r| &r.router == router && &r.decomposer == decomposer && r.ratio > 0.0)
                .map(|r| r.ratio)
                .collect();
            if !values.is_empty() {
                let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
                geomeans.push(RouterGeomean {
                    router: router.clone(),
                    decomposer: decomposer.clone(),
                    geomean: (log_sum / values.len() as f64).exp(),
                    cells: values.len(),
                });
            }
        }
    }

    Ok(SweepReport {
        benchmarks: spec.benchmarks.iter().map(|b| b.name.clone()).collect(),
        devices: spec.devices.iter().map(|(n, _)| n.clone()).collect(),
        routers: spec.routers.clone(),
        decomposers: spec.decomposers.clone(),
        calibrations: spec.calibrations.iter().map(|(n, _)| n.clone()).collect(),
        crosstalk: crosstalk_label(spec.crosstalk),
        seed: spec.seed,
        shots: spec.monte_carlo_shots,
        cells,
        ratios,
        geomeans,
        cache_hits,
        cache_misses,
        wall_time_s: started.elapsed().as_secs_f64(),
    })
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::{RatioRow, RouterGeomean, SweepCell, SweepMonteCarlo, SweepReport};
    use serde::{Serialize, SerializeStruct, Serializer};

    impl Serialize for SweepMonteCarlo {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("SweepMonteCarlo", 6)?;
            s.serialize_field("shots", &self.shots)?;
            s.serialize_field("mean_fidelity", &self.mean_fidelity)?;
            s.serialize_field("std_error", &self.std_error)?;
            s.serialize_field("error_free_fraction", &self.error_free_fraction)?;
            s.serialize_field("analytic_error_free", &self.analytic_error_free)?;
            s.serialize_field("bound_ok", &self.bound_ok)?;
            s.end()
        }
    }

    impl Serialize for SweepCell {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("SweepCell", 22)?;
            s.serialize_field("benchmark", &self.benchmark)?;
            s.serialize_field("device", &self.device)?;
            s.serialize_field("router", &self.router)?;
            s.serialize_field("decomposer", &self.decomposer)?;
            s.serialize_field("calibration", &self.calibration)?;
            s.serialize_field("probability", &self.probability)?;
            s.serialize_field("p_gates", &self.p_gates)?;
            s.serialize_field("p_readout", &self.p_readout)?;
            s.serialize_field("p_coherence", &self.p_coherence)?;
            s.serialize_field("duration_us", &self.duration_us)?;
            s.serialize_field("two_qubit_gates", &self.two_qubit_gates)?;
            s.serialize_field("one_qubit_gates", &self.one_qubit_gates)?;
            s.serialize_field("measurements", &self.measurements)?;
            s.serialize_field("swap_count", &self.swap_count)?;
            s.serialize_field("depth", &self.depth)?;
            s.serialize_field("gates_in", &self.gates_in)?;
            s.serialize_field("two_qubit_in", &self.two_qubit_in)?;
            s.serialize_field("two_qubit_delta", &(self.two_qubit_delta as i64))?;
            s.serialize_field("depth_delta", &(self.depth_delta as i64))?;
            s.serialize_field("mean_gather_distance", &self.mean_gather_distance)?;
            s.serialize_field("compile_time_s", &self.compile_time_s)?;
            s.serialize_field("monte_carlo", &self.monte_carlo)?;
            s.end()
        }
    }

    impl Serialize for RatioRow {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("RatioRow", 8)?;
            s.serialize_field("benchmark", &self.benchmark)?;
            s.serialize_field("device", &self.device)?;
            s.serialize_field("calibration", &self.calibration)?;
            s.serialize_field("router", &self.router)?;
            s.serialize_field("decomposer", &self.decomposer)?;
            s.serialize_field("baseline_probability", &self.baseline_probability)?;
            s.serialize_field("probability", &self.probability)?;
            s.serialize_field("ratio", &self.ratio)?;
            s.end()
        }
    }

    impl Serialize for RouterGeomean {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("RouterGeomean", 4)?;
            s.serialize_field("router", &self.router)?;
            s.serialize_field("decomposer", &self.decomposer)?;
            s.serialize_field("geomean", &self.geomean)?;
            s.serialize_field("cells", &self.cells)?;
            s.end()
        }
    }

    impl Serialize for SweepReport {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("SweepReport", 14)?;
            s.serialize_field("benchmarks", &self.benchmarks)?;
            s.serialize_field("devices", &self.devices)?;
            s.serialize_field("routers", &self.routers)?;
            s.serialize_field("decomposers", &self.decomposers)?;
            s.serialize_field("calibrations", &self.calibrations)?;
            s.serialize_field("crosstalk", &self.crosstalk)?;
            s.serialize_field("seed", &self.seed)?;
            s.serialize_field("shots", &self.shots)?;
            s.serialize_field("cells", &self.cells)?;
            s.serialize_field("ratios", &self.ratios)?;
            s.serialize_field("geomeans", &self.geomeans)?;
            s.serialize_field("cache_hits", &self.cache_hits)?;
            s.serialize_field("cache_misses", &self.cache_misses)?;
            s.serialize_field("wall_time_s", &self.wall_time_s)?;
            s.end()
        }
    }
}

#[cfg(feature = "serde")]
mod json_io {
    use super::{RatioRow, RouterGeomean, SweepCell, SweepMonteCarlo, SweepReport};
    use serde_json::Value;

    impl SweepReport {
        /// Serializes the report to compact JSON (see the module docs for
        /// the schema).
        pub fn to_json(&self) -> String {
            serde_json::to_string(self).expect("sweep reports contain only finite numbers")
        }

        /// Serializes the report to indented JSON.
        pub fn to_json_pretty(&self) -> String {
            serde_json::to_string_pretty(self).expect("sweep reports contain only finite numbers")
        }

        /// Parses a report back from its JSON form.
        ///
        /// # Errors
        ///
        /// Returns a description of the first syntax or schema problem.
        pub fn from_json(text: &str) -> Result<SweepReport, String> {
            let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
            report_from_value(&value)
        }
    }

    fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, String> {
        value
            .get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    fn string_field(value: &Value, key: &str) -> Result<String, String> {
        field(value, key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("field '{key}' must be a string"))
    }

    fn f64_field(value: &Value, key: &str) -> Result<f64, String> {
        field(value, key)?
            .as_f64()
            .ok_or_else(|| format!("field '{key}' must be a number"))
    }

    fn usize_field(value: &Value, key: &str) -> Result<usize, String> {
        field(value, key)?
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
    }

    fn isize_field(value: &Value, key: &str) -> Result<isize, String> {
        field(value, key)?
            .as_i64()
            .map(|n| n as isize)
            .ok_or_else(|| format!("field '{key}' must be an integer"))
    }

    fn bool_field(value: &Value, key: &str) -> Result<bool, String> {
        field(value, key)?
            .as_bool()
            .ok_or_else(|| format!("field '{key}' must be a boolean"))
    }

    fn string_array(value: &Value, key: &str) -> Result<Vec<String>, String> {
        field(value, key)?
            .as_array()
            .ok_or_else(|| format!("field '{key}' must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field '{key}' must contain strings"))
            })
            .collect()
    }

    fn monte_carlo_from_value(value: &Value) -> Result<SweepMonteCarlo, String> {
        Ok(SweepMonteCarlo {
            shots: usize_field(value, "shots")?,
            mean_fidelity: f64_field(value, "mean_fidelity")?,
            std_error: f64_field(value, "std_error")?,
            error_free_fraction: f64_field(value, "error_free_fraction")?,
            analytic_error_free: f64_field(value, "analytic_error_free")?,
            bound_ok: bool_field(value, "bound_ok")?,
        })
    }

    fn cell_from_value(value: &Value) -> Result<SweepCell, String> {
        let gather = field(value, "mean_gather_distance")?;
        let mean_gather_distance = if gather.is_null() {
            None
        } else {
            Some(
                gather
                    .as_f64()
                    .ok_or("field 'mean_gather_distance' must be a number or null")?,
            )
        };
        let mc = field(value, "monte_carlo")?;
        let monte_carlo = if mc.is_null() {
            None
        } else {
            Some(monte_carlo_from_value(mc)?)
        };
        Ok(SweepCell {
            benchmark: string_field(value, "benchmark")?,
            device: string_field(value, "device")?,
            router: string_field(value, "router")?,
            decomposer: string_field(value, "decomposer")?,
            calibration: string_field(value, "calibration")?,
            probability: f64_field(value, "probability")?,
            p_gates: f64_field(value, "p_gates")?,
            p_readout: f64_field(value, "p_readout")?,
            p_coherence: f64_field(value, "p_coherence")?,
            duration_us: f64_field(value, "duration_us")?,
            two_qubit_gates: usize_field(value, "two_qubit_gates")?,
            one_qubit_gates: usize_field(value, "one_qubit_gates")?,
            measurements: usize_field(value, "measurements")?,
            swap_count: usize_field(value, "swap_count")?,
            depth: usize_field(value, "depth")?,
            gates_in: usize_field(value, "gates_in")?,
            two_qubit_in: usize_field(value, "two_qubit_in")?,
            two_qubit_delta: isize_field(value, "two_qubit_delta")?,
            depth_delta: isize_field(value, "depth_delta")?,
            mean_gather_distance,
            compile_time_s: f64_field(value, "compile_time_s")?,
            monte_carlo,
        })
    }

    fn ratio_from_value(value: &Value) -> Result<RatioRow, String> {
        Ok(RatioRow {
            benchmark: string_field(value, "benchmark")?,
            device: string_field(value, "device")?,
            calibration: string_field(value, "calibration")?,
            router: string_field(value, "router")?,
            decomposer: string_field(value, "decomposer")?,
            baseline_probability: f64_field(value, "baseline_probability")?,
            probability: f64_field(value, "probability")?,
            ratio: f64_field(value, "ratio")?,
        })
    }

    fn geomean_from_value(value: &Value) -> Result<RouterGeomean, String> {
        Ok(RouterGeomean {
            router: string_field(value, "router")?,
            decomposer: string_field(value, "decomposer")?,
            geomean: f64_field(value, "geomean")?,
            cells: usize_field(value, "cells")?,
        })
    }

    fn report_from_value(value: &Value) -> Result<SweepReport, String> {
        let shots_value = field(value, "shots")?;
        let shots = if shots_value.is_null() {
            None
        } else {
            Some(
                shots_value
                    .as_u64()
                    .ok_or("field 'shots' must be an integer or null")? as usize,
            )
        };
        let cells = field(value, "cells")?
            .as_array()
            .ok_or("field 'cells' must be an array")?
            .iter()
            .map(cell_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let ratios = field(value, "ratios")?
            .as_array()
            .ok_or("field 'ratios' must be an array")?
            .iter()
            .map(ratio_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let geomeans = field(value, "geomeans")?
            .as_array()
            .ok_or("field 'geomeans' must be an array")?
            .iter()
            .map(geomean_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepReport {
            benchmarks: string_array(value, "benchmarks")?,
            devices: string_array(value, "devices")?,
            routers: string_array(value, "routers")?,
            decomposers: string_array(value, "decomposers")?,
            calibrations: string_array(value, "calibrations")?,
            crosstalk: string_field(value, "crosstalk")?,
            seed: field(value, "seed")?
                .as_u64()
                .ok_or("field 'seed' must be an integer")?,
            shots,
            cells,
            ratios,
            geomeans,
            cache_hits: field(value, "cache_hits")?
                .as_u64()
                .ok_or("field 'cache_hits' must be an integer")?,
            cache_misses: field(value, "cache_misses")?
                .as_u64()
                .ok_or("field 'cache_misses' must be an integer")?,
            wall_time_s: f64_field(value, "wall_time_s")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_topology::line;

    fn toffoli_bench(name: &str, width: usize) -> SweepBenchmark {
        let mut c = Circuit::new(width);
        c.h(0).ccx(0, 1, 2);
        if width > 3 {
            c.cx(width - 1, 0);
        }
        SweepBenchmark::measured(name, c)
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            benchmarks: vec![toffoli_bench("toff-4", 4), toffoli_bench("toff-5", 5)],
            devices: vec![("line-6".into(), line(6))],
            routers: vec!["baseline".into(), "trios".into()],
            calibrations: vec![
                ("now".into(), Calibration::johannesburg_2020_08_19()),
                ("future".into(), Calibration::near_future()),
            ],
            ..SweepSpec::new()
        }
    }

    #[test]
    fn sweep_covers_the_full_grid_in_canonical_order() {
        let report = run_sweep(&small_spec()).unwrap();
        // 2 benchmarks × 1 device × 2 routers × 2 calibrations.
        assert_eq!(report.cells.len(), 8);
        // Sorted benchmark-major, then device, router, calibration — all
        // in spec order.
        let first = &report.cells[0];
        assert_eq!(
            (
                first.benchmark.as_str(),
                first.router.as_str(),
                first.calibration.as_str()
            ),
            ("toff-4", "baseline", "now")
        );
        let second = &report.cells[1];
        assert_eq!(
            (second.router.as_str(), second.calibration.as_str()),
            ("baseline", "future")
        );
        assert_eq!(report.cells[2].router, "trios");
        assert_eq!(report.cells[4].benchmark, "toff-5");
        // Every probability is a real probability.
        for cell in &report.cells {
            assert!(
                cell.probability > 0.0 && cell.probability <= 1.0,
                "{cell:?}"
            );
            assert!(cell.measurements > 0, "measured benchmarks");
        }
        // Same compile serves both calibrations: 2 benchmarks × 2 routers
        // compile fresh, the rest of the grid re-uses them.
        assert_eq!(report.cache_misses, 4);
    }

    #[test]
    fn sweep_emits_ratio_rows_and_geomeans_against_baseline() {
        let report = run_sweep(&small_spec()).unwrap();
        // One ratio row per trios cell.
        assert_eq!(report.ratios.len(), 4);
        for row in &report.ratios {
            assert_eq!(row.router, "trios");
            assert!((row.ratio - row.probability / row.baseline_probability).abs() < 1e-12);
        }
        let geomean = report.geomean_for("trios").unwrap();
        assert!(geomean > 0.0);
        assert_eq!(report.geomeans[0].cells, 4);
        // Trios routes the Toffoli as a unit on a line: it must not lose
        // to the baseline on this Toffoli-bearing grid.
        assert!(geomean >= 1.0, "geomean {geomean}");
    }

    #[test]
    fn sweep_is_deterministic_and_independent_of_jobs() {
        let mut spec = small_spec();
        spec.jobs = 1;
        let one = run_sweep(&spec).unwrap().normalized();
        spec.jobs = 4;
        let four = run_sweep(&spec).unwrap().normalized();
        assert_eq!(one, four);
    }

    #[test]
    fn monte_carlo_cross_check_runs_on_small_cells_and_upper_bounds_the_model() {
        let mut spec = small_spec();
        spec.calibrations = vec![("now".into(), Calibration::johannesburg_2020_08_19())];
        spec.monte_carlo_shots = Some(120);
        let report = run_sweep(&spec).unwrap();
        for cell in &report.cells {
            let mc = cell.monte_carlo.expect("line-6 cells are simulable");
            assert_eq!(mc.shots, 120);
            assert!(
                mc.bound_ok,
                "analytic model must lower-bound fidelity: {mc:?}"
            );
            assert!(mc.mean_fidelity <= 1.0 + 1e-12);
            assert!(mc.error_free_fraction <= mc.mean_fidelity + 1e-12);
        }
    }

    #[test]
    fn monte_carlo_skips_cells_too_wide_to_simulate() {
        let mut spec = small_spec();
        spec.devices = vec![("line-12".into(), line(12))];
        spec.monte_carlo_shots = Some(10);
        let report = run_sweep(&spec).unwrap();
        assert!(report.cells.iter().all(|c| c.monte_carlo.is_none()));
        assert_eq!(report.shots, Some(10));
    }

    #[test]
    fn pinned_benchmarks_fix_their_placement() {
        let mut toffoli = Circuit::new(3);
        toffoli.ccx(0, 1, 2);
        let spec = SweepSpec {
            benchmarks: vec![
                SweepBenchmark::pinned("far", toffoli.clone(), vec![0, 3, 5]),
                SweepBenchmark::pinned("near", toffoli, vec![0, 1, 2]),
            ],
            devices: vec![("line-6".into(), line(6))],
            routers: vec!["trios".into()],
            calibrations: vec![("now".into(), Calibration::johannesburg_2020_08_19())],
            ..SweepSpec::new()
        };
        let report = run_sweep(&spec).unwrap();
        let far = report
            .cell("far", "line-6", "trios", "standard", "now")
            .unwrap();
        let near = report
            .cell("near", "line-6", "trios", "standard", "now")
            .unwrap();
        assert!(far.swap_count > near.swap_count);
        assert!(far.mean_gather_distance.unwrap() > near.mean_gather_distance.unwrap());
        assert_eq!(near.mean_gather_distance, Some(0.0));
    }

    #[test]
    fn spec_validation_catches_malformed_grids() {
        let mut empty = small_spec();
        empty.routers.clear();
        assert_eq!(
            run_sweep(&empty).unwrap_err(),
            SweepError::EmptyDimension {
                dimension: "routers"
            }
        );

        let mut duplicate = small_spec();
        duplicate.benchmarks.push(toffoli_bench("toff-4", 4));
        assert!(matches!(
            run_sweep(&duplicate).unwrap_err(),
            SweepError::DuplicateName {
                dimension: "benchmarks",
                ..
            }
        ));

        let mut unknown = small_spec();
        unknown.routers = vec!["sabre".into()];
        let err = run_sweep(&unknown).unwrap_err();
        assert!(matches!(err, SweepError::UnknownRouter { .. }));
        assert!(err.to_string().contains("sabre"));

        let mut unknown_decomposer = small_spec();
        unknown_decomposer.decomposers = vec!["margolus".into()];
        let err = run_sweep(&unknown_decomposer).unwrap_err();
        assert!(matches!(err, SweepError::UnknownDecomposer { .. }));
        assert!(err.to_string().contains("margolus"), "{err}");
        assert!(err.to_string().contains("relative-phase"), "{err}");

        let mut zero = small_spec();
        zero.monte_carlo_shots = Some(0);
        assert_eq!(run_sweep(&zero).unwrap_err(), SweepError::ZeroShots);
    }

    #[test]
    fn decomposer_grid_expands_cells_and_geomeans() {
        let mut spec = small_spec();
        spec.calibrations = vec![("now".into(), Calibration::johannesburg_2020_08_19())];
        spec.decomposers = vec!["standard".into(), "eight".into(), "tdepth".into()];
        let report = run_sweep(&spec).unwrap();
        // 2 benchmarks × 1 device × 2 routers × 3 decomposers × 1 cal.
        assert_eq!(report.cells.len(), 12);
        assert_eq!(report.decomposers, ["standard", "eight", "tdepth"]);
        // Decomposer-major inside each router, in spec order.
        let toff4: Vec<(&str, &str)> = report
            .cells
            .iter()
            .filter(|c| c.benchmark == "toff-4")
            .map(|c| (c.router.as_str(), c.decomposer.as_str()))
            .collect();
        assert_eq!(
            toff4,
            [
                ("baseline", "standard"),
                ("baseline", "eight"),
                ("baseline", "tdepth"),
                ("trios", "standard"),
                ("trios", "eight"),
                ("trios", "tdepth"),
            ]
        );
        // One geomean per non-baseline (router × decomposer) grid cell,
        // each ratio comparing like against like.
        assert_eq!(report.geomeans.len(), 3);
        for decomposer in ["standard", "eight", "tdepth"] {
            let g = report.geomean_for_grid("trios", decomposer).unwrap();
            assert!(g > 0.0, "{decomposer}: {g}");
        }
        for row in &report.ratios {
            assert_eq!(row.router, "trios");
        }
        // The forced-eight lowering is a genuinely different compilation
        // from the connectivity-aware standard (on a line it needs no
        // triangle, so its totals differ).
        let totals = |decomposer: &str| -> Vec<usize> {
            report
                .cells
                .iter()
                .filter(|c| c.decomposer == decomposer)
                .map(|c| c.two_qubit_gates)
                .collect()
        };
        assert_ne!(totals("standard"), totals("eight"));
    }

    #[test]
    fn qutrit_cells_are_cost_model_repriced() {
        let mut spec = small_spec();
        spec.calibrations = vec![("now".into(), Calibration::johannesburg_2020_08_19())];
        spec.decomposers = vec!["standard".into(), "qutrit".into()];
        spec.monte_carlo_shots = Some(20);
        let report = run_sweep(&spec).unwrap();
        for decomposer in ["standard", "qutrit"] {
            assert!(
                report.geomean_for_grid("trios", decomposer).is_some(),
                "{decomposer}"
            );
        }
        for cell in report.cells.iter().filter(|c| c.decomposer == "qutrit") {
            let twin = report
                .cell(
                    &cell.benchmark,
                    &cell.device,
                    &cell.router,
                    "standard",
                    &cell.calibration,
                )
                .unwrap();
            // One trio re-priced from 6 to 3 two-qubit gates: fewer 2q
            // gates, and strictly better gate-success odds.
            assert!(cell.two_qubit_gates < twin.two_qubit_gates, "{cell:?}");
            assert!(cell.p_gates > twin.p_gates, "{cell:?}");
            assert!(cell.probability > twin.probability, "{cell:?}");
            // Re-priced numbers never claim a simulation cross-check.
            assert!(cell.monte_carlo.is_none(), "{cell:?}");
            // Routing itself (swaps, depth source) came from the standard
            // compile.
            assert_eq!(cell.swap_count, twin.swap_count);
        }
        // The standard cells still run the cross-check.
        assert!(report
            .cells
            .iter()
            .filter(|c| c.decomposer == "standard")
            .all(|c| c.monte_carlo.is_some()));
    }

    #[test]
    fn compile_failures_name_the_cell() {
        let mut wide = Circuit::new(10);
        wide.cx(0, 9);
        let spec = SweepSpec {
            benchmarks: vec![SweepBenchmark::new("too-wide", wide)],
            devices: vec![("line-4".into(), line(4))],
            routers: vec!["trios".into()],
            calibrations: vec![("now".into(), Calibration::default())],
            ..SweepSpec::new()
        };
        let err = run_sweep(&spec).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("too-wide"), "{text}");
        assert!(text.contains("line-4"), "{text}");
        assert!(text.contains("trios"), "{text}");
    }

    #[test]
    fn summary_table_reads_like_a_report() {
        let report = run_sweep(&small_spec()).unwrap();
        let text = report.summary_table();
        assert!(
            text.contains("2 benchmarks x 1 devices x 2 routers x 1 decomposers x 2 calibrations")
        );
        assert!(text.contains("toff-4"));
        assert!(text.contains("baseline"));
        assert!(text.contains("geomean(trios x standard / baseline)"));
        assert_eq!(text, report.to_string());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn report_round_trips_through_json() {
        let mut spec = small_spec();
        spec.monte_carlo_shots = Some(40);
        let report = run_sweep(&spec).unwrap();
        let json = report.to_json();
        let parsed = SweepReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        let pretty = SweepReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(pretty, report);
        assert!(SweepReport::from_json("{\"benchmarks\": 1}").is_err());
    }
}
