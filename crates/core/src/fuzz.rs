//! The differential fuzz harness: compile seeded generated circuits
//! through every registered routing strategy × a set of devices, check
//! each result against the simulator and the hardware-legality and
//! metric invariants, and greedily shrink any failure to a minimal
//! reproducer.
//!
//! The paper's evaluation (and this repo's test suite until now) runs on
//! a fixed benchmark list; [`run_fuzz`] instead draws unbounded
//! structured workloads from [`trios_gen`]'s families and
//! cross-checks every cell of the `(case × device × router)` grid:
//!
//! * **semantics** — a [`trios_sim::Simulator`] backend replays random
//!   states through the initial/final layouts: stabilizer tableau for
//!   Clifford circuits at any width, dense statevector on devices up to
//!   [`FuzzSpec::max_sim_qubits`] wide, and the sparse term-map backend
//!   for non-Clifford circuits on anything wider (full Johannesburg,
//!   127-qubit-class heavy-hex grids) while the amplitude count stays
//!   under [`FuzzSpec::max_terms`]. A cell whose equivalence cannot run
//!   is recorded in [`FuzzReport::skips`] with its reason — never
//!   silently dropped,
//! * **legality** — [`trios_route::verify_legal`]: every gate in the
//!   hardware set, every two-qubit gate on a coupling edge, no surviving
//!   three-qubit gate,
//! * **metric invariants** — the reported [`CompileStats`] agree with
//!   the circuit they describe (recomputed two-qubit count and depth),
//!   `mean_gather_distance` is finite and non-negative, the scheduled
//!   duration is finite and non-negative.
//!
//! Compilation goes through the cached parallel batch compiler, so a
//! fuzz run shares work exactly like a production sweep; results are
//! **byte-identical across worker counts** (the report carries no
//! timings and cells are visited in deterministic grid order).
//!
//! When [`FuzzSpec::shrink`] is set, each failing case is minimized by
//! greedy gate removal and qubit compaction — every candidate is
//! recompiled and must reproduce the *same kind* of failure — and the
//! minimal circuit is emitted as an OpenQASM reproducer in the report.
//!
//! # Examples
//!
//! ```
//! use trios_core::fuzz::{run_fuzz, FuzzSpec};
//!
//! let spec = FuzzSpec {
//!     cases: 4,
//!     seed: 1,
//!     routers: vec!["trios".into()],
//!     ..FuzzSpec::new()
//! };
//! let report = run_fuzz(&spec)?;
//! assert!(report.passed(), "{report}");
//! # Ok::<(), trios_core::fuzz::FuzzError>(())
//! ```

use crate::cache::CompilationCache;
use crate::{BatchDiagnostic, CompileStats, CompiledProgram, Compiler, Diagnostic};
use std::error::Error;
use std::fmt;
use trios_gen::{generate_suite, Family, GeneratedCircuit};
use trios_ir::Circuit;
use trios_passes::DecomposerRegistry;
use trios_route::{verify_legal, StrategyRegistry};
use trios_sim::{
    auto_backend, first_non_clifford, strip_t_gates, Backend, DenseSimulator, SimError, Simulator,
    SparseSimulator, StabilizerSimulator, DEFAULT_MAX_TERMS, MAX_QUBITS, SPARSE_MAX_QUBITS,
};
use trios_topology::{grid, line, Topology};

/// What one fuzz run covers: the case stream, the differential grid, and
/// the harness knobs.
#[derive(Debug, Clone)]
pub struct FuzzSpec {
    /// Families the case stream cycles through.
    pub families: Vec<Family>,
    /// Number of generated cases (seeds `seed, seed+1, …`).
    pub cases: usize,
    /// Base generation seed (also the compilation and simulation seed).
    pub seed: u64,
    /// Routing strategies by registry name; every case × device is
    /// compiled through each.
    pub routers: Vec<String>,
    /// Toffoli/CCZ decomposer by registry name, applied to every cell.
    /// Must be executable — cost-model-only strategies (`"qutrit"`) have
    /// no circuits to differentially verify.
    pub decomposer: String,
    /// Named devices to compile onto.
    pub devices: Vec<(String, Topology)>,
    /// Worker threads for batch compilation (`0` = one per core). The
    /// report is identical regardless of this knob.
    pub jobs: usize,
    /// Compilation-cache capacity shared across the whole run (`0`
    /// disables).
    pub cache_size: usize,
    /// Minimize failing cases to a QASM reproducer.
    pub shrink: bool,
    /// Widest device that gets the *dense* statevector-equivalence
    /// check; wider cells fall back to the stabilizer backend for
    /// Clifford circuits and the sparse backend otherwise (under
    /// [`Backend::Auto`]), and always keep the legality and invariant
    /// checks.
    pub max_sim_qubits: usize,
    /// Random-state trials per equivalence check.
    pub trials: usize,
    /// Equivalence backend policy: [`Backend::Auto`] picks per cell,
    /// `Dense`/`Stabilizer`/`Sparse` force one backend. Cells a forced
    /// backend cannot simulate skip equivalence with a recorded
    /// [`SkipReason`], never fail — but a forced backend that skipped
    /// *every* cell makes [`FuzzReport::forced_backend_futile`] true.
    pub backend: Backend,
    /// Nonzero-amplitude budget for the sparse backend; past it a cell's
    /// equivalence is skipped with [`SkipReason::BudgetExceeded`].
    pub max_terms: usize,
}

impl FuzzSpec {
    /// The default grid: every family, all four standard routers, an
    /// 8-qubit line and a 4×2 grid (both fully simulable), 25 cases,
    /// shrinking off.
    pub fn new() -> Self {
        FuzzSpec {
            families: Family::ALL.to_vec(),
            cases: 25,
            seed: 0,
            routers: StrategyRegistry::standard()
                .names()
                .map(str::to_string)
                .collect(),
            decomposer: "standard".to_string(),
            devices: vec![
                ("line:8".to_string(), line(8)),
                ("grid:4x2".to_string(), grid(4, 2)),
            ],
            jobs: 0,
            cache_size: 256,
            shrink: false,
            max_sim_qubits: 8,
            trials: 2,
            backend: Backend::Auto,
            max_terms: DEFAULT_MAX_TERMS,
        }
    }
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec::new()
    }
}

/// A malformed [`FuzzSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzError {
    /// The spec cannot be run as given.
    InvalidSpec {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::InvalidSpec { reason } => write!(f, "invalid fuzz spec: {reason}"),
        }
    }
}

impl Error for FuzzError {}

/// Which check a failing cell tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzFailureKind {
    /// The compiler returned a diagnostic instead of a circuit.
    Compile,
    /// The compiled circuit violates hardware legality.
    Legality,
    /// The compiled circuit does not implement the generated program.
    Equivalence,
    /// A reported metric disagrees with the circuit it describes.
    Invariant,
}

impl fmt::Display for FuzzFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FuzzFailureKind::Compile => "compile",
            FuzzFailureKind::Legality => "legality",
            FuzzFailureKind::Equivalence => "equivalence",
            FuzzFailureKind::Invariant => "invariant",
        })
    }
}

/// A minimized failing input, ready to paste into a bug report.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReproducer {
    /// Gate count of the minimized circuit.
    pub gates: usize,
    /// Width of the minimized circuit.
    pub qubits: usize,
    /// The minimized circuit as OpenQASM 2.0.
    pub qasm: String,
}

/// One failing cell of the fuzz grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// Generated case name (`family-n…-s<seed>`); regenerates the input.
    pub case: String,
    /// Family registry name.
    pub family: String,
    /// Generation seed of the case.
    pub seed: u64,
    /// Device spec the cell compiled onto.
    pub device: String,
    /// Routing strategy the cell compiled through.
    pub router: String,
    /// The check that failed.
    pub kind: FuzzFailureKind,
    /// Human-readable failure detail.
    pub message: String,
    /// The shrunk reproducer, when shrinking ran.
    pub reproducer: Option<FuzzReproducer>,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FAIL [{}] case {} (seed {}) on {} via {}",
            self.kind, self.case, self.seed, self.device, self.router
        )?;
        writeln!(f, "  {}", self.message)?;
        if let Some(repro) = &self.reproducer {
            writeln!(
                f,
                "  reproducer ({} gates, {} qubits):",
                repro.gates, repro.qubits
            )?;
            for qasm_line in repro.qasm.lines() {
                writeln!(f, "    {qasm_line}")?;
            }
        }
        Ok(())
    }
}

/// Why a compiled cell's equivalence stage did not run. Skips are never
/// failures, but they are never silent either: each one is recorded in
/// [`FuzzReport::skips`] with the cell that hit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// The forced (or auto-selected) backend cannot simulate this cell's
    /// circuits at all — e.g. `--backend dense` on a device wider than
    /// the dense cap, or `--backend stabilizer` on a non-Clifford case.
    BackendUnsupported {
        /// Backend that declined the cell.
        backend: &'static str,
        /// The first obstacle it reported.
        detail: String,
    },
    /// The sparse backend started the check but the state grew past the
    /// `max_terms` budget mid-circuit.
    BudgetExceeded {
        /// The budget error as reported.
        detail: String,
    },
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::BackendUnsupported { backend, detail } => {
                write!(f, "backend '{backend}' cannot simulate this cell: {detail}")
            }
            SkipReason::BudgetExceeded { detail } => {
                write!(f, "sparse budget exceeded: {detail}")
            }
        }
    }
}

/// One compiled cell whose equivalence stage was skipped, with the
/// reason. Legality and metric-invariant checks still ran on the cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSkip {
    /// Generated case name.
    pub case: String,
    /// Device spec the cell compiled onto.
    pub device: String,
    /// Routing strategy the cell compiled through.
    pub router: String,
    /// Why equivalence did not run.
    pub reason: SkipReason,
}

/// The outcome of one fuzz run. [`fmt::Display`] renders the full
/// report; the text contains no timings, so it is byte-identical for
/// identical specs regardless of worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Family names fuzzed, in spec order.
    pub families: Vec<String>,
    /// Router names fuzzed, in spec order.
    pub routers: Vec<String>,
    /// The decomposer every cell compiled with.
    pub decomposer: String,
    /// Device names fuzzed, in spec order.
    pub devices: Vec<String>,
    /// Number of generated cases.
    pub cases: usize,
    /// Base seed of the run.
    pub seed: u64,
    /// `(case × device × router)` cells compiled and checked.
    pub cells: usize,
    /// Cells that additionally ran an equivalence check (any backend).
    pub equivalence_checked: usize,
    /// Equivalence checks that ran on the dense statevector backend.
    pub equivalence_dense: usize,
    /// Equivalence checks that ran on the stabilizer tableau backend.
    pub equivalence_stabilizer: usize,
    /// Equivalence checks that ran on the sparse term-map backend.
    pub equivalence_sparse: usize,
    /// Cells skipped because the case was wider than the device (never
    /// compiled; not in [`FuzzReport::cells`]).
    pub skipped: usize,
    /// The backend policy the run used.
    pub backend: Backend,
    /// Every compiled cell whose equivalence stage was skipped, with the
    /// reason, in deterministic grid order.
    pub skips: Vec<FuzzSkip>,
    /// Every failing cell, in deterministic grid order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when no cell failed any check.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// `true` when a forced (non-auto) backend was asked to verify cells
    /// but skipped equivalence on every single one — a run that checked
    /// nothing the user asked it to check, which callers should surface
    /// as an error rather than a de-facto PASS.
    pub fn forced_backend_futile(&self) -> bool {
        self.backend != Backend::Auto
            && self.cells > 0
            && self.equivalence_checked == 0
            && !self.skips.is_empty()
    }

    /// Skip totals grouped by reason text, in first-seen (grid) order.
    pub fn skip_totals(&self) -> Vec<(String, usize)> {
        let mut totals: Vec<(String, usize)> = Vec::new();
        for skip in &self.skips {
            let text = skip.reason.to_string();
            match totals.iter_mut().find(|(t, _)| *t == text) {
                Some((_, n)) => *n += 1,
                None => totals.push((text, 1)),
            }
        }
        totals
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: {} cases x {} devices x {} routers, seed {}",
            self.cases,
            self.devices.len(),
            self.routers.len(),
            self.seed
        )?;
        writeln!(f, "families: {}", self.families.join(", "))?;
        writeln!(f, "routers:  {}", self.routers.join(", "))?;
        writeln!(f, "decomposer: {}", self.decomposer)?;
        writeln!(f, "devices:  {}", self.devices.join(", "))?;
        if self.backend != Backend::Auto {
            writeln!(f, "backend:  {} (forced)", self.backend)?;
        }
        writeln!(
            f,
            "cells:    {} checked ({} equivalence-checked: {} dense + {} stabilizer + {} sparse; {} equivalence-skipped; {} not compiled: wider than device)",
            self.cells,
            self.equivalence_checked,
            self.equivalence_dense,
            self.equivalence_stabilizer,
            self.equivalence_sparse,
            self.skips.len(),
            self.skipped
        )?;
        for (reason, count) in self.skip_totals() {
            writeln!(f, "skipped:  {count} cells: {reason}")?;
        }
        if self.failures.is_empty() {
            write!(f, "result:   PASS (0 failures)")
        } else {
            writeln!(f, "result:   FAIL ({} failures)", self.failures.len())?;
            for failure in &self.failures {
                writeln!(f)?;
                write!(f, "{failure}")?;
            }
            Ok(())
        }
    }
}

/// Runs the fuzz grid with the standard [`StrategyRegistry`].
///
/// # Errors
///
/// Returns [`FuzzError::InvalidSpec`] for an empty or inconsistent spec.
/// Failing *cells* are not errors — they are collected in the report.
pub fn run_fuzz(spec: &FuzzSpec) -> Result<FuzzReport, FuzzError> {
    run_fuzz_with_registry(spec, &StrategyRegistry::standard())
}

/// [`run_fuzz`] over a caller-supplied registry — how the test suite
/// injects deliberately broken strategies to prove the harness catches
/// and shrinks real bugs.
///
/// # Errors
///
/// Returns [`FuzzError::InvalidSpec`] for an empty spec or a router name
/// missing from `registry`.
pub fn run_fuzz_with_registry(
    spec: &FuzzSpec,
    registry: &StrategyRegistry,
) -> Result<FuzzReport, FuzzError> {
    let invalid = |reason: &str| FuzzError::InvalidSpec {
        reason: reason.to_string(),
    };
    if spec.families.is_empty() {
        return Err(invalid("no families selected"));
    }
    if spec.cases == 0 {
        return Err(invalid("cases must be positive"));
    }
    if spec.routers.is_empty() {
        return Err(invalid("no routers selected"));
    }
    if spec.devices.is_empty() {
        return Err(invalid("no devices selected"));
    }
    if spec.trials == 0 {
        return Err(invalid("trials must be positive"));
    }
    for router in &spec.routers {
        if !registry.contains(router) {
            return Err(FuzzError::InvalidSpec {
                reason: format!(
                    "unknown router '{router}' (registered: {})",
                    registry.names().collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }
    let decomposers = DecomposerRegistry::standard();
    match decomposers.get(&spec.decomposer) {
        None => {
            return Err(FuzzError::InvalidSpec {
                reason: format!(
                    "unknown decomposer '{}' (registered: {})",
                    spec.decomposer,
                    decomposers.names().collect::<Vec<_>>().join(", ")
                ),
            });
        }
        Some(strategy) if !strategy.executable() => {
            return Err(FuzzError::InvalidSpec {
                reason: format!(
                    "decomposer '{}' is cost-model-only: it emits no circuits to verify",
                    spec.decomposer
                ),
            });
        }
        Some(_) => {}
    }

    let suite = generate_suite(&spec.families, spec.cases, spec.seed);
    let cache = CompilationCache::new(spec.cache_size);
    let jobs = if spec.jobs > 0 {
        spec.jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };

    let mut cells = 0usize;
    let mut equivalence_checked = 0usize;
    let mut equivalence_dense = 0usize;
    let mut equivalence_stabilizer = 0usize;
    let mut equivalence_sparse = 0usize;
    let mut skipped = 0usize;
    let mut skips: Vec<FuzzSkip> = Vec::new();
    let mut failures = Vec::new();

    for (device_name, topology) in &spec.devices {
        let mut fitting: Vec<GeneratedCircuit> = suite
            .iter()
            .filter(|case| case.circuit.num_qubits() <= topology.num_qubits())
            .cloned()
            .collect();
        skipped += (suite.len() - fitting.len()) * spec.routers.len();
        // Derive Clifford shadows by stripping T/T† gates where they are
        // the only path to wide-device equivalence: under a forced
        // stabilizer policy, or under auto on devices past even the
        // sparse backend's direct reach. (Within sparse reach the case
        // itself is checked at full width, so no shadow is needed.)
        let wide = topology.num_qubits() > spec.max_sim_qubits;
        let needs_shadows = wide
            && match spec.backend {
                Backend::Stabilizer => true,
                Backend::Auto => topology.num_qubits() > SPARSE_MAX_QUBITS,
                Backend::Dense | Backend::Sparse => false,
            };
        if needs_shadows {
            let shadows: Vec<GeneratedCircuit> = fitting
                .iter()
                .filter(|case| first_non_clifford(&case.circuit).is_some())
                .filter_map(|case| {
                    let stripped = strip_t_gates(&case.circuit);
                    if stripped.len() == case.circuit.len()
                        || first_non_clifford(&stripped).is_some()
                    {
                        return None;
                    }
                    let mut shadow = case.clone();
                    shadow.name = format!("{}-stript", case.name);
                    shadow.circuit = stripped;
                    shadow.circuit.set_name(shadow.name.clone());
                    Some(shadow)
                })
                .collect();
            fitting.extend(shadows);
        }
        // One owned copy of the device's slab, shared by every router's
        // batch call (the batch API takes a slice).
        let circuits: Vec<Circuit> = fitting.iter().map(|case| case.circuit.clone()).collect();

        for router in &spec.routers {
            let compiler = Compiler::builder()
                .router(router.clone())
                .decomposer(spec.decomposer.clone())
                .seed(spec.seed)
                .strategies(registry.clone())
                .build();

            // Compile the whole device×router slab through the cached
            // parallel batch compiler. The batch stops at its first
            // failure, so on an error the slab falls back to one
            // per-circuit compile each — a failing slab means more
            // failures are likely, and the fallback keeps total work
            // linear in the slab size even with the cache disabled.
            let mut compiled: Vec<(&GeneratedCircuit, CompiledProgram)> = Vec::new();
            let mut record_compile_failure = |case, diagnostic: Diagnostic| {
                failures.push(build_failure(
                    spec,
                    &compiler,
                    case,
                    device_name,
                    topology,
                    router,
                    FuzzFailureKind::Compile,
                    diagnostic.to_string(),
                ));
            };
            match compiler.compile_batch_parallel_with_cache(
                &circuits,
                topology,
                jobs,
                Some(&cache),
            ) {
                Ok(outcome) => {
                    for (case, (program, _)) in fitting.iter().zip(outcome.results) {
                        compiled.push((case, program));
                    }
                }
                Err(BatchDiagnostic { index, diagnostic }) => {
                    for (position, case) in fitting.iter().enumerate() {
                        if position == index {
                            cells += 1;
                            record_compile_failure(case, diagnostic.clone());
                            continue;
                        }
                        match compiler.compile(&case.circuit, topology) {
                            Ok(program) => compiled.push((case, program)),
                            Err(diagnostic) => {
                                cells += 1;
                                record_compile_failure(case, diagnostic);
                            }
                        }
                    }
                }
            }

            for (case, program) in compiled {
                cells += 1;
                let outcome = check_cell(&case.circuit, &program, topology, spec);
                match outcome.backend {
                    Some("stabilizer") => {
                        equivalence_checked += 1;
                        equivalence_stabilizer += 1;
                    }
                    Some("sparse") => {
                        equivalence_checked += 1;
                        equivalence_sparse += 1;
                    }
                    Some(_) => {
                        equivalence_checked += 1;
                        equivalence_dense += 1;
                    }
                    None => {}
                }
                if let Some(reason) = outcome.skip {
                    skips.push(FuzzSkip {
                        case: case.name.clone(),
                        device: device_name.clone(),
                        router: router.clone(),
                        reason,
                    });
                }
                if let Some((kind, message)) = outcome.failure {
                    failures.push(build_failure(
                        spec,
                        &compiler,
                        case,
                        device_name,
                        topology,
                        router,
                        kind,
                        message,
                    ));
                }
            }
        }
    }

    Ok(FuzzReport {
        families: spec.families.iter().map(|f| f.name().to_string()).collect(),
        routers: spec.routers.clone(),
        decomposer: spec.decomposer.clone(),
        devices: spec.devices.iter().map(|(n, _)| n.clone()).collect(),
        cases: spec.cases,
        seed: spec.seed,
        cells,
        equivalence_checked,
        equivalence_dense,
        equivalence_stabilizer,
        equivalence_sparse,
        skipped,
        backend: spec.backend,
        skips,
        failures,
    })
}

/// Picks the equivalence backend for one cell under the spec's policy,
/// or the [`SkipReason`] when no backend can simulate the pair
/// (equivalence is then skipped and recorded, never failed).
fn select_backend(
    spec: &FuzzSpec,
    width: usize,
    original: &Circuit,
    compiled: &Circuit,
) -> Result<Box<dyn Simulator>, SkipReason> {
    let first_obstacle = |sim: &dyn Simulator| -> String {
        sim.supports_circuit(original)
            .and_then(|()| sim.supports_circuit(compiled))
            .err()
            .map_or_else(|| "unsupported".to_string(), |e| e.to_string())
    };
    match spec.backend {
        Backend::Auto => auto_backend(
            width,
            &[original, compiled],
            spec.max_sim_qubits,
            spec.max_terms,
        )
        .ok_or(SkipReason::BackendUnsupported {
            backend: "auto",
            detail: format!(
                "non-Clifford circuits on a {width}-qubit register, beyond both the \
                         dense cap and the sparse backend's reach"
            ),
        }),
        Backend::Dense => {
            let cap = spec.max_sim_qubits.min(MAX_QUBITS);
            if width <= cap {
                Ok(Box::new(DenseSimulator::default()))
            } else {
                Err(SkipReason::BackendUnsupported {
                    backend: "dense",
                    detail: format!("device width {width} exceeds the dense cap of {cap} qubits"),
                })
            }
        }
        Backend::Stabilizer => {
            let stab = StabilizerSimulator::new();
            if stab.supports_circuit(original).is_ok() && stab.supports_circuit(compiled).is_ok() {
                Ok(Box::new(stab))
            } else {
                Err(SkipReason::BackendUnsupported {
                    backend: "stabilizer",
                    detail: first_obstacle(&stab),
                })
            }
        }
        Backend::Sparse => {
            let sparse = SparseSimulator::with_max_terms(spec.max_terms);
            if sparse.supports_circuit(original).is_ok()
                && sparse.supports_circuit(compiled).is_ok()
            {
                Ok(Box::new(sparse))
            } else {
                Err(SkipReason::BackendUnsupported {
                    backend: "sparse",
                    detail: first_obstacle(&sparse),
                })
            }
        }
    }
}

/// Runs every check on one compiled cell.
fn check_cell(
    original: &Circuit,
    program: &CompiledProgram,
    topology: &Topology,
    spec: &FuzzSpec,
) -> CellOutcome {
    let fail = |kind, message: String| CellOutcome {
        failure: Some((kind, message)),
        backend: None,
        skip: None,
    };
    if let Err(violation) = verify_legal(&program.circuit, topology) {
        return fail(FuzzFailureKind::Legality, violation.to_string());
    }
    if let Some(message) = stats_violation(&program.stats, &program.circuit) {
        return fail(FuzzFailureKind::Invariant, message);
    }
    let mut failure = None;
    let mut backend = None;
    let mut skip = None;
    match select_backend(spec, topology.num_qubits(), original, &program.circuit) {
        Err(reason) => skip = Some(reason),
        Ok(sim) => {
            backend = Some(sim.capability().name);
            match sim.compiled_equivalent(
                original,
                &program.circuit,
                &program.initial_layout.to_mapping(),
                &program.final_layout.to_mapping(),
                spec.trials,
                spec.seed,
            ) {
                Ok(true) => {}
                Ok(false) => {
                    failure = Some((
                        FuzzFailureKind::Equivalence,
                        "compiled circuit does not implement the generated program".to_string(),
                    ))
                }
                // A sparse budget blow-up mid-check is a recorded skip —
                // the verdict is unknown, never wrong.
                Err(e @ SimError::StateTooDense { .. }) => {
                    backend = None;
                    skip = Some(SkipReason::BudgetExceeded {
                        detail: e.to_string(),
                    });
                }
                Err(e) => {
                    failure = Some((
                        FuzzFailureKind::Invariant,
                        format!("equivalence check could not run: {e}"),
                    ))
                }
            }
        }
    }
    CellOutcome {
        failure,
        backend,
        skip,
    }
}

/// What [`check_cell`] found: the first failure (if any), the name of
/// the backend whose equivalence stage actually completed (`None` when
/// an earlier failure short-circuited it or no backend fits the cell),
/// and the skip reason when equivalence could not run.
struct CellOutcome {
    failure: Option<(FuzzFailureKind, String)>,
    backend: Option<&'static str>,
    skip: Option<SkipReason>,
}

/// The metric invariants: reported stats must describe the circuit they
/// accompany.
fn stats_violation(stats: &CompileStats, circuit: &Circuit) -> Option<String> {
    let counts = circuit.counts();
    if stats.two_qubit_gates != counts.two_qubit {
        return Some(format!(
            "stats claim {} two-qubit gates, circuit has {}",
            stats.two_qubit_gates, counts.two_qubit
        ));
    }
    let depth = circuit.depth();
    if stats.depth != depth {
        return Some(format!(
            "stats claim depth {}, circuit has {depth}",
            stats.depth
        ));
    }
    if let Some(gather) = stats.mean_gather_distance {
        if !gather.is_finite() || gather < 0.0 {
            return Some(format!("mean_gather_distance is {gather}"));
        }
    }
    if !stats.duration_us.is_finite() || stats.duration_us < 0.0 {
        return Some(format!("scheduled duration is {} µs", stats.duration_us));
    }
    None
}

/// Assembles a [`FuzzFailure`], shrinking the case first when the spec
/// asks for it.
#[allow(clippy::too_many_arguments)]
fn build_failure(
    spec: &FuzzSpec,
    compiler: &Compiler,
    case: &GeneratedCircuit,
    device: &str,
    topology: &Topology,
    router: &str,
    kind: FuzzFailureKind,
    message: String,
) -> FuzzFailure {
    let reproducer = spec.shrink.then(|| {
        let fails = |candidate: &Circuit| -> bool {
            match compiler.compile(candidate, topology) {
                Err(_) => kind == FuzzFailureKind::Compile,
                Ok(program) => check_cell(candidate, &program, topology, spec)
                    .failure
                    .is_some_and(|(k, _)| k == kind),
            }
        };
        let minimized = shrink_circuit(&case.circuit, &fails);
        FuzzReproducer {
            gates: minimized.len(),
            qubits: minimized.num_qubits(),
            qasm: trios_qasm::emit(&minimized),
        }
    });
    FuzzFailure {
        case: case.name.clone(),
        family: case.family.name().to_string(),
        seed: case.seed,
        device: device.to_string(),
        router: router.to_string(),
        kind,
        message,
        reproducer,
    }
}

/// Greedily minimizes `circuit` while `fails` holds: gate removal to a
/// fixed point (each surviving gate is individually necessary), then
/// compaction of untouched qubit lines, repeated until neither makes
/// progress. The result still reproduces the failure; on a predicate no
/// removal satisfies, the input comes back unchanged.
pub fn shrink_circuit(circuit: &Circuit, fails: &dyn Fn(&Circuit) -> bool) -> Circuit {
    let mut best = circuit.clone();
    loop {
        let mut progress = false;
        // Gate removal: try deleting each instruction; on success stay at
        // the same index (the next instruction slid into it).
        let mut i = 0;
        while i < best.len() {
            let mut instructions = best.instructions().to_vec();
            instructions.remove(i);
            let mut candidate = Circuit::from_instructions(best.num_qubits(), instructions)
                .expect("removing an instruction keeps the circuit valid");
            candidate.set_name(best.name().to_string());
            if fails(&candidate) {
                best = candidate;
                progress = true;
            } else {
                i += 1;
            }
        }
        // Qubit compaction: relabel the active qubits onto 0..k and drop
        // the idle lines.
        let active = best.active_qubits();
        if !active.is_empty() && active.len() < best.num_qubits() {
            let mut map = vec![0usize; best.num_qubits()];
            for (new, &old) in active.iter().enumerate() {
                map[old] = new;
            }
            if let Ok(candidate) = best.remapped(active.len(), &map) {
                if fails(&candidate) {
                    best = candidate;
                    progress = true;
                }
            }
        }
        if !progress {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_specs_are_rejected() {
        let assert_invalid = |spec: FuzzSpec, needle: &str| {
            let err = run_fuzz(&spec).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        };
        assert_invalid(
            FuzzSpec {
                families: Vec::new(),
                ..FuzzSpec::new()
            },
            "families",
        );
        assert_invalid(
            FuzzSpec {
                cases: 0,
                ..FuzzSpec::new()
            },
            "cases",
        );
        assert_invalid(
            FuzzSpec {
                routers: Vec::new(),
                ..FuzzSpec::new()
            },
            "routers",
        );
        assert_invalid(
            FuzzSpec {
                devices: Vec::new(),
                ..FuzzSpec::new()
            },
            "devices",
        );
        assert_invalid(
            FuzzSpec {
                routers: vec!["sabre".into()],
                ..FuzzSpec::new()
            },
            "sabre",
        );
        assert_invalid(
            FuzzSpec {
                decomposer: "margolus".into(),
                ..FuzzSpec::new()
            },
            "unknown decomposer 'margolus'",
        );
        assert_invalid(
            FuzzSpec {
                decomposer: "qutrit".into(),
                ..FuzzSpec::new()
            },
            "cost-model-only",
        );
    }

    #[test]
    fn every_executable_decomposer_passes_a_small_fixed_seed_run() {
        for decomposer in ["standard", "six", "eight", "tdepth", "relative-phase"] {
            let spec = FuzzSpec {
                cases: 2,
                seed: 5,
                families: vec![Family::ToffoliRipple],
                routers: vec!["trios".into()],
                decomposer: decomposer.into(),
                devices: vec![("line:8".into(), line(8))],
                jobs: 1,
                ..FuzzSpec::new()
            };
            let report = run_fuzz(&spec).unwrap();
            assert!(report.passed(), "{decomposer}: {report}");
            assert_eq!(report.equivalence_checked, 2, "{decomposer}");
            assert!(report.to_string().contains(decomposer), "{report}");
        }
    }

    /// The full acceptance run: every executable lowering differentially
    /// verified on the default grid — all generator families, all four
    /// routers, both simulable devices.
    #[test]
    #[ignore = "all decomposers x all families x all routers: run in the release --include-ignored CI job"]
    fn every_executable_decomposer_survives_every_family() {
        for decomposer in ["standard", "six", "eight", "tdepth", "relative-phase"] {
            let spec = FuzzSpec {
                cases: 24,
                seed: 11,
                decomposer: decomposer.into(),
                ..FuzzSpec::new()
            };
            let report = run_fuzz(&spec).unwrap();
            assert!(report.passed(), "{decomposer}: {report}");
            assert!(report.equivalence_checked > 0, "{decomposer}");
            let text = report.to_string();
            for family in Family::ALL {
                assert!(text.contains(family.name()), "{decomposer}: {text}");
            }
        }
    }

    #[test]
    fn small_fixed_seed_run_passes_and_counts_cells() {
        let spec = FuzzSpec {
            cases: 4,
            seed: 3,
            families: vec![Family::Layered, Family::ToffoliRipple],
            routers: vec!["baseline".into(), "trios".into()],
            devices: vec![("line:8".into(), line(8))],
            jobs: 1,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 8, "4 cases x 1 device x 2 routers");
        assert_eq!(report.equivalence_checked, 8);
        assert_eq!(report.equivalence_dense, 8, "line:8 is within dense reach");
        assert_eq!(report.equivalence_stabilizer, 0);
        assert_eq!(report.equivalence_sparse, 0);
        assert_eq!(report.skipped, 0);
        assert!(report.skips.is_empty(), "{report}");
        let text = report.to_string();
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("layered, toffoli-ripple"), "{text}");
    }

    #[test]
    fn too_wide_cases_are_skipped_not_failed() {
        let spec = FuzzSpec {
            cases: 6,
            seed: 0,
            families: vec![Family::Qft], // widths 3..=8
            routers: vec!["trios".into()],
            devices: vec![("line:4".into(), line(4))],
            jobs: 1,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells + report.skipped, 6);
        assert!(report.skipped > 0, "some QFT widths exceed line:4");
    }

    #[test]
    fn wide_clifford_cells_use_the_stabilizer_backend() {
        // 20-qubit Johannesburg is far beyond the dense cap; pure-Clifford
        // cases must still get routed-vs-input equivalence via the tableau.
        let spec = FuzzSpec {
            cases: 2,
            seed: 42,
            families: vec![Family::Clifford],
            routers: vec!["trios".into()],
            devices: vec![("johannesburg".into(), trios_topology::johannesburg())],
            jobs: 1,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 2);
        assert_eq!(report.equivalence_checked, 2);
        assert_eq!(report.equivalence_stabilizer, 2, "{report}");
        assert_eq!(report.equivalence_dense, 0);
        assert_eq!(report.skipped, 0);
        assert!(report.skips.is_empty());
    }

    #[test]
    fn clifford_cells_prefer_the_stabilizer_even_under_the_dense_cap() {
        // All-Clifford pairs go to the exact tableau regardless of width:
        // with the dense cap raised to cover the whole 20-qubit line, the
        // clifford family's counters must still land on the stabilizer —
        // a 2^20-amplitude dense replay would be pure waste.
        let spec = FuzzSpec {
            cases: 4,
            seed: 2,
            families: vec![Family::Clifford],
            routers: vec!["trios".into()],
            devices: vec![("line:20".into(), line(20))],
            jobs: 1,
            max_sim_qubits: 24,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 4);
        assert_eq!(report.equivalence_stabilizer, 4, "{report}");
        assert_eq!(report.equivalence_dense, 0);
        assert_eq!(report.equivalence_sparse, 0);
    }

    #[test]
    fn wide_non_clifford_cells_use_the_sparse_backend() {
        // A clifford-t case carries T gates, so the case itself cannot be
        // tableau-checked — but on 20-qubit Johannesburg the sparse
        // backend now verifies it at full device width, with no `-stript`
        // shadow needed.
        let spec = FuzzSpec {
            cases: 1,
            seed: 7,
            families: vec![Family::CliffordT],
            routers: vec!["trios".into()],
            devices: vec![("johannesburg".into(), trios_topology::johannesburg())],
            jobs: 1,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 1, "no shadow within sparse reach");
        assert_eq!(report.equivalence_dense, 0);
        assert_eq!(report.equivalence_sparse, 1, "{report}");
        assert!(report.skips.is_empty(), "{report}");

        // Forcing the stabilizer still derives the shadow: the original
        // cell skips with a recorded reason, the shadow is tableau-checked.
        let stab_only = FuzzSpec {
            backend: Backend::Stabilizer,
            ..spec.clone()
        };
        let report = run_fuzz(&stab_only).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 2, "original + -stript shadow");
        assert_eq!(report.equivalence_stabilizer, 1, "{report}");
        assert_eq!(report.skips.len(), 1);
        assert!(
            matches!(
                &report.skips[0].reason,
                SkipReason::BackendUnsupported {
                    backend: "stabilizer",
                    ..
                }
            ),
            "{report}"
        );
        assert!(!report.forced_backend_futile(), "the shadow was checked");

        // A dense-only policy derives no shadows and skips equivalence
        // entirely on a device this wide — recorded, and flagged futile.
        let dense_only = FuzzSpec {
            backend: Backend::Dense,
            ..spec
        };
        let report = run_fuzz(&dense_only).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 1);
        assert_eq!(report.equivalence_checked, 0);
        assert_eq!(report.skips.len(), 1);
        assert!(report.forced_backend_futile(), "{report}");
        let text = report.to_string();
        assert!(text.contains("exceeds the dense cap"), "{text}");
    }

    #[test]
    fn sparse_budget_blowup_is_a_recorded_skip_not_a_verdict() {
        // An absurdly small budget: every sparse check aborts mid-circuit
        // with StateTooDense, which must surface as a skip (unknown
        // verdict), not a pass or an invariant failure.
        let spec = FuzzSpec {
            cases: 2,
            seed: 7,
            families: vec![Family::CliffordT],
            routers: vec!["trios".into()],
            devices: vec![("johannesburg".into(), trios_topology::johannesburg())],
            jobs: 1,
            backend: Backend::Sparse,
            max_terms: 2,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.equivalence_checked, 0);
        assert_eq!(report.skips.len(), report.cells);
        assert!(
            report
                .skips
                .iter()
                .all(|s| matches!(s.reason, SkipReason::BudgetExceeded { .. })),
            "{report}"
        );
        assert!(report.forced_backend_futile());
        assert!(report.to_string().contains("sparse budget exceeded"));
    }

    #[test]
    fn forced_dense_on_a_100_qubit_device_skips_every_cell_with_reasons() {
        // The regression the skip-reason machinery exists for: forcing
        // dense on a 100-qubit device used to read as a green PASS while
        // checking nothing.
        let spec = FuzzSpec {
            cases: 2,
            seed: 4,
            families: vec![Family::ToffoliRipple],
            routers: vec!["trios".into()],
            devices: vec![("grid:10x10".into(), grid(10, 10))],
            jobs: 1,
            backend: Backend::Dense,
            ..FuzzSpec::new()
        };
        let report = run_fuzz(&spec).unwrap();
        assert!(report.passed(), "failures and skips are distinct");
        assert!(report.cells > 0);
        assert_eq!(report.equivalence_checked, 0);
        assert_eq!(report.skips.len(), report.cells);
        assert!(report.forced_backend_futile(), "{report}");

        // The same grid under auto verifies every cell via sparse.
        let auto = FuzzSpec {
            backend: Backend::Auto,
            ..spec
        };
        let report = run_fuzz(&auto).unwrap();
        assert!(report.passed(), "{report}");
        assert_eq!(report.equivalence_checked, report.cells);
        assert_eq!(report.equivalence_sparse, report.cells, "{report}");
        assert!(!report.forced_backend_futile());
    }

    #[test]
    fn shrink_finds_a_minimal_gate_set() {
        // Predicate: fails while a CCX on qubits (0,1,2) is present.
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 3).ccx(0, 1, 2).t(4).cx(3, 4);
        let fails = |candidate: &Circuit| candidate.iter().any(|i| i.gate() == trios_ir::Gate::Ccx);
        let minimal = shrink_circuit(&c, &fails);
        assert_eq!(minimal.len(), 1, "{minimal}");
        assert_eq!(minimal.num_qubits(), 3, "idle qubits compacted away");
        assert!(fails(&minimal));
    }

    #[test]
    fn shrink_returns_input_when_nothing_can_be_removed() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let minimal = shrink_circuit(&c, &|candidate: &Circuit| !candidate.is_empty());
        assert_eq!(minimal.len(), 1);
        assert_eq!(minimal.num_qubits(), 2);
    }
}
