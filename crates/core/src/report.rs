//! Per-compilation instrumentation: [`CompileStats`] (static metrics of
//! the output) and [`CompileReport`] (per-pass wall times and gate-count
//! deltas).

use std::fmt;
use std::time::Duration;
use trios_ir::GateCounts;

/// Static metrics of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct CompileStats {
    /// SWAPs inserted by routing (before lowering to CNOTs).
    pub swap_count: usize,
    /// Two-qubit gates in the final circuit — the paper's primary metric.
    pub two_qubit_gates: usize,
    /// Single-qubit gates in the final circuit.
    pub one_qubit_gates: usize,
    /// Measurements in the final circuit.
    pub measurements: usize,
    /// Gate-layer depth of the final circuit.
    pub depth: usize,
    /// ASAP-scheduled duration Δ (µs) under Johannesburg gate times.
    pub duration_us: f64,
    /// Mean gather distance over the trios the router gathered — the
    /// paper's per-Toffoli communication metric, averaged. `None` when the
    /// routing strategy recorded no trio events (no three-qubit gates, or
    /// a decompose-first router).
    pub mean_gather_distance: Option<f64>,
}

impl CompileStats {
    /// Assembles stats from their components (the struct is
    /// `#[non_exhaustive]`, so downstream crates construct it here).
    /// `mean_gather_distance` starts as `None`; the pipeline fills it from
    /// the router trace.
    pub fn new(swap_count: usize, counts: GateCounts, depth: usize, duration_us: f64) -> Self {
        CompileStats {
            swap_count,
            two_qubit_gates: counts.two_qubit,
            one_qubit_gates: counts.one_qubit,
            measurements: counts.measure,
            depth,
            duration_us,
            mean_gather_distance: None,
        }
    }
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} two-qubit, {} one-qubit, {} measurements, {} SWAPs, depth {}, {:.3} µs",
            self.two_qubit_gates,
            self.one_qubit_gates,
            self.measurements,
            self.swap_count,
            self.depth,
            self.duration_us
        )
    }
}

/// Instrumentation of one pass execution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct PassRecord {
    /// The pass name, as reported by [`Pass::name`](crate::Pass::name).
    pub pass: &'static str,
    /// Wall-clock time the pass took.
    pub wall_time: Duration,
    /// Gate counts entering the pass.
    pub gates_before: GateCounts,
    /// Gate counts leaving the pass.
    pub gates_after: GateCounts,
    /// Circuit depth entering the pass.
    pub depth_before: usize,
    /// Circuit depth leaving the pass.
    pub depth_after: usize,
}

impl PassRecord {
    /// Change in total instruction count (positive = the pass grew the
    /// circuit).
    pub fn total_delta(&self) -> isize {
        self.gates_after.total as isize - self.gates_before.total as isize
    }

    /// Change in two-qubit gate count.
    pub fn two_qubit_delta(&self) -> isize {
        self.gates_after.two_qubit as isize - self.gates_before.two_qubit as isize
    }

    /// Change in circuit depth.
    pub fn depth_delta(&self) -> isize {
        self.depth_after as isize - self.depth_before as isize
    }
}

impl fmt::Display for PassRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} {:>9.1?}  gates {:>5} -> {:<5} ({:+})  2q {:>5} -> {:<5} ({:+})  depth {:>4} -> {:<4} ({:+})",
            self.pass,
            self.wall_time,
            self.gates_before.total,
            self.gates_after.total,
            self.total_delta(),
            self.gates_before.two_qubit,
            self.gates_after.two_qubit,
            self.two_qubit_delta(),
            self.depth_before,
            self.depth_after,
            self.depth_delta(),
        )
    }
}

/// Everything a compilation run reports beyond its output circuit: one
/// [`PassRecord`] per executed pass plus the final [`CompileStats`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CompileReport {
    /// One record per executed pass, in execution order.
    pub passes: Vec<PassRecord>,
    /// Static metrics of the final circuit.
    pub stats: CompileStats,
    /// Total wall-clock time across all passes.
    pub total_time: Duration,
}

impl CompileReport {
    /// Assembles a report from pass records and final stats.
    pub fn new(passes: Vec<PassRecord>, stats: CompileStats) -> Self {
        let total_time = passes.iter().map(|p| p.wall_time).sum();
        CompileReport {
            passes,
            stats,
            total_time,
        }
    }

    /// The record of the named pass, if it ran.
    pub fn pass(&self, name: &str) -> Option<&PassRecord> {
        self.passes.iter().find(|p| p.pass == name)
    }

    /// Names of the executed passes, in order.
    pub fn pass_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.passes.iter().map(|p| p.pass)
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pass                  wall time  gate/2q/depth deltas")?;
        for record in &self.passes {
            writeln!(f, "{record}")?;
        }
        writeln!(f, "total: {:.1?}", self.total_time)?;
        write!(f, "final: {}", self.stats)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::{CompileReport, CompileStats, PassRecord};
    use serde::{Serialize, SerializeStruct, Serializer};

    impl Serialize for CompileStats {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("CompileStats", 7)?;
            s.serialize_field("swap_count", &self.swap_count)?;
            s.serialize_field("two_qubit_gates", &self.two_qubit_gates)?;
            s.serialize_field("one_qubit_gates", &self.one_qubit_gates)?;
            s.serialize_field("measurements", &self.measurements)?;
            s.serialize_field("depth", &self.depth)?;
            s.serialize_field("duration_us", &self.duration_us)?;
            s.serialize_field("mean_gather_distance", &self.mean_gather_distance)?;
            s.end()
        }
    }

    impl Serialize for PassRecord {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("PassRecord", 8)?;
            s.serialize_field("pass", self.pass)?;
            s.serialize_field("wall_time_s", &self.wall_time.as_secs_f64())?;
            s.serialize_field("gates_before", &self.gates_before.total)?;
            s.serialize_field("gates_after", &self.gates_after.total)?;
            s.serialize_field("two_qubit_before", &self.gates_before.two_qubit)?;
            s.serialize_field("two_qubit_after", &self.gates_after.two_qubit)?;
            s.serialize_field("depth_before", &self.depth_before)?;
            s.serialize_field("depth_after", &self.depth_after)?;
            s.end()
        }
    }

    impl Serialize for CompileReport {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("CompileReport", 3)?;
            s.serialize_field("passes", &self.passes)?;
            s.serialize_field("stats", &self.stats)?;
            s.serialize_field("total_time_s", &self.total_time.as_secs_f64())?;
            s.end()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pass: &'static str, before: usize, after: usize) -> PassRecord {
        let gates_before = GateCounts {
            total: before,
            two_qubit: before / 2,
            ..GateCounts::default()
        };
        let gates_after = GateCounts {
            total: after,
            two_qubit: after / 2,
            ..GateCounts::default()
        };
        PassRecord {
            pass,
            wall_time: Duration::from_micros(120),
            gates_before,
            gates_after,
            depth_before: before,
            depth_after: after,
        }
    }

    #[test]
    fn deltas_are_signed() {
        let r = record("optimize", 30, 24);
        assert_eq!(r.total_delta(), -6);
        assert_eq!(r.two_qubit_delta(), -3);
        assert_eq!(r.depth_delta(), -6);
    }

    #[test]
    fn report_finds_passes_by_name() {
        let report = CompileReport::new(
            vec![record("route-trios", 10, 18), record("optimize", 18, 14)],
            CompileStats::default(),
        );
        assert_eq!(report.pass("optimize").unwrap().total_delta(), -4);
        assert!(report.pass("nonexistent").is_none());
        assert_eq!(
            report.pass_names().collect::<Vec<_>>(),
            ["route-trios", "optimize"]
        );
        assert_eq!(report.total_time, Duration::from_micros(240));
    }

    #[test]
    fn display_lists_every_pass() {
        let report = CompileReport::new(vec![record("lower", 5, 9)], CompileStats::default());
        let text = report.to_string();
        assert!(text.contains("lower"));
        assert!(text.contains("total:"));
        assert!(text.contains("final:"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn report_serializes_to_json() {
        let report = CompileReport::new(vec![record("route-trios", 4, 7)], CompileStats::default());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"passes\":["));
        assert!(json.contains("\"pass\":\"route-trios\""));
        assert!(json.contains("\"stats\":{"));
        assert!(json.contains("\"two_qubit_gates\":0"));
    }
}
