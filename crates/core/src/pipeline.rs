//! The end-to-end compilation pipelines (paper Figure 2).

use crate::{CompileOptions, Pipeline};
use std::error::Error;
use std::fmt;
use trios_ir::Circuit;
use trios_noise::{estimate_success, Calibration, SuccessEstimate};
use trios_passes::{decompose_toffolis, lower_to_hardware_gates, optimize};
use trios_route::{
    check_legal, initial_layout, route_baseline, route_trios, Layout, RouteError, RouterOptions,
    ToffoliPolicy,
};
use trios_schedule::{schedule_asap, GateDurations};
use trios_topology::Topology;

/// Errors from the end-to-end compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Mapping/routing failed.
    Route(RouteError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Route(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Route(e) => Some(e),
        }
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Route(e)
    }
}

/// Static metrics of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompileStats {
    /// SWAPs inserted by routing (before lowering to CNOTs).
    pub swap_count: usize,
    /// Two-qubit gates in the final circuit — the paper's primary metric.
    pub two_qubit_gates: usize,
    /// Single-qubit gates in the final circuit.
    pub one_qubit_gates: usize,
    /// Measurements in the final circuit.
    pub measurements: usize,
    /// Gate-layer depth of the final circuit.
    pub depth: usize,
    /// ASAP-scheduled duration Δ (µs) under Johannesburg gate times.
    pub duration_us: f64,
}

/// A fully compiled program: hardware gate set, coupling-legal, scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The executable circuit over physical qubits (1q gates, CX, and
    /// measurements only; every CX on a coupling edge).
    pub circuit: Circuit,
    /// Where each logical qubit started.
    pub initial_layout: Layout,
    /// Where each logical qubit ended.
    pub final_layout: Layout,
    /// Static metrics.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// Success probability under the paper's §2.6 model.
    pub fn estimate_success(&self, calibration: &Calibration) -> SuccessEstimate {
        estimate_success(&self.circuit, calibration)
    }
}

/// Compiles `circuit` (a Toffoli-level program: 1q, 2q, and `ccx` gates)
/// for `topology` under `options`.
///
/// Pipeline stages (paper Fig. 2):
///
/// 1. *Baseline*: decompose Toffolis up-front (canonical roles) — or, for
///    *Trios*, keep them.
/// 2. Initial mapping.
/// 3. Routing (pair router / trio router with inline mapping-aware
///    decomposition).
/// 4. Lowering to hardware gates (SWAP → 3 CX and friends).
/// 5. Gate-level optimization (inverse cancellation, 1q-run merging).
/// 6. ASAP scheduling for the duration metric.
///
/// The output is checked against the coupling graph before returning
/// (debug builds assert; release builds rely on the routed-by-construction
/// invariant, which the test suite exercises heavily).
///
/// # Errors
///
/// Returns [`CompileError::Route`] when the circuit does not fit the
/// device or interacting qubits are disconnected.
pub fn compile(
    circuit: &Circuit,
    topology: &Topology,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let layout = initial_layout(circuit, topology, &options.mapping)?;
    let router_options = RouterOptions {
        toffoli: options.toffoli,
        direction: options.direction,
        metric: options.metric.clone(),
        seed: options.seed,
        lower_toffoli: true,
        lookahead: options.lookahead,
        bridge: options.bridge,
    };

    let routed = match options.pipeline {
        Pipeline::Baseline => {
            let decomposed = decompose_toffolis(circuit, options.toffoli);
            route_baseline(&decomposed, topology, layout, &router_options)?
        }
        Pipeline::Trios => route_trios(circuit, topology, layout, &router_options)?,
    };

    let lowered = lower_to_hardware_gates(&routed.circuit, options.toffoli);
    let optimized = optimize(&lowered, options.optimize);
    debug_assert!(optimized.is_hardware_lowered());
    debug_assert!(check_legal(&optimized, topology, ToffoliPolicy::Forbid).is_ok());

    let schedule = schedule_asap(&optimized, &GateDurations::johannesburg());
    let counts = optimized.counts();
    let stats = CompileStats {
        swap_count: routed.swap_count,
        two_qubit_gates: counts.two_qubit,
        one_qubit_gates: counts.one_qubit,
        measurements: counts.measure,
        depth: optimized.depth(),
        duration_us: schedule.total_duration_us(),
    };
    Ok(CompiledProgram {
        circuit: optimized,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        stats,
    })
}

/// Appends measurements of the listed logical qubits to a copy of
/// `circuit` — the form the success-rate experiments compile (the paper
/// measures the three qubits of interest in the Toffoli experiments, and
/// all data qubits in the benchmark studies).
pub fn with_measurements(circuit: &Circuit, qubits: &[usize]) -> Circuit {
    let mut out = circuit.clone();
    for &q in qubits {
        out.measure(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PaperConfig;
    use trios_sim::compiled_equivalent;
    use trios_topology::{johannesburg, line, PaperDevice};

    fn verify(original: &Circuit, compiled: &CompiledProgram) -> bool {
        compiled_equivalent(
            original,
            &compiled.circuit,
            &compiled.initial_layout.to_mapping(),
            &compiled.final_layout.to_mapping(),
            2,
            11,
            1e-8,
        )
        .unwrap()
    }

    #[test]
    fn compiles_single_toffoli_all_paper_configs() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let topo = johannesburg();
        for config in PaperConfig::FIG6 {
            let compiled = compile(&program, &topo, &config.to_options(0)).unwrap();
            assert!(compiled.circuit.is_hardware_lowered(), "{config:?}");
            assert!(
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok(),
                "{config:?}"
            );
            assert!(verify(&program, &compiled), "{config:?}");
        }
    }

    #[test]
    fn trios_beats_baseline_on_distant_toffoli() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let topo = johannesburg();
        let place = trios_route::InitialMapping::Fixed(vec![6, 17, 3]);
        let mut base_opts = PaperConfig::QiskitBaseline.to_options(0);
        base_opts.mapping = place.clone();
        let mut trios_opts = PaperConfig::Trios.to_options(0);
        trios_opts.mapping = place;
        let base = compile(&program, &topo, &base_opts).unwrap();
        let trios = compile(&program, &topo, &trios_opts).unwrap();
        assert!(
            trios.stats.two_qubit_gates < base.stats.two_qubit_gates,
            "trios {} vs baseline {}",
            trios.stats.two_qubit_gates,
            base.stats.two_qubit_gates
        );
        assert!(verify(&program, &trios));
        assert!(verify(&program, &base));
    }

    #[test]
    fn success_estimate_orders_with_gate_count() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let program = with_measurements(&program, &[0, 1, 2]);
        let topo = johannesburg();
        let place = trios_route::InitialMapping::Fixed(vec![0, 12, 15]);
        let cal = Calibration::johannesburg_2020_08_19();
        let mut ps = Vec::new();
        for config in [PaperConfig::QiskitBaseline, PaperConfig::TriosEight] {
            let mut opts = config.to_options(0);
            opts.mapping = place.clone();
            let compiled = compile(&program, &topo, &opts).unwrap();
            ps.push(compiled.estimate_success(&cal).probability());
        }
        assert!(
            ps[1] > ps[0],
            "Trios-8 ({}) should beat baseline ({})",
            ps[1],
            ps[0]
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut program = Circuit::new(4);
        program.h(0).ccx(0, 1, 2).cx(2, 3);
        let topo = line(6);
        let compiled = compile(&program, &topo, &CompileOptions::with_seed(4)).unwrap();
        let counts = compiled.circuit.counts();
        assert_eq!(compiled.stats.two_qubit_gates, counts.two_qubit);
        assert_eq!(compiled.stats.one_qubit_gates, counts.one_qubit);
        assert_eq!(compiled.stats.depth, compiled.circuit.depth());
        assert!(compiled.stats.duration_us > 0.0);
    }

    #[test]
    fn toffoli_free_circuits_identical_across_pipelines() {
        // The paper's control claim: Trios has no effect without Toffolis.
        let mut program = Circuit::new(5);
        program.h(0).cx(0, 4).cx(1, 3).cx(2, 4).h(2);
        let topo = line(5);
        let base = compile(
            &program,
            &topo,
            &CompileOptions {
                pipeline: Pipeline::Baseline,
                direction: trios_route::DirectionPolicy::MoveFirst,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let trios = compile(
            &program,
            &topo,
            &CompileOptions {
                pipeline: Pipeline::Trios,
                direction: trios_route::DirectionPolicy::MoveFirst,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(base.circuit, trios.circuit);
        assert_eq!(base.stats, trios.stats);
    }

    #[test]
    fn all_paper_devices_compile_a_toffoli_program() {
        let mut program = Circuit::new(6);
        program.h(0).ccx(0, 2, 4).ccx(1, 3, 5).cx(0, 5);
        for device in PaperDevice::ALL {
            let topo = device.build();
            let compiled = compile(&program, &topo, &CompileOptions::with_seed(2)).unwrap();
            assert!(
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok(),
                "{device:?}"
            );
            assert!(verify(&program, &compiled), "{device:?}");
        }
    }

    #[test]
    fn extended_three_qubit_gates_compile_on_both_pipelines() {
        // The §4 extension: ccz and cswap ride the same trio machinery.
        let mut program = Circuit::new(6);
        program.h(0).ccz(0, 2, 4).cswap(1, 3, 5).ccx(0, 1, 5);
        let topo = johannesburg();
        for pipeline in [Pipeline::Baseline, Pipeline::Trios] {
            let compiled = compile(
                &program,
                &topo,
                &CompileOptions {
                    pipeline,
                    ..CompileOptions::with_seed(3)
                },
            )
            .unwrap();
            assert!(compiled.circuit.is_hardware_lowered(), "{pipeline:?}");
            assert!(
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok(),
                "{pipeline:?}"
            );
            assert!(verify(&program, &compiled), "{pipeline:?}");
        }
    }

    #[test]
    fn trios_beats_baseline_on_distant_ccz() {
        // CCZ profits from the same gather + symmetric decomposition.
        let mut program = Circuit::new(3);
        program.ccz(0, 1, 2);
        let topo = johannesburg();
        let place = trios_route::InitialMapping::Fixed(vec![6, 17, 3]);
        let mut base_opts = PaperConfig::QiskitBaseline.to_options(0);
        base_opts.mapping = place.clone();
        let mut trios_opts = PaperConfig::Trios.to_options(0);
        trios_opts.mapping = place;
        let base = compile(&program, &topo, &base_opts).unwrap();
        let trios = compile(&program, &topo, &trios_opts).unwrap();
        assert!(
            trios.stats.two_qubit_gates < base.stats.two_qubit_gates,
            "trios {} vs baseline {}",
            trios.stats.two_qubit_gates,
            base.stats.two_qubit_gates
        );
        assert!(verify(&program, &trios));
        assert!(verify(&program, &base));
    }

    #[test]
    fn error_type_wraps_route_errors() {
        let program = Circuit::new(25);
        let topo = johannesburg();
        let err = compile(&program, &topo, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Route(_)));
        assert!(err.to_string().contains("routing failed"));
    }
}
