//! The legacy single-call entrypoint, now a thin shim over the
//! [`Compiler`] pass-pipeline API (paper Figure 2).

use crate::{CompileOptions, CompileStats, Compiler, Diagnostic};
use std::error::Error;
use std::fmt;
use trios_ir::Circuit;
use trios_noise::{estimate_success, Calibration, SuccessEstimate};
use trios_route::{Layout, RouteError};
use trios_topology::Topology;

/// Errors from the end-to-end compiler.
///
/// Kept for compatibility with the original single-call API; the pass
/// pipeline itself reports the richer [`Diagnostic`] hierarchy, which
/// this type wraps.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// Mapping/routing failed.
    Route(RouteError),
    /// Any other pass failure (legality, lowering, validation).
    Diagnostic(Diagnostic),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Route(e) => write!(f, "routing failed: {e}"),
            CompileError::Diagnostic(d) => write!(f, "compilation failed: {d}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Route(e) => Some(e),
            CompileError::Diagnostic(d) => Some(d),
        }
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Route(e)
    }
}

impl From<Diagnostic> for CompileError {
    fn from(d: Diagnostic) -> Self {
        match d {
            Diagnostic::Routing { source, .. } => CompileError::Route(source),
            other => CompileError::Diagnostic(other),
        }
    }
}

/// A fully compiled program: hardware gate set, coupling-legal, scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The executable circuit over physical qubits (1q gates, CX, and
    /// measurements only; every CX on a coupling edge).
    pub circuit: Circuit,
    /// Where each logical qubit started.
    pub initial_layout: Layout,
    /// Where each logical qubit ended.
    pub final_layout: Layout,
    /// Static metrics.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// Success probability under the paper's §2.6 model.
    pub fn estimate_success(&self, calibration: &Calibration) -> SuccessEstimate {
        estimate_success(&self.circuit, calibration)
    }
}

/// Compiles `circuit` (a Toffoli-level program: 1q, 2q, and `ccx` gates)
/// for `topology` under `options`.
///
/// This is the original one-shot entrypoint, kept as a compatibility shim
/// over [`Compiler`]: it builds the standard pipeline for `options`
/// (paper Fig. 2) and runs it. Use [`Compiler::builder`] directly for
/// per-pass reports, custom pipelines, or batch compilation.
///
/// # Errors
///
/// Returns [`CompileError::Route`] when the circuit does not fit the
/// device or interacting qubits are disconnected, and
/// [`CompileError::Diagnostic`] for any other pass failure (with
/// validation on — the default — that includes legality and lowering
/// violations that the original implementation only `debug_assert!`ed).
pub fn compile(
    circuit: &Circuit,
    topology: &Topology,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    Compiler::new(options.clone())
        .compile(circuit, topology)
        .map_err(CompileError::from)
}

/// Appends measurements of the listed logical qubits to a copy of
/// `circuit` — the form the success-rate experiments compile (the paper
/// measures the three qubits of interest in the Toffoli experiments, and
/// all data qubits in the benchmark studies).
pub fn with_measurements(circuit: &Circuit, qubits: &[usize]) -> Circuit {
    let mut out = circuit.clone();
    for &q in qubits {
        out.measure(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PaperConfig, Pipeline};
    use trios_route::{check_legal, ToffoliPolicy};
    use trios_sim::compiled_equivalent;
    use trios_topology::{johannesburg, line, PaperDevice};

    fn verify(original: &Circuit, compiled: &CompiledProgram) -> bool {
        compiled_equivalent(
            original,
            &compiled.circuit,
            &compiled.initial_layout.to_mapping(),
            &compiled.final_layout.to_mapping(),
            2,
            11,
            1e-8,
        )
        .unwrap()
    }

    #[test]
    fn compiles_single_toffoli_all_paper_configs() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let topo = johannesburg();
        for config in PaperConfig::FIG6 {
            let compiled = compile(&program, &topo, &config.to_options(0)).unwrap();
            assert!(compiled.circuit.is_hardware_lowered(), "{config:?}");
            assert!(
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok(),
                "{config:?}"
            );
            assert!(verify(&program, &compiled), "{config:?}");
        }
    }

    #[test]
    fn trios_beats_baseline_on_distant_toffoli() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let topo = johannesburg();
        let place = trios_route::InitialMapping::Fixed(vec![6, 17, 3]);
        let mut base_opts = PaperConfig::QiskitBaseline.to_options(0);
        base_opts.mapping = place.clone();
        let mut trios_opts = PaperConfig::Trios.to_options(0);
        trios_opts.mapping = place;
        let base = compile(&program, &topo, &base_opts).unwrap();
        let trios = compile(&program, &topo, &trios_opts).unwrap();
        assert!(
            trios.stats.two_qubit_gates < base.stats.two_qubit_gates,
            "trios {} vs baseline {}",
            trios.stats.two_qubit_gates,
            base.stats.two_qubit_gates
        );
        assert!(verify(&program, &trios));
        assert!(verify(&program, &base));
    }

    #[test]
    fn success_estimate_orders_with_gate_count() {
        let mut program = Circuit::new(3);
        program.ccx(0, 1, 2);
        let program = with_measurements(&program, &[0, 1, 2]);
        let topo = johannesburg();
        let place = trios_route::InitialMapping::Fixed(vec![0, 12, 15]);
        let cal = Calibration::johannesburg_2020_08_19();
        let mut ps = Vec::new();
        for config in [PaperConfig::QiskitBaseline, PaperConfig::TriosEight] {
            let mut opts = config.to_options(0);
            opts.mapping = place.clone();
            let compiled = compile(&program, &topo, &opts).unwrap();
            ps.push(compiled.estimate_success(&cal).probability());
        }
        assert!(
            ps[1] > ps[0],
            "Trios-8 ({}) should beat baseline ({})",
            ps[1],
            ps[0]
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut program = Circuit::new(4);
        program.h(0).ccx(0, 1, 2).cx(2, 3);
        let topo = line(6);
        let compiled = compile(&program, &topo, &CompileOptions::with_seed(4)).unwrap();
        let counts = compiled.circuit.counts();
        assert_eq!(compiled.stats.two_qubit_gates, counts.two_qubit);
        assert_eq!(compiled.stats.one_qubit_gates, counts.one_qubit);
        assert_eq!(compiled.stats.depth, compiled.circuit.depth());
        assert!(compiled.stats.duration_us > 0.0);
    }

    #[test]
    fn toffoli_free_circuits_identical_across_pipelines() {
        // The paper's control claim: Trios has no effect without Toffolis.
        let mut program = Circuit::new(5);
        program.h(0).cx(0, 4).cx(1, 3).cx(2, 4).h(2);
        let topo = line(5);
        let base = compile(
            &program,
            &topo,
            &CompileOptions {
                pipeline: Pipeline::Baseline,
                direction: trios_route::DirectionPolicy::MoveFirst,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let trios = compile(
            &program,
            &topo,
            &CompileOptions {
                pipeline: Pipeline::Trios,
                direction: trios_route::DirectionPolicy::MoveFirst,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(base.circuit, trios.circuit);
        assert_eq!(base.stats, trios.stats);
    }

    #[test]
    fn all_paper_devices_compile_a_toffoli_program() {
        let mut program = Circuit::new(6);
        program.h(0).ccx(0, 2, 4).ccx(1, 3, 5).cx(0, 5);
        for device in PaperDevice::ALL {
            let topo = device.build();
            let compiled = compile(&program, &topo, &CompileOptions::with_seed(2)).unwrap();
            assert!(
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok(),
                "{device:?}"
            );
            assert!(verify(&program, &compiled), "{device:?}");
        }
    }

    #[test]
    fn extended_three_qubit_gates_compile_on_both_pipelines() {
        // The §4 extension: ccz and cswap ride the same trio machinery.
        let mut program = Circuit::new(6);
        program.h(0).ccz(0, 2, 4).cswap(1, 3, 5).ccx(0, 1, 5);
        let topo = johannesburg();
        for pipeline in [Pipeline::Baseline, Pipeline::Trios] {
            let compiled = compile(
                &program,
                &topo,
                &CompileOptions {
                    pipeline,
                    ..CompileOptions::with_seed(3)
                },
            )
            .unwrap();
            assert!(compiled.circuit.is_hardware_lowered(), "{pipeline:?}");
            assert!(
                check_legal(&compiled.circuit, &topo, ToffoliPolicy::Forbid).is_ok(),
                "{pipeline:?}"
            );
            assert!(verify(&program, &compiled), "{pipeline:?}");
        }
    }

    #[test]
    fn trios_beats_baseline_on_distant_ccz() {
        // CCZ profits from the same gather + symmetric decomposition.
        let mut program = Circuit::new(3);
        program.ccz(0, 1, 2);
        let topo = johannesburg();
        let place = trios_route::InitialMapping::Fixed(vec![6, 17, 3]);
        let mut base_opts = PaperConfig::QiskitBaseline.to_options(0);
        base_opts.mapping = place.clone();
        let mut trios_opts = PaperConfig::Trios.to_options(0);
        trios_opts.mapping = place;
        let base = compile(&program, &topo, &base_opts).unwrap();
        let trios = compile(&program, &topo, &trios_opts).unwrap();
        assert!(
            trios.stats.two_qubit_gates < base.stats.two_qubit_gates,
            "trios {} vs baseline {}",
            trios.stats.two_qubit_gates,
            base.stats.two_qubit_gates
        );
        assert!(verify(&program, &trios));
        assert!(verify(&program, &base));
    }

    #[test]
    fn error_type_wraps_route_errors() {
        let program = Circuit::new(25);
        let topo = johannesburg();
        let err = compile(&program, &topo, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Route(_)));
        assert!(err.to_string().contains("routing failed"));
    }

    #[test]
    fn shim_matches_builder_api_exactly() {
        // Golden: the compatibility shim and the builder produce identical
        // programs for every paper configuration.
        let mut program = Circuit::new(4);
        program.h(0).ccx(0, 1, 2).cx(2, 3).ccz(1, 2, 3);
        let topo = johannesburg();
        for config in [
            PaperConfig::QiskitBaseline,
            PaperConfig::QiskitEight,
            PaperConfig::TriosSix,
            PaperConfig::TriosEight,
            PaperConfig::Trios,
        ] {
            let options = config.to_options(5);
            let legacy = compile(&program, &topo, &options).unwrap();
            let builder = Compiler::builder()
                .options(options)
                .build()
                .compile(&program, &topo)
                .unwrap();
            assert_eq!(legacy, builder, "{config:?}");
        }
    }
}
