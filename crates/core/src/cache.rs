//! [`CompilationCache`]: a thread-safe LRU over finished compilations,
//! keyed by the structural hash of `(circuit, device, options)`.
//!
//! Compilation here is deterministic — every stochastic choice is seeded
//! from [`CompileOptions::seed`] and routing tie-breaks are by lowest
//! qubit index — so two jobs with equal structural keys produce
//! byte-identical output, and returning a cached result is
//! indistinguishable from recompiling (timings in the cached
//! [`CompileReport`] aside, which record the original compile).

use crate::report::CompileReport;
use crate::{CompileOptions, CompiledProgram};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use trios_ir::{hash, Circuit};
use trios_passes::OptimizeOptions;
use trios_route::{DirectionPolicy, InitialMapping, LookaheadConfig, PathMetric};
use trios_topology::Topology;

/// What the cache stores per key: the compiled program plus the report of
/// the compile that produced it.
pub type CachedCompilation = (CompiledProgram, CompileReport);

/// A bounded, least-recently-used cache of finished compilations.
///
/// Interior-mutable and `Sync`: one cache can be shared by the worker
/// threads of [`Compiler::compile_batch_parallel`](crate::Compiler), and
/// kept across batches so repeated workload sweeps (the paper's ablation
/// studies recompile the same benchmarks under many configurations) pay
/// for each distinct job once.
///
/// A capacity of `0` disables storage entirely: every lookup misses and
/// every insert is dropped, so `CompilationCache::new(0)` is a convenient
/// "caching off" switch that still keeps exact miss counters.
///
/// # Examples
///
/// ```
/// use trios_core::{CompilationCache, Compiler};
/// use trios_ir::Circuit;
/// use trios_topology::line;
///
/// let mut program = Circuit::new(3);
/// program.ccx(0, 1, 2);
/// let device = line(4);
/// let compiler = Compiler::builder().seed(1).build();
/// let cache = CompilationCache::new(64);
///
/// let cold = compiler
///     .compile_batch_parallel_with_cache(&[program.clone()], &device, 2, Some(&cache))?;
/// let warm = compiler
///     .compile_batch_parallel_with_cache(&[program], &device, 2, Some(&cache))?;
/// assert_eq!(cold.results[0].0, warm.results[0].0);
/// assert_eq!(warm.report.cache_hits, 1);
/// # Ok::<(), trios_core::BatchDiagnostic>(())
/// ```
pub struct CompilationCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    /// Monotone recency clock; larger = more recently used.
    tick: u64,
    hits: u64,
    misses: u64,
}

struct Entry {
    value: CachedCompilation,
    last_used: u64,
}

impl CompilationCache {
    /// A cache holding at most `capacity` compilations (`0` disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        CompilationCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The structural key of one compilation job.
    ///
    /// Combines [`Circuit::structural_hash`], [`Topology::structural_hash`]
    /// and a stable hash of every [`CompileOptions`] knob, so a key
    /// collision requires a 64-bit hash collision, not merely "similar"
    /// jobs. Circuit and device *names* do not participate.
    pub fn key(circuit: &Circuit, topology: &Topology, options: &CompileOptions) -> u64 {
        let mut h = hash::OFFSET;
        h = hash::write_u64(h, circuit.structural_hash());
        h = hash::write_u64(h, topology.structural_hash());
        h = hash::write_u64(h, options_hash(options));
        h
    }

    /// The cached compilation for `key`, if present; refreshes its recency
    /// and counts a hit (or a miss).
    pub fn get(&self, key: u64) -> Option<CachedCompilation> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting the least-recently-used entry
    /// when the cache is full. A no-op at capacity 0.
    pub fn insert(&self, key: u64, value: CachedCompilation) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return;
        }
        if inner.entries.len() >= self.capacity {
            // O(n) scan: capacities are small (hundreds) next to the cost
            // of a single compilation, and this keeps the structure a plain
            // HashMap instead of an intrusive list.
            if let Some(&lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.entries.remove(&lru);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Maximum number of entries (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached compilations.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups that found an entry, since construction (or the last
    /// [`clear`](CompilationCache::clear)).
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("cache lock poisoned").hits
    }

    /// Total lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("cache lock poisoned").misses
    }

    /// Fraction of lookups that hit, or `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        let total = inner.hits + inner.misses;
        (total > 0).then(|| inner.hits as f64 / total as f64)
    }

    /// One consistent snapshot of every counter, read under a single lock
    /// acquisition. Prefer this over calling [`hits`](Self::hits),
    /// [`misses`](Self::misses), and [`len`](Self::len) separately: those
    /// take the lock once each, so concurrent traffic can slip between
    /// the reads and produce counters that never coexisted.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            len: inner.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every entry and resets the hit/miss counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.entries.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

/// One atomic snapshot of a cache's counters: hits, misses, occupancy,
/// and capacity read together under a single lock, so the numbers are
/// mutually consistent even while other threads keep hitting the cache.
///
/// Produced by [`CompilationCache::stats`] and
/// [`ShardedCache::stats`](crate::ShardedCache::stats); rendered by the
/// `trios serve` stats method and `compile-batch --report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups in the snapshot.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit, or `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        (self.lookups() > 0).then(|| self.hits as f64 / self.lookups() as f64)
    }

    /// The elementwise sum of two snapshots (aggregating shards).
    pub(crate) fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            len: self.len + other.len,
            capacity: self.capacity + other.capacity,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses, {}/{} entries, hit rate {}",
            self.hits,
            self.misses,
            self.len,
            self.capacity,
            match self.hit_rate() {
                Some(rate) => format!("{:.1}%", rate * 100.0),
                None => "n/a".into(),
            }
        )
    }
}

#[cfg(feature = "serde")]
mod cache_stats_serde {
    use super::CacheStats;
    use serde::{Serialize, SerializeStruct, Serializer};

    impl Serialize for CacheStats {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut s = serializer.serialize_struct("CacheStats", 5)?;
            s.serialize_field("hits", &self.hits)?;
            s.serialize_field("misses", &self.misses)?;
            s.serialize_field("len", &self.len)?;
            s.serialize_field("capacity", &self.capacity)?;
            s.serialize_field("hit_rate", &self.hit_rate())?;
            s.end()
        }
    }
}

impl fmt::Debug for CompilationCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("cache lock poisoned");
        f.debug_struct("CompilationCache")
            .field("capacity", &self.capacity)
            .field("len", &inner.entries.len())
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .finish()
    }
}

fn write_f64(h: u64, value: f64) -> u64 {
    hash::write_u64(h, value.to_bits())
}

fn write_bool(h: u64, value: bool) -> u64 {
    hash::write_u64(h, value as u64)
}

fn write_str(h: u64, value: &str) -> u64 {
    let h = hash::write_u64(h, value.len() as u64);
    hash::write_bytes(h, value.as_bytes())
}

/// Stable hash of every compilation knob. The exhaustive destructuring is
/// deliberate: adding a field to [`CompileOptions`] (or the nested option
/// structs) fails compilation here, forcing the new knob into the key
/// instead of silently aliasing cache entries across configurations.
fn options_hash(options: &CompileOptions) -> u64 {
    let CompileOptions {
        pipeline,
        router,
        decomposer,
        mapping,
        direction,
        metric,
        seed,
        optimize,
        lookahead,
        bridge,
        validate,
    } = options;
    let mut h = hash::OFFSET;
    // The *resolved* strategy name is what routing actually runs, so it —
    // not just the raw Option — must separate cache entries: a warm cache
    // may never serve one strategy's result for another. The pipeline
    // discriminant is deliberately NOT hashed on its own: for every
    // cacheable compilation it is fully subsumed by the resolved name
    // (`-p baseline` and `-r baseline` compile byte-identically and share
    // an entry), and unknown names fail before producing anything to
    // cache.
    h = write_str(h, options.router_name());
    let (_, _) = (pipeline, router);
    // Same resolution rule for the decomposition strategy: the resolved
    // name separates entries, so warm hits never cross decomposers.
    h = write_str(h, options.decomposer_name());
    let _ = decomposer;
    match mapping {
        InitialMapping::Trivial => h = hash::write_u64(h, 0),
        InitialMapping::Fixed(assignment) => {
            h = hash::write_u64(h, 1);
            h = hash::write_u64(h, assignment.len() as u64);
            for &p in assignment {
                h = hash::write_u64(h, p as u64);
            }
        }
        InitialMapping::Random { seed } => {
            h = hash::write_u64(h, 2);
            h = hash::write_u64(h, *seed);
        }
        InitialMapping::GreedyInteraction => h = hash::write_u64(h, 3),
        InitialMapping::NoiseAware { edge_errors } => {
            h = hash::write_u64(h, 4);
            h = hash::write_u64(h, edge_errors.len() as u64);
            for &e in edge_errors {
                h = write_f64(h, e);
            }
        }
    }
    h = hash::write_u64(
        h,
        match direction {
            DirectionPolicy::MoveFirst => 0,
            DirectionPolicy::MoveSecond => 1,
            DirectionPolicy::Stochastic => 2,
            DirectionPolicy::MeetInMiddle => 3,
        },
    );
    match metric {
        PathMetric::Hops => h = hash::write_u64(h, 0),
        PathMetric::EdgeWeights(weights) => {
            h = hash::write_u64(h, 1);
            h = hash::write_u64(h, weights.len() as u64);
            for &w in weights {
                h = write_f64(h, w);
            }
        }
    }
    h = hash::write_u64(h, *seed);
    let OptimizeOptions {
        cancel_inverses,
        merge_single_qubit,
        remove_trivial,
        cancel_commuting,
        merge_rotations,
    } = optimize;
    h = write_bool(h, *cancel_inverses);
    h = write_bool(h, *merge_single_qubit);
    h = write_bool(h, *remove_trivial);
    h = write_bool(h, *cancel_commuting);
    h = write_bool(h, *merge_rotations);
    match lookahead {
        None => h = hash::write_u64(h, 0),
        Some(LookaheadConfig {
            window,
            weight,
            decay,
        }) => {
            h = hash::write_u64(h, 1);
            h = hash::write_u64(h, *window as u64);
            h = write_f64(h, *weight);
            h = write_f64(h, *decay);
        }
    }
    h = write_bool(h, *bridge);
    h = write_bool(h, *validate);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CompileStats;
    use crate::PaperConfig;
    use trios_route::Layout;
    use trios_topology::{line, ring};

    fn dummy(tag: usize) -> CachedCompilation {
        let mut circuit = Circuit::new(2);
        for _ in 0..tag {
            circuit.h(0);
        }
        let program = CompiledProgram {
            circuit,
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            stats: CompileStats::default(),
        };
        (
            program,
            CompileReport::new(Vec::new(), CompileStats::default()),
        )
    }

    #[test]
    fn keys_separate_circuits_devices_and_options() {
        let mut a = Circuit::new(3);
        a.ccx(0, 1, 2);
        let mut b = Circuit::new(3);
        b.ccx(0, 2, 1);
        let dev = line(4);
        let opts = CompileOptions::default();
        let base = CompilationCache::key(&a, &dev, &opts);
        assert_ne!(base, CompilationCache::key(&b, &dev, &opts));
        assert_ne!(base, CompilationCache::key(&a, &ring(4), &opts));
        assert_ne!(
            base,
            CompilationCache::key(&a, &dev, &CompileOptions::with_seed(9))
        );
        assert_ne!(
            base,
            CompilationCache::key(&a, &dev, &PaperConfig::QiskitEight.to_options(0))
        );
        // Same structure again: identical key.
        let mut a2 = Circuit::with_name(3, "renamed");
        a2.ccx(0, 1, 2);
        assert_eq!(base, CompilationCache::key(&a2, &dev, &opts));
    }

    #[test]
    fn keys_separate_routing_strategies() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let dev = line(4);
        let keys: Vec<u64> = ["baseline", "trios", "trios-lookahead", "trios-noise"]
            .into_iter()
            .map(|name| {
                let options = CompileOptions {
                    router: Some(name.to_string()),
                    ..CompileOptions::default()
                };
                CompilationCache::key(&c, &dev, &options)
            })
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "strategies must never share a cache key");
            }
        }
        // `router: None` with the Trios pipeline resolves to "trios" and
        // may share that entry — they compile identically.
        assert_eq!(
            keys[1],
            CompilationCache::key(&c, &dev, &CompileOptions::default())
        );
        // Likewise `-p baseline` and `-r baseline` are the same
        // compilation spelled two ways, so they share a key.
        let by_pipeline = CompileOptions {
            pipeline: crate::Pipeline::Baseline,
            ..CompileOptions::default()
        };
        assert_eq!(keys[0], CompilationCache::key(&c, &dev, &by_pipeline));
    }

    #[test]
    fn keys_separate_decomposers() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let dev = line(4);
        let keys: Vec<u64> = ["standard", "six", "eight", "tdepth", "relative-phase"]
            .into_iter()
            .map(|name| {
                let options = CompileOptions {
                    decomposer: Some(name.to_string()),
                    ..CompileOptions::default()
                };
                CompilationCache::key(&c, &dev, &options)
            })
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "decomposers must never share a cache key");
            }
        }
        // `decomposer: None` resolves to "standard" and may share that
        // entry — they compile identically.
        assert_eq!(
            keys[0],
            CompilationCache::key(&c, &dev, &CompileOptions::default())
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = CompilationCache::new(2);
        cache.insert(1, dummy(1));
        cache.insert(2, dummy(2));
        // Touch key 1 so key 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, dummy(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "LRU entry must be the one evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn eviction_follows_insertion_order_without_touches() {
        let cache = CompilationCache::new(3);
        for k in 1..=3 {
            cache.insert(k, dummy(k as usize));
        }
        cache.insert(4, dummy(4));
        cache.insert(5, dummy(5));
        // 1 then 2 were the oldest; 3, 4, 5 remain.
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_none());
        for k in 3..=5 {
            assert!(cache.get(k).is_some(), "key {k} should survive");
        }
    }

    #[test]
    fn reinserting_refreshes_instead_of_duplicating() {
        let cache = CompilationCache::new(2);
        cache.insert(1, dummy(1));
        cache.insert(2, dummy(2));
        cache.insert(1, dummy(7)); // refresh: 2 is now LRU
        cache.insert(3, dummy(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        let (program, _) = cache.get(1).unwrap();
        assert_eq!(program.circuit.len(), 7, "refresh must replace the value");
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = CompilationCache::new(0);
        cache.insert(1, dummy(1));
        assert_eq!(cache.len(), 0);
        assert!(cache.get(1).is_none());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn counters_are_exact() {
        let cache = CompilationCache::new(4);
        assert_eq!(cache.hit_rate(), None);
        cache.insert(1, dummy(1));
        assert!(cache.get(1).is_some()); // hit
        assert!(cache.get(1).is_some()); // hit
        assert!(cache.get(2).is_none()); // miss
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
        assert_eq!(cache.hit_rate(), None);
    }

    #[test]
    fn stats_snapshot_is_consistent_and_formats_the_empty_case() {
        let cache = CompilationCache::new(4);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default().merge(stats));
        assert_eq!(stats.hit_rate(), None);
        assert!(stats.to_string().contains("n/a"), "{stats}");
        cache.insert(1, dummy(1));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert_eq!(stats.capacity, 4);
        assert_eq!(stats.lookups(), 2);
        assert_eq!(stats.hit_rate(), Some(0.5));
        let text = stats.to_string();
        assert!(text.contains("1 hits / 1 misses"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }

    #[test]
    fn debug_shows_occupancy() {
        let cache = CompilationCache::new(2);
        cache.insert(1, dummy(1));
        let text = format!("{cache:?}");
        assert!(text.contains("capacity: 2"));
        assert!(text.contains("len: 1"));
    }
}
