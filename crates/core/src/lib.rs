//! # trios-core — the Orchestrated Trios compiler
//!
//! End-to-end compilation pipelines reproducing
//! [*Orchestrated Trios* (ASPLOS 2021)](https://doi.org/10.1145/3445814.3446718):
//!
//! * [`Pipeline::Baseline`] — conventional, Qiskit-style: decompose all
//!   Toffolis to 1q/2q gates first, then map, route each distant CNOT
//!   individually, and schedule (paper Fig. 2a).
//! * [`Pipeline::Trios`] — the paper's contribution: decomposition stops
//!   at the Toffoli; the router gathers each Toffoli's three operands to a
//!   connected neighborhood as a unit; a second, *mapping-aware*
//!   decomposition then picks the 6-CNOT form on triangles and the 8-CNOT
//!   form (with the correct middle qubit) on lines (paper Fig. 2b, §4).
//!
//! # The pass-pipeline API
//!
//! The compiler is a sequence of named [`Pass`]es over a
//! [`CompileContext`], assembled by a [`PassManager`] and driven by a
//! [`Compiler`] built with [`Compiler::builder`]:
//!
//! ```
//! use trios_core::{Compiler, PaperConfig};
//! use trios_ir::Circuit;
//! use trios_topology::johannesburg;
//!
//! let mut program = Circuit::new(3);
//! program.ccx(0, 1, 2);
//!
//! let compiler = Compiler::builder().config(PaperConfig::Trios).build();
//! let (compiled, report) = compiler.compile_with_report(&program, &johannesburg())?;
//! println!("{report}"); // per-pass wall times and gate-count deltas
//! assert!(compiled.circuit.is_hardware_lowered());
//! # Ok::<(), trios_core::Diagnostic>(())
//! ```
//!
//! Passes publish intermediate results ([`PostRouteCircuit`],
//! [`SwapTrace`], [`ProgramSchedule`]) into the context's typed artifact
//! map; failures surface as a structured [`Diagnostic`] naming the pass.
//! [`Compiler::compile_batch`] compiles many circuits over one device
//! with shared precomputation. The original [`compile`] function remains
//! as a thin shim over the same pipeline.
//!
//! # Batch throughput
//!
//! Whole-suite sweeps (the paper's evaluation compiles every benchmark
//! against many topologies) go through
//! [`Compiler::compile_batch_parallel`]: a scoped worker pool that keeps
//! results in input order and is byte-identical to sequential
//! compilation. [`Compiler::compile_batch_parallel_with_cache`] adds a
//! shared [`CompilationCache`] — an LRU keyed by the structural hash of
//! `(circuit, device, options)` with exact hit/miss counters — and
//! returns a [`BatchReport`] aggregating per-pass wall times and
//! gate-count deltas across the batch.
//!
//! [`PaperConfig`] names the exact compiler configurations evaluated in
//! the paper's figures. Every compiled program carries its initial/final
//! layouts so `trios_sim::compiled_equivalent` can verify semantics, and
//! [`CompiledProgram::estimate_success`] applies the §2.6 noise model.
//!
//! # Evaluation sweeps
//!
//! The [`sweep`] module turns those pieces into the paper's actual
//! deliverable: [`run_sweep`] expands a [`SweepSpec`] — benchmarks ×
//! devices × routers × calibrations — through the cached parallel batch
//! compiler and the analytic success estimator (optionally cross-checked
//! by Monte Carlo trajectory simulation) into a [`SweepReport`] of
//! per-cell breakdowns, trios/baseline success ratios, and per-router
//! geomeans, serializable to JSON behind the `serde` feature.
//!
//! # Differential fuzzing
//!
//! The [`fuzz`] module turns the equivalence checker into a correctness
//! backstop over *unbounded* inputs: [`run_fuzz`] draws seeded cases from
//! `trios_gen`'s structured families, compiles each through every
//! selected router × device via the cached parallel batch compiler,
//! cross-checks semantics (simulator), hardware legality, and metric
//! invariants, and greedily shrinks any failure to a minimal OpenQASM
//! reproducer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod cache;
mod compiler;
mod context;
mod diagnostics;
pub mod fuzz;
mod manager;
mod options;
mod pass;
mod pipeline;
mod report;
mod shard;
pub mod sweep;

pub use batch::{BatchOutcome, BatchPassStat, BatchReport};
pub use cache::{CacheStats, CachedCompilation, CompilationCache};
pub use compiler::{BatchDiagnostic, Compiler, CompilerBuilder};
pub use context::{
    Artifact, ArtifactMap, CompileContext, PostRouteCircuit, ProgramSchedule, RouterTrace,
    SwapTrace,
};
pub use diagnostics::Diagnostic;
pub use fuzz::{
    run_fuzz, run_fuzz_with_registry, shrink_circuit, FuzzError, FuzzFailure, FuzzFailureKind,
    FuzzReport, FuzzReproducer, FuzzSpec,
};
pub use manager::PassManager;
pub use options::{CompileOptions, PaperConfig, Pipeline};
pub use pass::{
    DecomposeToffolisPass, InitialMappingPass, LowerPass, OptimizePass, Pass, RoutePass,
    SchedulePass, ValidatePass,
};
pub use pipeline::{compile, with_measurements, CompileError, CompiledProgram};
pub use report::{CompileReport, CompileStats, PassRecord};
pub use shard::ShardedCache;
pub use sweep::{
    run_sweep, RatioRow, RouterGeomean, SweepBenchmark, SweepCell, SweepError, SweepMonteCarlo,
    SweepReport, SweepSpec,
};

// Re-export the pieces callers need alongside `compile`, so downstream
// users can depend on `trios-core` alone for common workflows.
pub use trios_ir::{Circuit, Gate, GateCounts, Instruction, Qubit};
pub use trios_noise::{Calibration, CrosstalkPolicy, SuccessEstimate};
pub use trios_passes::{
    DecomposerHandle, DecomposerRegistry, DecompositionPlan, DecompositionStrategy,
    EightCnotDecomposition, LoweringCost, OptimizeOptions, QutritCostModel,
    RelativePhaseDecomposition, SixCnotDecomposition, StandardDecomposition, TDepthDecomposition,
    TrioPlacement,
};
pub use trios_route::{
    DirectionPolicy, InitialMapping, Layout, PathMetric, RoutingStrategy, RoutingTrace,
    StrategyRegistry,
};
pub use trios_topology::{parse_spec, PaperDevice, SpecError, Topology};
