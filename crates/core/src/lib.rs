//! # trios-core — the Orchestrated Trios compiler
//!
//! End-to-end compilation pipelines reproducing
//! [*Orchestrated Trios* (ASPLOS 2021)](https://doi.org/10.1145/3445814.3446718):
//!
//! * [`Pipeline::Baseline`] — conventional, Qiskit-style: decompose all
//!   Toffolis to 1q/2q gates first, then map, route each distant CNOT
//!   individually, and schedule (paper Fig. 2a).
//! * [`Pipeline::Trios`] — the paper's contribution: decomposition stops
//!   at the Toffoli; the router gathers each Toffoli's three operands to a
//!   connected neighborhood as a unit; a second, *mapping-aware*
//!   decomposition then picks the 6-CNOT form on triangles and the 8-CNOT
//!   form (with the correct middle qubit) on lines (paper Fig. 2b, §4).
//!
//! [`PaperConfig`] names the exact compiler configurations evaluated in
//! the paper's figures. Every compiled program carries its initial/final
//! layouts so `trios_sim::compiled_equivalent` can verify semantics, and
//! [`CompiledProgram::estimate_success`] applies the §2.6 noise model.
//!
//! # Examples
//!
//! ```
//! use trios_core::{compile, CompileOptions, PaperConfig};
//! use trios_ir::Circuit;
//! use trios_topology::johannesburg;
//!
//! let mut program = Circuit::new(3);
//! program.ccx(0, 1, 2);
//!
//! let device = johannesburg();
//! let trios = compile(&program, &device, &PaperConfig::Trios.to_options(0))?;
//! let baseline = compile(&program, &device, &PaperConfig::QiskitBaseline.to_options(0))?;
//! assert!(trios.stats.two_qubit_gates <= baseline.stats.two_qubit_gates);
//! # Ok::<(), trios_core::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod options;
mod pipeline;

pub use options::{CompileOptions, PaperConfig, Pipeline};
pub use pipeline::{compile, with_measurements, CompileError, CompileStats, CompiledProgram};

// Re-export the pieces callers need alongside `compile`, so downstream
// users can depend on `trios-core` alone for common workflows.
pub use trios_ir::{Circuit, Gate, GateCounts, Instruction, Qubit};
pub use trios_noise::{Calibration, SuccessEstimate};
pub use trios_passes::{OptimizeOptions, ToffoliDecomposition};
pub use trios_route::{DirectionPolicy, InitialMapping, Layout, PathMetric};
pub use trios_topology::{PaperDevice, Topology};
