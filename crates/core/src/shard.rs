//! [`ShardedCache`]: an N-way sharded [`CompilationCache`] for serving
//! concurrent traffic.
//!
//! A single [`CompilationCache`] serializes every lookup behind one
//! mutex; under many concurrent clients (the `trios-server` daemon) that
//! lock becomes the hot spot. A [`ShardedCache`] splits the key space
//! across independent shards — each its own `CompilationCache` with its
//! own lock — so lookups for different shards never contend. Shard
//! routing is a **pure function of the key** (and the shard count), so a
//! key always lands in the same shard, and with one shard the structure
//! behaves exactly like a plain `CompilationCache`.

use crate::cache::{CacheStats, CachedCompilation, CompilationCache};
use std::fmt;

/// An N-way sharded LRU compilation cache.
///
/// Keys (from [`CompilationCache::key`]) are routed to shards by a fixed
/// bit-mixing hash; capacity and LRU eviction are per shard. Aggregate
/// counters come from [`ShardedCache::stats`]; per-shard breakdowns from
/// [`ShardedCache::shard_stats`].
///
/// # Examples
///
/// ```
/// use trios_core::ShardedCache;
///
/// let cache = ShardedCache::new(4, 64); // 4 shards x 64 entries
/// assert_eq!(cache.num_shards(), 4);
/// assert_eq!(cache.stats().capacity, 256);
/// // Routing is deterministic: the same key always picks the same shard.
/// assert_eq!(cache.shard_of(42), cache.shard_of(42));
/// ```
pub struct ShardedCache {
    shards: Vec<CompilationCache>,
}

/// Mixes a key before shard selection so shard choice does not correlate
/// with the low bits the per-shard `HashMap`s bucket on (SplitMix64
/// finalizer).
fn mix(key: u64) -> u64 {
    let mut k = key;
    k ^= k >> 30;
    k = k.wrapping_mul(0xbf58476d1ce4e5b9);
    k ^= k >> 27;
    k = k.wrapping_mul(0x94d049bb133111eb);
    k ^ (k >> 31)
}

impl ShardedCache {
    /// A cache of `shards` independent shards (clamped to at least 1),
    /// each holding at most `capacity_per_shard` compilations
    /// (`0` disables storage, exactly as for [`CompilationCache`]).
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| CompilationCache::new(capacity_per_shard))
                .collect(),
        }
    }

    /// A cache of `shards` shards whose **total** capacity is
    /// `total_capacity`, distributing `ceil(total / shards)` entries to
    /// each shard (`total_capacity` 0 disables caching).
    pub fn with_total_capacity(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if total_capacity == 0 {
            0
        } else {
            total_capacity.div_ceil(shards)
        };
        ShardedCache::new(shards, per_shard)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to — a pure function of `(key,
    /// num_shards)`: no interior state participates, so the same key
    /// always lands in the same shard of any equally-sharded cache.
    pub fn shard_of(&self, key: u64) -> usize {
        (mix(key) % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard (for inspection; indices are
    /// `0..num_shards`).
    pub fn shard(&self, index: usize) -> &CompilationCache {
        &self.shards[index]
    }

    /// The cached compilation for `key`, if present, from its shard;
    /// counts a hit or a miss there.
    pub fn get(&self, key: u64) -> Option<CachedCompilation> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Stores `value` under `key` in its shard, evicting that shard's LRU
    /// entry when full.
    pub fn insert(&self, key: u64, value: CachedCompilation) {
        self.shards[self.shard_of(key)].insert(key, value)
    }

    /// Aggregate counters summed over every shard. Each shard's snapshot
    /// is internally consistent; the sum is taken shard by shard, so
    /// under concurrent traffic the aggregate is a slightly smeared (but
    /// never negative or double-counted) view.
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(CompilationCache::stats)
            .fold(CacheStats::default(), CacheStats::merge)
    }

    /// Per-shard snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(CompilationCache::stats).collect()
    }

    /// Total entries cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(CompilationCache::len).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets every shard's counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.clear();
        }
    }
}

impl fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity", &stats.capacity)
            .field("len", &stats.len)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CompileReport, CompileStats};
    use crate::CompiledProgram;
    use trios_ir::Circuit;
    use trios_route::Layout;

    fn dummy(tag: usize) -> CachedCompilation {
        let mut circuit = Circuit::new(2);
        for _ in 0..tag {
            circuit.h(0);
        }
        let program = CompiledProgram {
            circuit,
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            stats: CompileStats::default(),
        };
        (
            program,
            CompileReport::new(Vec::new(), CompileStats::default()),
        )
    }

    #[test]
    fn routing_is_pure_and_in_range() {
        let a = ShardedCache::new(8, 4);
        let b = ShardedCache::new(8, 4);
        for key in (0..1000u64).chain([u64::MAX, u64::MAX - 1]) {
            let shard = a.shard_of(key);
            assert!(shard < 8);
            assert_eq!(shard, a.shard_of(key), "routing must be deterministic");
            assert_eq!(
                shard,
                b.shard_of(key),
                "routing must not depend on instance state"
            );
        }
    }

    #[test]
    fn routing_spreads_keys_across_shards() {
        let cache = ShardedCache::new(8, 4);
        let mut seen = vec![false; 8];
        for key in 0..64u64 {
            seen[cache.shard_of(key)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 sequential keys should touch all 8 shards: {seen:?}"
        );
    }

    #[test]
    fn get_and_insert_route_to_the_same_shard() {
        let cache = ShardedCache::new(4, 4);
        for key in 0..32u64 {
            cache.insert(key, dummy(key as usize));
            assert!(cache.get(key).is_some(), "key {key} must be found again");
        }
        // Every hit and miss landed in exactly one shard's counters.
        let stats = cache.stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 0);
        assert_eq!(
            stats.len, 16,
            "4 shards x 4 capacity cap total occupancy at 16"
        );
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), 32);
        for (i, s) in per_shard.iter().enumerate() {
            assert!(s.len <= 4, "shard {i} over capacity: {s:?}");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache = ShardedCache::new(0, 2);
        assert_eq!(cache.num_shards(), 1);
        cache.insert(7, dummy(1));
        assert!(cache.get(7).is_some());
        assert_eq!(cache.shard_of(u64::MAX), 0);
    }

    #[test]
    fn total_capacity_distributes_with_ceiling() {
        assert_eq!(
            ShardedCache::with_total_capacity(4, 256).stats().capacity,
            256
        );
        // 10 entries over 4 shards: ceil = 3 each, 12 total.
        assert_eq!(
            ShardedCache::with_total_capacity(4, 10).stats().capacity,
            12
        );
        let off = ShardedCache::with_total_capacity(4, 0);
        assert_eq!(off.stats().capacity, 0);
        off.insert(1, dummy(1));
        assert_eq!(off.len(), 0, "capacity 0 disables storage");
    }

    #[test]
    fn clear_resets_every_shard() {
        let cache = ShardedCache::new(4, 4);
        for key in 0..16u64 {
            cache.insert(key, dummy(1));
        }
        let _ = cache.get(0);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(
            cache.stats(),
            CacheStats {
                capacity: 16,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn debug_shows_aggregate_occupancy() {
        let cache = ShardedCache::new(2, 4);
        cache.insert(1, dummy(1));
        let text = format!("{cache:?}");
        assert!(text.contains("shards: 2"), "{text}");
        assert!(text.contains("len: 1"), "{text}");
    }
}
