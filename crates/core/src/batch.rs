//! Aggregated instrumentation for batch compilation: [`BatchReport`]
//! (per-pass wall times and gate-count deltas summed across a batch, plus
//! cache traffic) and [`BatchOutcome`] (the per-circuit results together
//! with that report).

use crate::report::CompileReport;
use crate::CompiledProgram;
use std::fmt;
use std::time::Duration;

/// Everything a parallel batch compilation returns: the per-circuit
/// results in **input order**, plus the aggregate [`BatchReport`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BatchOutcome {
    /// One `(program, report)` per input circuit, index-aligned with the
    /// input slice regardless of which worker compiled what.
    pub results: Vec<(CompiledProgram, CompileReport)>,
    /// Aggregate statistics over the whole batch.
    pub report: BatchReport,
}

/// Per-pass statistics aggregated over every *freshly compiled* circuit of
/// a batch (cache hits replay stored reports and do not run passes, so
/// they are excluded here and counted in [`BatchReport::cache_hits`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct BatchPassStat {
    /// Pass name, as in [`PassRecord::pass`](crate::PassRecord).
    pub pass: &'static str,
    /// How many circuits actually ran this pass.
    pub runs: usize,
    /// Summed wall time across those runs.
    pub total_wall_time: Duration,
    /// The single slowest run.
    pub max_wall_time: Duration,
    /// Summed instruction-count delta (positive = the pass grew circuits).
    pub total_delta: isize,
    /// Summed two-qubit-gate delta.
    pub two_qubit_delta: isize,
}

/// Aggregate statistics of one batch compilation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BatchReport {
    /// Number of circuits in the batch.
    pub circuits: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall time of the batch call.
    pub wall_time: Duration,
    /// Summed per-pass compile time across all workers (≥ `wall_time`
    /// payload when parallelism is effective; excludes cache hits).
    pub compile_time: Duration,
    /// Per-pass aggregates in pipeline order, over fresh compiles only.
    pub passes: Vec<BatchPassStat>,
    /// Batch jobs answered from the cache.
    pub cache_hits: u64,
    /// Batch jobs compiled from scratch (when a cache was attached, these
    /// were inserted afterwards; without a cache every job counts here).
    pub cache_misses: u64,
    /// Total instructions entering compilation, summed over the batch.
    pub gates_in: usize,
    /// Total instructions in the compiled output, summed over the batch.
    pub gates_out: usize,
    /// Total two-qubit gates entering compilation.
    pub two_qubit_in: usize,
    /// Total two-qubit gates in the compiled output (the paper's primary
    /// metric, summed).
    pub two_qubit_out: usize,
}

impl BatchReport {
    /// Builds the aggregate from per-circuit reports. `fresh[i]` says
    /// whether `reports[i]` came from an actual compile (`true`) or a
    /// cache hit (`false`); pass aggregation covers fresh reports only,
    /// gate totals cover everything.
    pub(crate) fn aggregate(
        reports: &[(CompiledProgram, CompileReport)],
        fresh: &[bool],
        jobs: usize,
        wall_time: Duration,
    ) -> Self {
        debug_assert_eq!(reports.len(), fresh.len());
        let mut passes: Vec<BatchPassStat> = Vec::new();
        let mut compile_time = Duration::ZERO;
        let (mut gates_in, mut gates_out) = (0usize, 0usize);
        let (mut two_qubit_in, mut two_qubit_out) = (0usize, 0usize);
        for ((_, report), &is_fresh) in reports.iter().zip(fresh) {
            if let (Some(first), Some(last)) = (report.passes.first(), report.passes.last()) {
                gates_in += first.gates_before.total;
                gates_out += last.gates_after.total;
                two_qubit_in += first.gates_before.two_qubit;
                two_qubit_out += last.gates_after.two_qubit;
            }
            if !is_fresh {
                continue;
            }
            compile_time += report.total_time;
            for record in &report.passes {
                let stat = match passes.iter_mut().find(|s| s.pass == record.pass) {
                    Some(stat) => stat,
                    None => {
                        passes.push(BatchPassStat {
                            pass: record.pass,
                            runs: 0,
                            total_wall_time: Duration::ZERO,
                            max_wall_time: Duration::ZERO,
                            total_delta: 0,
                            two_qubit_delta: 0,
                        });
                        passes.last_mut().expect("just pushed")
                    }
                };
                stat.runs += 1;
                stat.total_wall_time += record.wall_time;
                stat.max_wall_time = stat.max_wall_time.max(record.wall_time);
                stat.total_delta += record.total_delta();
                stat.two_qubit_delta += record.two_qubit_delta();
            }
        }
        let cache_hits = fresh.iter().filter(|f| !**f).count() as u64;
        BatchReport {
            circuits: reports.len(),
            jobs,
            wall_time,
            compile_time,
            passes,
            cache_hits,
            cache_misses: reports.len() as u64 - cache_hits,
            gates_in,
            gates_out,
            two_qubit_in,
            two_qubit_out,
        }
    }

    /// The aggregate for the named pass, if any circuit ran it.
    pub fn pass(&self, name: &str) -> Option<&BatchPassStat> {
        self.passes.iter().find(|s| s.pass == name)
    }

    /// Fraction of batch jobs answered from the cache, or `None` for an
    /// empty batch.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Throughput in circuits per second over the batch wall time, or
    /// `None` when the wall time is zero.
    pub fn circuits_per_second(&self) -> Option<f64> {
        let secs = self.wall_time.as_secs_f64();
        (secs > 0.0).then(|| self.circuits as f64 / secs)
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch: {} circuits on {} jobs in {:.1?} ({:.1?} compile time across workers)",
            self.circuits, self.jobs, self.wall_time, self.compile_time
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses{}",
            self.cache_hits,
            self.cache_misses,
            match self.cache_hit_rate() {
                Some(rate) => format!(" ({:.1}% hit rate)", rate * 100.0),
                None => String::new(),
            }
        )?;
        writeln!(
            f,
            "gates: {} -> {} ({:+}), two-qubit {} -> {} ({:+})",
            self.gates_in,
            self.gates_out,
            self.gates_out as isize - self.gates_in as isize,
            self.two_qubit_in,
            self.two_qubit_out,
            self.two_qubit_out as isize - self.two_qubit_in as isize,
        )?;
        if self.passes.is_empty() {
            return write!(f, "passes: none run (all jobs served from cache)");
        }
        writeln!(
            f,
            "{:<20} {:>5} {:>12} {:>12} {:>8} {:>8}",
            "pass", "runs", "total", "max", "Δgates", "Δ2q"
        )?;
        for stat in &self.passes {
            writeln!(
                f,
                "{:<20} {:>5} {:>12.1?} {:>12.1?} {:>8} {:>8}",
                stat.pass,
                stat.runs,
                stat.total_wall_time,
                stat.max_wall_time,
                format!("{:+}", stat.total_delta),
                format!("{:+}", stat.two_qubit_delta),
            )?;
        }
        write!(
            f,
            "throughput: {}",
            match self.circuits_per_second() {
                Some(rate) => format!("{rate:.1} circuits/s"),
                None => "n/a".into(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CompileStats, PassRecord};
    use trios_ir::GateCounts;
    use trios_route::Layout;

    fn record(pass: &'static str, before: usize, after: usize, micros: u64) -> PassRecord {
        PassRecord {
            pass,
            wall_time: Duration::from_micros(micros),
            gates_before: GateCounts {
                total: before,
                two_qubit: before / 2,
                ..GateCounts::default()
            },
            gates_after: GateCounts {
                total: after,
                two_qubit: after / 2,
                ..GateCounts::default()
            },
            depth_before: before,
            depth_after: after,
        }
    }

    fn result(passes: Vec<PassRecord>) -> (CompiledProgram, CompileReport) {
        let program = CompiledProgram {
            circuit: trios_ir::Circuit::new(2),
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            stats: CompileStats::default(),
        };
        (program, CompileReport::new(passes, CompileStats::default()))
    }

    #[test]
    fn aggregate_sums_per_pass_and_totals() {
        let results = vec![
            result(vec![
                record("route", 10, 16, 100),
                record("optimize", 16, 12, 50),
            ]),
            result(vec![
                record("route", 20, 30, 300),
                record("optimize", 30, 28, 70),
            ]),
        ];
        let report = BatchReport::aggregate(&results, &[true, true], 2, Duration::from_micros(400));
        assert_eq!(report.circuits, 2);
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.gates_in, 30);
        assert_eq!(report.gates_out, 40);
        let route = report.pass("route").unwrap();
        assert_eq!(route.runs, 2);
        assert_eq!(route.total_wall_time, Duration::from_micros(400));
        assert_eq!(route.max_wall_time, Duration::from_micros(300));
        assert_eq!(route.total_delta, 16);
        let optimize = report.pass("optimize").unwrap();
        assert_eq!(optimize.total_delta, -6);
        assert_eq!(report.compile_time, Duration::from_micros(520));
        assert!(report.pass("nonexistent").is_none());
    }

    #[test]
    fn cache_hits_are_excluded_from_pass_stats_but_counted() {
        let results = vec![
            result(vec![record("route", 10, 16, 100)]),
            result(vec![record("route", 10, 16, 100)]),
        ];
        let report =
            BatchReport::aggregate(&results, &[true, false], 1, Duration::from_micros(150));
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hit_rate(), Some(0.5));
        assert_eq!(report.pass("route").unwrap().runs, 1);
        // Gate totals still cover both circuits.
        assert_eq!(report.gates_in, 20);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let report = BatchReport::aggregate(&[], &[], 1, Duration::ZERO);
        assert_eq!(report.circuits, 0);
        assert_eq!(report.cache_hit_rate(), None);
        assert_eq!(report.circuits_per_second(), None);
        assert!(report.to_string().contains("0 circuits"));
    }

    #[test]
    fn display_covers_cache_and_passes() {
        let results = vec![result(vec![record("route", 10, 16, 100)])];
        let report = BatchReport::aggregate(&results, &[true], 4, Duration::from_millis(1));
        let text = report.to_string();
        assert!(text.contains("1 circuits on 4 jobs"));
        assert!(text.contains("cache: 0 hits / 1 misses"));
        assert!(text.contains("route"));
        assert!(text.contains("throughput:"));
    }
}
