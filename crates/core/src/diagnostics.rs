//! The compiler's error hierarchy: every way a pass can fail, as a
//! recoverable value instead of a `debug_assert!`.
//!
//! The original entrypoint had exactly one error variant (routing) and
//! trusted the routed-by-construction invariant in release builds. The
//! pass-pipeline API instead surfaces each failure class as a
//! [`Diagnostic`] carrying the name of the pass that raised it, so
//! callers — services batching untrusted circuits included — can react per
//! class without aborting the process.

use std::error::Error;
use std::fmt;
use trios_ir::Gate;
use trios_route::{LegalityViolation, RouteError};

/// A failure raised by a compilation pass.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Diagnostic {
    /// Mapping or routing failed: the circuit does not fit the device or
    /// interacting qubits cannot be joined.
    Routing {
        /// The pass that failed.
        pass: &'static str,
        /// The underlying routing error.
        source: RouteError,
    },
    /// A compiled circuit violates the coupling graph — the invariant the
    /// legacy pipeline only `debug_assert!`ed.
    Legality {
        /// The pass that found the violation.
        pass: &'static str,
        /// The specific violated constraint.
        violation: LegalityViolation,
    },
    /// A gate survived lowering that the hardware gate set does not
    /// support.
    Lowering {
        /// The pass that found the leftover gate.
        pass: &'static str,
        /// Index of the offending instruction.
        instruction: usize,
        /// The unsupported gate.
        gate: Gate,
    },
    /// A pass-specific internal consistency check failed.
    Validation {
        /// The pass whose check failed.
        pass: &'static str,
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl Diagnostic {
    /// Shorthand for a [`Diagnostic::Routing`].
    pub fn routing(pass: &'static str, source: RouteError) -> Self {
        Diagnostic::Routing { pass, source }
    }

    /// Shorthand for a [`Diagnostic::Legality`].
    pub fn legality(pass: &'static str, violation: LegalityViolation) -> Self {
        Diagnostic::Legality { pass, violation }
    }

    /// Shorthand for a [`Diagnostic::Lowering`].
    pub fn lowering(pass: &'static str, instruction: usize, gate: Gate) -> Self {
        Diagnostic::Lowering {
            pass,
            instruction,
            gate,
        }
    }

    /// Shorthand for a [`Diagnostic::Validation`].
    pub fn validation(pass: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::Validation {
            pass,
            message: message.into(),
        }
    }

    /// The name of the pass that raised this diagnostic.
    pub fn pass(&self) -> &'static str {
        match self {
            Diagnostic::Routing { pass, .. }
            | Diagnostic::Legality { pass, .. }
            | Diagnostic::Lowering { pass, .. }
            | Diagnostic::Validation { pass, .. } => pass,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::Routing { pass, source } => {
                write!(f, "[{pass}] routing failed: {source}")
            }
            Diagnostic::Legality { pass, violation } => {
                write!(f, "[{pass}] illegal output circuit: {violation}")
            }
            Diagnostic::Lowering {
                pass,
                instruction,
                gate,
            } => write!(
                f,
                "[{pass}] instruction {instruction} left gate {gate} outside the hardware set"
            ),
            Diagnostic::Validation { pass, message } => {
                write!(f, "[{pass}] validation failed: {message}")
            }
        }
    }
}

impl Error for Diagnostic {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Diagnostic::Routing { source, .. } => Some(source),
            Diagnostic::Legality { violation, .. } => Some(violation),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_pass() {
        let d = Diagnostic::validation("schedule", "negative duration");
        assert_eq!(d.pass(), "schedule");
        assert!(d.to_string().contains("[schedule]"));
        assert!(d.to_string().contains("negative duration"));
    }

    #[test]
    fn routing_diagnostics_expose_their_source() {
        let d = Diagnostic::routing(
            "route-trios",
            RouteError::CircuitTooWide {
                logical: 25,
                physical: 20,
            },
        );
        assert!(Error::source(&d).is_some());
        assert!(d.to_string().contains("routing failed"));
    }
}
