//! Grover's search \[15\] with a CnX-based oracle, as in the paper's
//! `grovers-9` benchmark (which uses the `cnx_logancilla` subroutine).

use crate::cnx_log_ancilla;
use trios_ir::Circuit;

/// Grover's algorithm over `data_qubits` qubits searching for the basis
/// state `marked`, with the optimal ⌊π/4·√N⌋ iterations.
///
/// The phase oracle and the diffusion operator both use a
/// multi-controlled Z built from [`cnx_log_ancilla`] (H-conjugated CnX),
/// which needs `data_qubits − 3` clean ancillas. The paper's `grovers-9`
/// instance is `grovers(6, m)`: 6 data + 3 ancilla qubits, 84 Toffolis.
///
/// # Panics
///
/// Panics if `data_qubits < 3` or `marked >= 2^data_qubits`.
pub fn grovers(data_qubits: usize, marked: usize) -> Circuit {
    assert!(data_qubits >= 3, "need at least 3 data qubits");
    assert!(
        marked < (1usize << data_qubits),
        "marked state {marked} out of range"
    );
    let k = data_qubits;
    let ancillas: Vec<usize> = (k..k + (k - 3)).collect();
    let total = k + ancillas.len();
    let mut c = Circuit::with_name(total, format!("grovers-{total}"));

    // C^{k-1}Z on the data register via H-conjugated CnX onto the last
    // data qubit.
    let controlled_z = |c: &mut Circuit| {
        let controls: Vec<usize> = (0..k - 1).collect();
        c.h(k - 1);
        cnx_log_ancilla(c, &controls, &ancillas, k - 1);
        c.h(k - 1);
    };

    // Uniform superposition.
    for q in 0..k {
        c.h(q);
    }

    let iterations = ((std::f64::consts::FRAC_PI_4) * ((1u64 << k) as f64).sqrt()) as usize;
    for _ in 0..iterations.max(1) {
        // Oracle: phase-flip the marked state.
        for q in 0..k {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        controlled_z(&mut c);
        for q in 0..k {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion: invert about the mean.
        for q in 0..k {
            c.h(q);
        }
        for q in 0..k {
            c.x(q);
        }
        controlled_z(&mut c);
        for q in 0..k {
            c.x(q);
        }
        for q in 0..k {
            c.h(q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::State;

    #[test]
    fn amplifies_the_marked_state() {
        for marked in [0usize, 3, 7] {
            let c = grovers(3, marked);
            let state = State::run(&c).unwrap();
            let p = state.marginal_probability(&[0, 1, 2], marked);
            assert!(p > 0.9, "marked {marked} only reached probability {p:.3}");
        }
    }

    #[test]
    fn five_data_qubits_converge() {
        let c = grovers(5, 21);
        let state = State::run(&c).unwrap();
        let p = state.marginal_probability(&[0, 1, 2, 3, 4], 21);
        assert!(p > 0.9, "probability {p:.3}");
    }

    #[test]
    fn paper_instance_profile() {
        let c = grovers(6, 21);
        assert_eq!(c.num_qubits(), 9, "6 data + 3 ancilla");
        // 6 iterations × 2 CnZ × (2·5−3 = 7 Toffolis) = 84 (Table 1).
        assert_eq!(c.counts().ccx, 84);
    }

    #[test]
    fn ancillas_end_clean() {
        let c = grovers(4, 5);
        let state = State::run(&c).unwrap();
        assert!((state.marginal_probability(&[4], 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_marked_state() {
        grovers(3, 8);
    }
}
