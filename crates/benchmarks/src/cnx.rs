//! Many-controlled-NOT (CnX) constructions.
//!
//! The paper's benchmark suite uses four CnX implementations trading
//! ancilla count against gate count (Table 1). All four are implemented
//! here and verified against the plain multi-controlled-X semantics by the
//! statevector simulator:
//!
//! * [`cnx_dirty_chain`] — the Barenco et al. `4(n−2)`-Toffoli chain using
//!   `n−2` *borrowed* (dirty, state-preserved) qubits. Backs both
//!   `cnx_dirty` (Baker et al. [6]) and `cnx_halfborrowed` (Gidney [14]),
//!   which differ only in their control/borrowed ratio at the benchmark
//!   sizes.
//! * [`cnx_one_borrowed`] — the Barenco split: two half-size dirty chains
//!   through a single borrowed qubit, applied twice.
//! * [`cnx_log_ancilla`] — a binary AND-tree over `n−2` *clean* ancillas,
//!   `2n−3` Toffolis, logarithmic depth.
//! * [`cnx_inplace_ladder`] — zero extra qubits: the Barenco Lemma 7.5
//!   controlled-root ladder (Toffolis + controlled-`X^(1/2^k)` gates).
//!   This substitutes for the paper's Gidney incrementer-based
//!   `cnx_inplace` (see DESIGN.md §2).

use trios_ir::Circuit;

/// Appends a multi-controlled X using the `4(n−2)`-Toffoli chain with
/// `n−2` borrowed qubits (Barenco et al. 1995, Lemma 7.2).
///
/// Borrowed qubits may hold arbitrary data; they are restored.
///
/// # Panics
///
/// Panics if fewer than `controls.len() − 2` borrowed qubits are supplied
/// (for 3+ controls) or any index collides.
pub fn cnx_dirty_chain(c: &mut Circuit, controls: &[usize], borrowed: &[usize], target: usize) {
    let k = controls.len();
    match k {
        0 => {
            c.x(target);
        }
        1 => {
            c.cx(controls[0], target);
        }
        2 => {
            c.ccx(controls[0], controls[1], target);
        }
        _ => {
            assert!(
                borrowed.len() >= k - 2,
                "{k} controls need {} borrowed qubits, got {}",
                k - 2,
                borrowed.len()
            );
            let b = &borrowed[..k - 2];
            // Top Toffoli touches the target; the V-chain sweeps down the
            // borrowed ladder and back. [top, V, top, V] computes
            // AND(controls) onto the target while restoring every borrowed
            // bit.
            let top = |c: &mut Circuit| {
                c.ccx(controls[k - 1], b[k - 3], target);
            };
            let v_chain = |c: &mut Circuit| {
                for i in (2..=k - 2).rev() {
                    c.ccx(controls[i], b[i - 2], b[i - 1]);
                }
                c.ccx(controls[1], controls[0], b[0]);
                for i in 2..=k - 2 {
                    c.ccx(controls[i], b[i - 2], b[i - 1]);
                }
            };
            top(c);
            v_chain(c);
            top(c);
            v_chain(c);
        }
    }
}

/// Appends a multi-controlled X using a **single** borrowed qubit
/// (Barenco et al. 1995, Lemma 7.3): the controls are split in half, each
/// half runs as a dirty chain borrowing from the other half, and the pair
/// of chains is applied twice to cancel the garbage.
///
/// # Panics
///
/// Panics on index collisions (propagated from the circuit builder).
pub fn cnx_one_borrowed(c: &mut Circuit, controls: &[usize], borrowed: usize, target: usize) {
    let k = controls.len();
    if k <= 2 {
        cnx_dirty_chain(c, controls, &[], target);
        return;
    }
    let m = k.div_ceil(2);
    let (a, b) = controls.split_at(m);
    // Free-to-borrow sets: the other half plus the target / the first half.
    let borrow_for_a: Vec<usize> = b.iter().copied().chain([target]).collect();
    let borrow_for_b: Vec<usize> = a.to_vec();
    let b_controls: Vec<usize> = b.iter().copied().chain([borrowed]).collect();
    for _ in 0..2 {
        cnx_dirty_chain(c, a, &borrow_for_a, borrowed);
        cnx_dirty_chain(c, &b_controls, &borrow_for_b, target);
    }
}

/// Appends a multi-controlled X using a binary AND-tree over `n−2` clean
/// (`|0⟩`) ancillas: `n−2` compute Toffolis, one Toffoli onto the target,
/// and `n−2` uncompute Toffolis (`2n−3` total, logarithmic depth).
///
/// # Panics
///
/// Panics if fewer than `controls.len() − 2` ancillas are supplied for 3+
/// controls.
pub fn cnx_log_ancilla(c: &mut Circuit, controls: &[usize], ancillas: &[usize], target: usize) {
    let k = controls.len();
    if k <= 2 {
        cnx_dirty_chain(c, controls, &[], target);
        return;
    }
    assert!(
        ancillas.len() >= k - 2,
        "{k} controls need {} clean ancillas, got {}",
        k - 2,
        ancillas.len()
    );
    // Reduce the list of conjunction roots pairwise until two remain, then
    // AND those two onto the target.
    let mut roots: Vec<usize> = controls.to_vec();
    let mut compute: Vec<(usize, usize, usize)> = Vec::new();
    let mut next_anc = 0usize;
    while roots.len() > 2 {
        let mut next_roots = Vec::with_capacity(roots.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < roots.len() {
            let anc = ancillas[next_anc];
            next_anc += 1;
            compute.push((roots[i], roots[i + 1], anc));
            next_roots.push(anc);
            i += 2;
        }
        if i < roots.len() {
            next_roots.push(roots[i]);
        }
        roots = next_roots;
    }
    for &(a, b, t) in &compute {
        c.ccx(a, b, t);
    }
    c.ccx(roots[0], roots[1], target);
    for &(a, b, t) in compute.iter().rev() {
        c.ccx(a, b, t);
    }
}

/// Appends a multi-controlled X using **zero** extra qubits: the Barenco
/// Lemma 7.5 ladder `CⁿX = C(V)·Cⁿ⁻¹X·C(V†)·Cⁿ⁻¹X·Cⁿ⁻¹(V)` with
/// `V = X^(1/2)`, recursing on both the inner CnX's and the controlled
/// root. Gate count grows quickly with `n` — exactly why the paper's
/// `cnx_inplace` benchmark is the expensive member of the family.
pub fn cnx_inplace_ladder(c: &mut Circuit, controls: &[usize], target: usize) {
    controlled_xpow_ladder(c, controls, target, 1.0);
}

fn controlled_xpow_ladder(c: &mut Circuit, controls: &[usize], target: usize, s: f64) {
    match controls.len() {
        0 => {
            c.xpow(s, target);
        }
        1 => {
            if (s - 1.0).abs() < 1e-15 {
                c.cx(controls[0], target);
            } else {
                c.cxpow(s, controls[0], target);
            }
        }
        2 if (s - 1.0).abs() < 1e-15 => {
            c.ccx(controls[0], controls[1], target);
        }
        k => {
            let last = controls[k - 1];
            let rest = &controls[..k - 1];
            c.cxpow(s / 2.0, last, target);
            cnx_inplace_ladder(c, rest, last);
            c.cxpow(-s / 2.0, last, target);
            cnx_inplace_ladder(c, rest, last);
            controlled_xpow_ladder(c, rest, target, s / 2.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::{State, C64};

    /// Verifies that `circuit` implements a multi-controlled X on the
    /// given wires — including phases: every basis state must map to its
    /// image with one *common* global phase. `clean` lists qubits the
    /// construction requires to start in `|0⟩` (inputs violating that are
    /// out of contract and skipped).
    fn assert_implements_mcx_clean(
        circuit: &Circuit,
        controls: &[usize],
        target: usize,
        clean: &[usize],
    ) {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mask: usize = controls.iter().map(|&q| 1usize << q).sum();
        let clean_mask: usize = clean.iter().map(|&q| 1usize << q).sum();
        let mut phase: Option<C64> = None;
        for input in (0..dim).filter(|i| i & clean_mask == 0) {
            let mut state = State::basis(n, input).unwrap();
            state.apply_circuit(circuit).unwrap();
            let expected = if input & mask == mask {
                input ^ (1 << target)
            } else {
                input
            };
            let amp = state.amplitudes()[expected];
            assert!(
                (amp.abs() - 1.0).abs() < 1e-9,
                "basis {input:0width$b} mapped away from {expected:0width$b} (|amp|={})",
                amp.abs(),
                width = n
            );
            match phase {
                None => phase = Some(amp),
                Some(p) => assert!(
                    amp.approx_eq(p, 1e-9),
                    "inconsistent phase on basis {input:b}: {amp} vs {p}"
                ),
            }
        }
    }

    /// [`assert_implements_mcx_clean`] with no cleanliness requirement —
    /// for constructions whose extra qubits are borrowed (dirty-safe).
    fn assert_implements_mcx(circuit: &Circuit, controls: &[usize], target: usize) {
        assert_implements_mcx_clean(circuit, controls, target, &[]);
    }

    #[test]
    fn dirty_chain_small_cases() {
        // 0 controls = X, 1 = CX, 2 = CCX.
        for k in 0..=2usize {
            let n = k + 1;
            let mut c = Circuit::new(n);
            let controls: Vec<usize> = (0..k).collect();
            cnx_dirty_chain(&mut c, &controls, &[], k);
            assert_implements_mcx(&c, &controls, k);
        }
    }

    #[test]
    fn dirty_chain_three_to_five_controls() {
        for k in 3..=5usize {
            let n = 2 * k - 1; // k controls + (k-2) borrowed + target
            let mut c = Circuit::new(n);
            let controls: Vec<usize> = (0..k).collect();
            let borrowed: Vec<usize> = (k..2 * k - 2).collect();
            cnx_dirty_chain(&mut c, &controls, &borrowed, n - 1);
            assert_eq!(c.counts().ccx, 4 * (k - 2), "Toffoli count for k={k}");
            assert_implements_mcx(&c, &controls, n - 1);
        }
    }

    #[test]
    #[should_panic(expected = "borrowed qubits")]
    fn dirty_chain_rejects_missing_borrowed() {
        let mut c = Circuit::new(5);
        cnx_dirty_chain(&mut c, &[0, 1, 2, 3], &[], 4);
    }

    #[test]
    fn one_borrowed_three_to_six_controls() {
        for k in 3..=6usize {
            let n = k + 2; // controls + 1 borrowed + target
            let mut c = Circuit::new(n);
            let controls: Vec<usize> = (0..k).collect();
            cnx_one_borrowed(&mut c, &controls, k, k + 1);
            assert_implements_mcx(&c, &controls, k + 1);
        }
    }

    #[test]
    fn one_borrowed_toffoli_count_for_three_controls() {
        let mut c = Circuit::new(5);
        cnx_one_borrowed(&mut c, &[0, 1, 2], 3, 4);
        assert_eq!(c.counts().ccx, 4);
        assert_eq!(c.counts().total, 4);
    }

    #[test]
    fn log_ancilla_three_to_six_controls() {
        for k in 3..=6usize {
            let n = 2 * k - 1;
            let mut c = Circuit::new(n);
            let controls: Vec<usize> = (0..k).collect();
            let ancillas: Vec<usize> = (k..2 * k - 2).collect();
            cnx_log_ancilla(&mut c, &controls, &ancillas, n - 1);
            assert_eq!(c.counts().ccx, 2 * k - 3, "Toffoli count for k={k}");
            assert_implements_mcx_clean(&c, &controls, n - 1, &ancillas);
        }
    }

    #[test]
    fn log_ancilla_requires_clean_ancillas() {
        // With dirty (|1⟩) ancillas the tree construction is *wrong* —
        // demonstrate the contract by flipping an ancilla first.
        let mut c = Circuit::new(7);
        c.x(4); // dirty ancilla (pairs with controls 0,1)
        c.x(2).x(3); // controls 2,3 set, controls 0,1 unset
        let controls = [0usize, 1, 2, 3];
        cnx_log_ancilla(&mut c, &controls, &[4, 5], 6);
        // AND(0,1,2,3) = 0, so a correct CnX leaves the target at |0⟩ —
        // but the dirty ancilla makes the root Toffoli fire.
        let state = State::run(&c).unwrap();
        let p_target_set = state.marginal_probability(&[6], 1);
        assert!(
            p_target_set > 0.5,
            "dirty ancilla should corrupt the tree (demonstrating the clean requirement)"
        );
    }

    #[test]
    fn inplace_ladder_two_to_four_controls() {
        for k in 2..=4usize {
            let n = k + 1;
            let mut c = Circuit::new(n);
            let controls: Vec<usize> = (0..k).collect();
            cnx_inplace_ladder(&mut c, &controls, k);
            assert_implements_mcx(&c, &controls, k);
        }
    }

    #[test]
    fn inplace_ladder_profile_for_three_controls() {
        let mut c = Circuit::new(4);
        cnx_inplace_ladder(&mut c, &[0, 1, 2], 3);
        let counts = c.counts();
        assert_eq!(counts.ccx, 2);
        assert_eq!(counts.cx, 2);
        // 5 controlled roots: ±1/2, ±1/4, +1/4.
        let roots = c
            .iter()
            .filter(|i| matches!(i.gate(), trios_ir::Gate::Cxpow(_)))
            .count();
        assert_eq!(roots, 5);
    }

    #[test]
    fn borrowed_bits_really_are_restored() {
        // Run the dirty chain with borrowed bits in |1⟩ and check they end
        // in |1⟩ for every control pattern.
        let k = 4;
        let n = 2 * k - 1;
        let controls: Vec<usize> = (0..k).collect();
        let borrowed: Vec<usize> = (k..2 * k - 2).collect();
        for pattern in 0..(1usize << k) {
            let mut c = Circuit::new(n);
            for (bit, &q) in controls.iter().enumerate() {
                if (pattern >> bit) & 1 == 1 {
                    c.x(q);
                }
            }
            for &b in &borrowed {
                c.x(b);
            }
            cnx_dirty_chain(&mut c, &controls, &borrowed, n - 1);
            let state = State::run(&c).unwrap();
            for &b in &borrowed {
                assert!(
                    (state.marginal_probability(&[b], 1) - 1.0).abs() < 1e-9,
                    "borrowed {b} not restored for pattern {pattern:b}"
                );
            }
        }
    }
}
