//! The paper's benchmark suite (Table 1) as a closed enumeration.

use crate::{
    bernstein_vazirani, cnx_dirty_chain, cnx_inplace_ladder, cnx_log_ancilla, cuccaro_adder,
    grovers, incrementer_borrowedbit, qaoa_complete, qft_adder, takahashi_adder,
};
use std::fmt;
use trios_ir::Circuit;

/// One row of the paper's Table 1: a named benchmark instance.
///
/// The first eight contain Toffolis and benefit from Trios; the last three
/// (`qft_adder`, `bv`, `qaoa_complete`) are the Toffoli-free control group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// `cnx_dirty-11`: 6-control CnX, 4 dirty ancillas (Baker et al.).
    CnxDirty11,
    /// `cnx_halfborrowed-19`: 10-control CnX, 8 borrowed bits (Gidney).
    CnxHalfborrowed19,
    /// `cnx_logancilla-19`: 10-control CnX, 8 clean ancillas (Barenco).
    CnxLogancilla19,
    /// `cnx_inplace-4`: 3-control CnX with zero ancillas.
    CnxInplace4,
    /// `cuccaro_adder-20`: 9-bit ripple-carry adder.
    CuccaroAdder20,
    /// `takahashi_adder-20`: 10-bit ancilla-free adder.
    TakahashiAdder20,
    /// `incrementer_borrowedbit-5`: 4-bit incrementer ×10 repetitions.
    IncrementerBorrowedbit5,
    /// `grovers-9`: 6-qubit Grover search with log-ancilla oracle.
    Grovers9,
    /// `qft_adder-16`: 8-bit Draper adder (no Toffolis).
    QftAdder16,
    /// `bv-20`: Bernstein–Vazirani, all-ones secret (no Toffolis).
    Bv20,
    /// `qaoa_complete-10`: QAOA Max-Cut on K₁₀ (no Toffolis).
    QaoaComplete10,
}

impl Benchmark {
    /// All benchmarks, in the paper's figure order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::CnxDirty11,
        Benchmark::CnxHalfborrowed19,
        Benchmark::CnxLogancilla19,
        Benchmark::CnxInplace4,
        Benchmark::CuccaroAdder20,
        Benchmark::TakahashiAdder20,
        Benchmark::IncrementerBorrowedbit5,
        Benchmark::Grovers9,
        Benchmark::QftAdder16,
        Benchmark::Bv20,
        Benchmark::QaoaComplete10,
    ];

    /// The benchmarks that contain Toffolis (the ones the paper expects to
    /// gain from Trios).
    pub fn toffoli_suite() -> impl Iterator<Item = Benchmark> {
        Benchmark::ALL.into_iter().filter(|b| b.uses_toffoli())
    }

    /// The paper's name for this instance (Table 1 / figure x-labels).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::CnxDirty11 => "cnx_dirty-11",
            Benchmark::CnxHalfborrowed19 => "cnx_halfborrowed-19",
            Benchmark::CnxLogancilla19 => "cnx_logancilla-19",
            Benchmark::CnxInplace4 => "cnx_inplace-4",
            Benchmark::CuccaroAdder20 => "cuccaro_adder-20",
            Benchmark::TakahashiAdder20 => "takahashi_adder-20",
            Benchmark::IncrementerBorrowedbit5 => "incrementer_borrowedbit-5",
            Benchmark::Grovers9 => "grovers-9",
            Benchmark::QftAdder16 => "qft_adder-16",
            Benchmark::Bv20 => "bv-20",
            Benchmark::QaoaComplete10 => "qaoa_complete-10",
        }
    }

    /// Builds the benchmark circuit (Toffoli-level: 1q, 2q, and `ccx`
    /// gates; no measurements — harnesses append those).
    pub fn build(self) -> Circuit {
        match self {
            Benchmark::CnxDirty11 => {
                let mut c = Circuit::with_name(11, self.name());
                let controls: Vec<usize> = (0..6).collect();
                let borrowed: Vec<usize> = (6..10).collect();
                cnx_dirty_chain(&mut c, &controls, &borrowed, 10);
                c
            }
            Benchmark::CnxHalfborrowed19 => {
                let mut c = Circuit::with_name(19, self.name());
                let controls: Vec<usize> = (0..10).collect();
                let borrowed: Vec<usize> = (10..18).collect();
                cnx_dirty_chain(&mut c, &controls, &borrowed, 18);
                c
            }
            Benchmark::CnxLogancilla19 => {
                let mut c = Circuit::with_name(19, self.name());
                let controls: Vec<usize> = (0..10).collect();
                let ancillas: Vec<usize> = (10..18).collect();
                cnx_log_ancilla(&mut c, &controls, &ancillas, 18);
                c
            }
            Benchmark::CnxInplace4 => {
                let mut c = Circuit::with_name(4, self.name());
                cnx_inplace_ladder(&mut c, &[0, 1, 2], 3);
                c
            }
            Benchmark::CuccaroAdder20 => cuccaro_adder(9),
            Benchmark::TakahashiAdder20 => takahashi_adder(10),
            Benchmark::IncrementerBorrowedbit5 => incrementer_borrowedbit(4, 10),
            Benchmark::Grovers9 => grovers(6, 0b101010),
            Benchmark::QftAdder16 => qft_adder(8),
            Benchmark::Bv20 => bernstein_vazirani(20, (1 << 19) - 1),
            Benchmark::QaoaComplete10 => qaoa_complete(10, 0.4, 0.8),
        }
    }

    /// `true` for the benchmarks containing Toffoli gates.
    pub fn uses_toffoli(self) -> bool {
        !matches!(
            self,
            Benchmark::QftAdder16 | Benchmark::Bv20 | Benchmark::QaoaComplete10
        )
    }

    /// The Table 1 row for this benchmark: `(qubits, toffolis, cnots)`
    /// where `cnots` counts two-qubit gates after decomposing every
    /// Toffoli with the 8-CNOT form but before any routing — the paper's
    /// starred CNOT column.
    pub fn table1_row(self) -> (usize, usize, usize) {
        let c = self.build();
        let counts = c.counts();
        (
            c.num_qubits(),
            counts.ccx,
            counts.two_qubit + 8 * counts.ccx,
        )
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for b in Benchmark::ALL {
            let c = b.build();
            assert!(c.validate().is_ok(), "{b}");
            assert!(!c.is_empty(), "{b}");
            assert_eq!(c.name(), b.name());
        }
    }

    #[test]
    fn qubit_counts_match_names() {
        for b in Benchmark::ALL {
            let c = b.build();
            let suffix: usize = b
                .name()
                .rsplit('-')
                .next()
                .unwrap()
                .parse()
                .expect("name ends in qubit count");
            assert_eq!(c.num_qubits(), suffix, "{b}");
        }
    }

    #[test]
    fn toffoli_flag_matches_contents() {
        for b in Benchmark::ALL {
            let has = b.build().counts().ccx > 0;
            assert_eq!(has, b.uses_toffoli(), "{b}");
        }
    }

    #[test]
    fn table1_rows_match_paper_where_construction_matches() {
        // Exact matches with the paper's Table 1.
        assert_eq!(Benchmark::CnxDirty11.table1_row(), (11, 16, 128));
        assert_eq!(Benchmark::CnxHalfborrowed19.table1_row(), (19, 32, 256));
        assert_eq!(Benchmark::CnxLogancilla19.table1_row(), (19, 17, 136));
        let (q, t, _) = Benchmark::IncrementerBorrowedbit5.table1_row();
        assert_eq!((q, t), (5, 50));
        assert_eq!(Benchmark::Grovers9.table1_row().1, 84);
        assert_eq!(Benchmark::CuccaroAdder20.table1_row().1, 18);
        assert_eq!(Benchmark::TakahashiAdder20.table1_row().1, 18);
        assert_eq!(Benchmark::QftAdder16.table1_row(), (16, 0, 92));
        assert_eq!(Benchmark::Bv20.table1_row(), (20, 0, 19));
        assert_eq!(Benchmark::QaoaComplete10.table1_row(), (10, 0, 90));
    }

    #[test]
    fn no_benchmark_exceeds_twenty_qubits() {
        // All must fit the paper's 20-qubit devices.
        for b in Benchmark::ALL {
            assert!(b.build().num_qubits() <= 20, "{b}");
        }
    }

    #[test]
    fn toffoli_suite_has_eight_members() {
        assert_eq!(Benchmark::toffoli_suite().count(), 8);
    }
}
