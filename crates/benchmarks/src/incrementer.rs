//! Gidney-style incrementer with one borrowed bit.

use crate::{cnx_dirty_chain, cnx_one_borrowed};
use trios_ir::Circuit;

/// Appends one `x ← x + 1 (mod 2ⁿ)` on register `bits`, using `borrowed`
/// as a single borrowed (dirty, restored) qubit.
///
/// Construction: the descending multi-controlled-X ladder — bit `k` flips
/// iff all lower bits are 1, applied from the top down so each gate sees
/// the pre-increment low bits. Each CnX borrows the idle *higher* bits of
/// the register as dirty ancillas; the topmost gate, which has none to
/// spare, uses the Barenco one-borrowed-bit split through `borrowed`.
pub fn append_increment(c: &mut Circuit, bits: &[usize], borrowed: usize) {
    let n = bits.len();
    for k in (1..n).rev() {
        let controls = &bits[..k];
        let target = bits[k];
        let idle: Vec<usize> = bits[k + 1..].iter().copied().chain([borrowed]).collect();
        if idle.len() >= controls.len().saturating_sub(2) {
            cnx_dirty_chain(c, controls, &idle, target);
        } else {
            cnx_one_borrowed(c, controls, borrowed, target);
        }
    }
    c.x(bits[0]);
}

/// The `incrementer_borrowedbit` benchmark \[14\]: an `n`-bit register plus
/// one borrowed bit, incremented `repetitions` times.
///
/// The paper's instance (`incrementer_borrowedbit-5`, 50 Toffolis) is
/// `n = 4` with 10 repetitions: each increment costs 5 Toffolis (one plain
/// Toffoli plus a 4-Toffoli one-borrowed-bit C³X).
pub fn incrementer_borrowedbit(n: usize, repetitions: usize) -> Circuit {
    assert!(n >= 1, "register width must be at least 1");
    let mut c = Circuit::with_name(n + 1, format!("incrementer_borrowedbit-{}", n + 1));
    let bits: Vec<usize> = (0..n).collect();
    for _ in 0..repetitions {
        append_increment(&mut c, &bits, n);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::State;

    fn run_increment(n: usize, reps: usize, x: usize, borrowed_value: bool) -> (usize, bool) {
        let mut c = Circuit::new(n + 1);
        if borrowed_value {
            c.x(n);
        }
        for (bit, _) in (0..n).enumerate() {
            if (x >> bit) & 1 == 1 {
                c.x(bit);
            }
        }
        let bits: Vec<usize> = (0..n).collect();
        for _ in 0..reps {
            append_increment(&mut c, &bits, n);
        }
        let state = State::run(&c).unwrap();
        let (best, amp) = state
            .amplitudes()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().partial_cmp(&b.1.norm_sqr()).unwrap())
            .unwrap();
        assert!(
            (amp.abs() - 1.0).abs() < 1e-7,
            "output is not a basis state"
        );
        (best & ((1 << n) - 1), (best >> n) & 1 == 1)
    }

    #[test]
    fn increments_every_value() {
        for n in 2..=4usize {
            for x in 0..(1usize << n) {
                let (result, borrowed) = run_increment(n, 1, x, false);
                assert_eq!(result, (x + 1) % (1 << n), "n={n}, x={x}");
                assert!(!borrowed, "borrowed bit must be restored");
            }
        }
    }

    #[test]
    fn borrowed_bit_value_is_irrelevant_and_restored() {
        for x in [0usize, 5, 15] {
            let (result, borrowed) = run_increment(4, 1, x, true);
            assert_eq!(result, (x + 1) % 16);
            assert!(borrowed, "borrowed |1⟩ must stay |1⟩");
        }
    }

    #[test]
    fn repeated_increments_accumulate() {
        let (result, _) = run_increment(3, 5, 6, false);
        assert_eq!(result, (6 + 5) % 8);
    }

    #[test]
    fn paper_instance_profile() {
        let c = incrementer_borrowedbit(4, 10);
        assert_eq!(c.num_qubits(), 5);
        // Per increment: C³X (one-borrowed, 4 Toffolis) + CCX + CX + X.
        assert_eq!(c.counts().ccx, 50, "matches Table 1's 50 Toffolis");
        assert_eq!(c.counts().cx, 10);
    }
}
