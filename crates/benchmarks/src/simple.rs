//! Toffoli-free NISQ benchmarks: Bernstein–Vazirani and QAOA Max-Cut.
//!
//! These are the paper's control group — programs with no 3-qubit gates,
//! on which Trios must change nothing (Figures 9–11, rightmost bars).

use trios_ir::Circuit;

/// Bernstein–Vazirani \[9\] over `n − 1` data qubits plus one phase
/// ancilla, recovering the hidden string `secret` in one query.
///
/// The paper's `bv-20` assumes the all-ones secret, giving 19 CNOTs.
///
/// # Panics
///
/// Panics if `n < 2` or `secret` has bits beyond `n − 1`.
pub fn bernstein_vazirani(n: usize, secret: usize) -> Circuit {
    assert!(n >= 2, "need at least one data qubit plus the ancilla");
    let data = n - 1;
    assert!(
        secret < (1usize << data),
        "secret {secret} does not fit in {data} bits"
    );
    let mut c = Circuit::with_name(n, format!("bv-{n}"));
    let anc = n - 1;
    for q in 0..data {
        c.h(q);
    }
    c.x(anc).h(anc);
    for q in 0..data {
        if (secret >> q) & 1 == 1 {
            c.cx(q, anc);
        }
    }
    for q in 0..data {
        c.h(q);
    }
    c
}

/// Single-layer (p = 1) QAOA \[13\] for Max-Cut on the complete graph
/// `K_n`: one `ZZ(γ)` interaction per edge (2 CNOTs + 1 Rz each) and an
/// `Rx(2β)` mixer. The paper's `qaoa_complete-10` has 45 edges → 90 CNOTs.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qaoa_complete(n: usize, gamma: f64, beta: f64) -> Circuit {
    assert!(n >= 2, "need at least two vertices");
    let mut c = Circuit::with_name(n, format!("qaoa_complete-{n}"));
    for q in 0..n {
        c.h(q);
    }
    for a in 0..n {
        for b in a + 1..n {
            c.cx(a, b).rz(2.0 * gamma, b).cx(a, b);
        }
    }
    for q in 0..n {
        c.rx(2.0 * beta, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::State;

    #[test]
    fn bv_recovers_the_secret() {
        for secret in [0usize, 0b101, 0b111, 0b010] {
            let c = bernstein_vazirani(4, secret);
            let state = State::run(&c).unwrap();
            let p = state.marginal_probability(&[0, 1, 2], secret);
            assert!(
                (p - 1.0).abs() < 1e-9,
                "secret {secret:03b} recovered with probability {p}"
            );
        }
    }

    #[test]
    fn bv_paper_instance_profile() {
        let c = bernstein_vazirani(20, (1 << 19) - 1);
        assert_eq!(c.num_qubits(), 20);
        assert_eq!(c.counts().cx, 19, "matches Table 1");
        assert_eq!(c.counts().ccx, 0);
    }

    #[test]
    fn qaoa_paper_instance_profile() {
        let c = qaoa_complete(10, 0.4, 0.8);
        assert_eq!(c.counts().cx, 90, "45 edges × 2 CNOTs (Table 1)");
        assert_eq!(c.counts().ccx, 0);
    }

    #[test]
    fn qaoa_zero_angles_is_trivial_rotation_layer() {
        // γ = β = 0 leaves the uniform superposition untouched.
        let c = qaoa_complete(4, 0.0, 0.0);
        let state = State::run(&c).unwrap();
        for k in 0..16 {
            assert!((state.probability(k) - 1.0 / 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn qaoa_distribution_respects_maxcut_symmetry() {
        // MaxCut on K_n is invariant under flipping every vertex, so the
        // p=1 QAOA output distribution must satisfy P(s) = P(!s) — and
        // with non-trivial angles it must deviate from uniform.
        let c = qaoa_complete(4, 0.35, 0.39);
        let state = State::run(&c).unwrap();
        let mut max_dev = 0.0f64;
        for s in 0..16usize {
            let p = state.probability(s);
            let p_flip = state.probability(s ^ 0b1111);
            assert!((p - p_flip).abs() < 1e-9, "Z2 symmetry broken at {s:04b}");
            max_dev = max_dev.max((p - 1.0 / 16.0).abs());
        }
        assert!(max_dev > 1e-3, "distribution should be non-uniform");
    }
}
