//! # trios-benchmarks — the paper's benchmark suite
//!
//! Rust generators for every benchmark in the paper's Table 1, all
//! expressed at the *Toffoli level* (1-qubit gates, 2-qubit gates, and
//! intact `ccx`) so both compilation pipelines can consume them:
//!
//! | family | members |
//! |---|---|
//! | CnX implementations | `cnx_dirty-11`, `cnx_halfborrowed-19`, `cnx_logancilla-19`, `cnx_inplace-4` |
//! | adders | `cuccaro_adder-20`, `takahashi_adder-20`, `qft_adder-16` |
//! | other | `incrementer_borrowedbit-5`, `grovers-9`, `bv-20`, `qaoa_complete-10` |
//!
//! Every generator is verified functionally by the statevector simulator
//! (adders add, Grover amplifies, CnX matches the multi-controlled-X truth
//! table including phases, borrowed bits are restored).
//!
//! An [`ExtendedBenchmark`] suite beyond the paper adds a standalone QFT,
//! Toffoli-density extremes, seeded random NISQ circuits, and the
//! CCZ/Fredkin workloads exercising the extended three-qubit router.
//!
//! # Examples
//!
//! ```
//! use trios_benchmarks::Benchmark;
//!
//! let adder = Benchmark::CuccaroAdder20.build();
//! assert_eq!(adder.num_qubits(), 20);
//! assert_eq!(adder.counts().ccx, 18); // Table 1's Toffoli column
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adders;
mod cnx;
mod extended;
mod grover;
mod incrementer;
mod simple;
mod suite;

pub use adders::{cuccaro_adder, qft_adder, takahashi_adder};
pub use cnx::{cnx_dirty_chain, cnx_inplace_ladder, cnx_log_ancilla, cnx_one_borrowed};
pub use extended::{
    fredkin_network, hypergraph_state, qft, random_nisq, toffoli_chain, ExtendedBenchmark,
};
pub use grover::grovers;
pub use incrementer::{append_increment, incrementer_borrowedbit};
pub use simple::{bernstein_vazirani, qaoa_complete};
pub use suite::Benchmark;
