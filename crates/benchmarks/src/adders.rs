//! Quantum adders: Cuccaro (ripple-carry with ancilla), Takahashi
//! (ripple-carry without ancilla), and the Draper QFT adder.

use std::f64::consts::PI;
use trios_ir::Circuit;

/// The Cuccaro–Draper–Kutin–Moulton ripple-carry adder \[11\] on
/// `2n + 2` qubits: computes `b ← a + b (mod 2ⁿ)` with the carry-out on
/// the last qubit.
///
/// Qubit convention: `0` = carry-in ancilla (`|0⟩`), `1..=n` = register
/// `a`, `n+1..=2n` = register `b`, `2n+1` = carry-out.
///
/// Gate profile: `2n` Toffolis (one per MAJ and per UMA block) — the
/// Toffoli-rich benchmark `cuccaro_adder-20` is `n = 9`.
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder width must be at least 1");
    let mut c = Circuit::with_name(2 * n + 2, format!("cuccaro_adder-{}", 2 * n + 2));
    let a = |i: usize| 1 + i;
    let b = |i: usize| 1 + n + i;
    let cin = 0;
    let cout = 2 * n + 1;

    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y).cx(z, x).ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z).cx(z, x).cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// The Takahashi–Tani–Kunihiro adder \[35\] on `2n` qubits: computes
/// `b ← a + b (mod 2ⁿ)` using **no** ancilla.
///
/// Qubit convention: `0..n` = register `a` (restored), `n..2n` = register
/// `b` (receives the sum).
///
/// Gate profile: `2(n−1)` Toffolis — `takahashi_adder-20` is `n = 10`.
pub fn takahashi_adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder width must be at least 1");
    let mut c = Circuit::with_name(2 * n, format!("takahashi_adder-{}", 2 * n));
    let a = |i: usize| i;
    let b = |i: usize| n + i;

    if n == 1 {
        c.cx(a(0), b(0));
        return c;
    }
    // Step 1: fold a into b (sum bits, before carries).
    for i in 1..n {
        c.cx(a(i), b(i));
    }
    // Step 2: prepare the carry-propagation chain along a.
    for i in (1..n - 1).rev() {
        c.cx(a(i), a(i + 1));
    }
    // Step 3: ripple carries forward.
    for i in 0..n - 1 {
        c.ccx(a(i), b(i), a(i + 1));
    }
    // Step 4: unwind carries, producing sum bits high-to-low.
    for i in (1..n).rev() {
        c.cx(a(i), b(i));
        c.ccx(a(i - 1), b(i - 1), a(i));
    }
    // Step 5: undo the propagation chain.
    for i in 1..n - 1 {
        c.cx(a(i), a(i + 1));
    }
    // Step 6: final sum bit corrections.
    for i in 0..n {
        c.cx(a(i), b(i));
    }
    c
}

/// The Draper QFT adder \[29\] on `2n` qubits: `b ← a + b (mod 2ⁿ)` via
/// phase arithmetic — QFT on `b`, controlled phases from `a`, inverse QFT.
///
/// Contains **zero** Toffolis (all two-qubit gates are controlled phases),
/// which is why the paper includes it as a no-gain control benchmark.
pub fn qft_adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder width must be at least 1");
    let mut c = Circuit::with_name(2 * n, format!("qft_adder-{}", 2 * n));
    let a = |i: usize| i;
    let b = |i: usize| n + i;

    // QFT on b (most significant qubit first), without the final swaps —
    // the addition and inverse QFT below use the same bit ordering, so the
    // swaps would cancel.
    for j in (0..n).rev() {
        c.h(b(j));
        for k in (0..j).rev() {
            c.cp(PI / f64::powi(2.0, (j - k) as i32), b(k), b(j));
        }
    }
    // Phase additions: a_k contributes a rotation to every b_j with j ≥ k.
    for j in 0..n {
        for k in 0..=j {
            c.cp(PI / f64::powi(2.0, (j - k) as i32), a(k), b(j));
        }
    }
    // Inverse QFT on b.
    for j in 0..n {
        for k in 0..j {
            c.cp(-PI / f64::powi(2.0, (j - k) as i32), b(k), b(j));
        }
        c.h(b(j));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::State;

    /// Checks `b ← a + b` on computational basis inputs, including the
    /// carry-out bit if the adder exposes one.
    fn check_addition(
        circuit: &Circuit,
        n: usize,
        encode: impl Fn(usize, usize) -> usize,
        decode_sum: impl Fn(usize) -> usize,
        decode_a: impl Fn(usize) -> usize,
        pairs: &[(usize, usize)],
    ) {
        for &(av, bv) in pairs {
            let input = encode(av, bv);
            let mut state = State::basis(circuit.num_qubits(), input).unwrap();
            state.apply_circuit(circuit).unwrap();
            // The output must be a single basis state.
            let (best, amp) = state
                .amplitudes()
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.norm_sqr().partial_cmp(&y.1.norm_sqr()).unwrap())
                .unwrap();
            assert!(
                (amp.abs() - 1.0).abs() < 1e-7,
                "a={av}, b={bv}: output is not a basis state (|amp|={})",
                amp.abs()
            );
            assert_eq!(
                decode_sum(best),
                (av + bv) % (1 << n),
                "a={av}, b={bv}: wrong sum"
            );
            assert_eq!(
                decode_a(best),
                av,
                "a={av}, b={bv}: register a not restored"
            );
        }
    }

    fn test_pairs(n: usize) -> Vec<(usize, usize)> {
        let max = 1usize << n;
        let mut pairs = vec![
            (0, 0),
            (1, 0),
            (0, 1),
            (max - 1, 1),
            (max - 1, max - 1),
            (max / 2, max / 2),
        ];
        pairs.push((3 % max, 5 % max));
        pairs
    }

    #[test]
    fn cuccaro_adds_correctly() {
        for n in 1..=4usize {
            let c = cuccaro_adder(n);
            check_addition(
                &c,
                n,
                |a, b| (a << 1) | (b << (1 + n)),
                |out| (out >> (1 + n)) & ((1 << n) - 1),
                |out| (out >> 1) & ((1 << n) - 1),
                &test_pairs(n),
            );
        }
    }

    #[test]
    fn cuccaro_carry_out() {
        let n = 3;
        let c = cuccaro_adder(n);
        // 7 + 1 = 8: sum bits 000, carry-out 1.
        let input = (7usize << 1) | (1usize << (1 + n));
        let mut state = State::basis(c.num_qubits(), input).unwrap();
        state.apply_circuit(&c).unwrap();
        let cout = 2 * n + 1;
        assert!((state.marginal_probability(&[cout], 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cuccaro_gate_profile() {
        let c = cuccaro_adder(9);
        assert_eq!(c.num_qubits(), 20);
        assert_eq!(c.counts().ccx, 18, "2n Toffolis");
        assert_eq!(c.counts().cx, 4 * 9 + 1);
    }

    #[test]
    fn takahashi_adds_correctly() {
        for n in 1..=4usize {
            let c = takahashi_adder(n);
            check_addition(
                &c,
                n,
                |a, b| a | (b << n),
                |out| (out >> n) & ((1 << n) - 1),
                |out| out & ((1 << n) - 1),
                &test_pairs(n),
            );
        }
    }

    #[test]
    fn takahashi_gate_profile() {
        let c = takahashi_adder(10);
        assert_eq!(c.num_qubits(), 20);
        assert_eq!(c.counts().ccx, 18, "2(n−1) Toffolis");
        // Steps 1/2/4/5/6: (n−1) + (n−2) + (n−1) + (n−2) + n = 5n−6 = 44.
        assert_eq!(c.counts().cx, 44);
    }

    #[test]
    fn qft_adds_correctly() {
        for n in 1..=4usize {
            let c = qft_adder(n);
            check_addition(
                &c,
                n,
                |a, b| a | (b << n),
                |out| (out >> n) & ((1 << n) - 1),
                |out| out & ((1 << n) - 1),
                &test_pairs(n),
            );
        }
    }

    #[test]
    fn qft_adder_has_no_toffolis() {
        let c = qft_adder(8);
        assert_eq!(c.num_qubits(), 16);
        assert_eq!(c.counts().ccx, 0);
        // Two-qubit gates: QFT 28 + additions 36 + IQFT 28 = 92, matching
        // Table 1's CNOT column (which counts pre-lowering 2q gates).
        assert_eq!(c.counts().two_qubit, 92);
    }
}
