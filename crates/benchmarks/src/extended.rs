//! Benchmarks beyond the paper's Table 1, exercising the extended
//! three-qubit gate set (CCZ, Fredkin) and stressing the router with
//! different interaction shapes.
//!
//! These back the repository's extension studies; the paper-faithful suite
//! stays in [`Benchmark`](crate::Benchmark).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;
use std::fmt;
use trios_ir::Circuit;

/// The standard quantum Fourier transform on `n` qubits (with the final
/// bit-reversal SWAPs, so the unitary is the textbook DFT).
///
/// Toffoli-free, but its all-to-all controlled-phase pattern is the worst
/// case for pair routing — a useful stress control next to the
/// Toffoli-dense workloads.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "qft needs at least one qubit");
    let mut c = Circuit::with_name(n, format!("qft-{n}"));
    for j in (0..n).rev() {
        c.h(j);
        for k in (0..j).rev() {
            c.cp(PI / f64::powi(2.0, (j - k) as i32), k, j);
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// A ripple of overlapping Toffolis: `ccx(0,1,2), ccx(1,2,3), …` repeated
/// for `layers` sweeps.
///
/// Maximally Toffoli-dense with purely local logical structure — the
/// workload shape where trio routing has the least left to win (every trio
/// is already almost gathered), bounding Trios' benefit from below.
///
/// # Panics
///
/// Panics if `n < 3` or `layers == 0`.
pub fn toffoli_chain(n: usize, layers: usize) -> Circuit {
    assert!(n >= 3, "a toffoli chain needs at least 3 qubits");
    assert!(layers > 0, "need at least one layer");
    let mut c = Circuit::with_name(n, format!("toffoli_chain-{n}"));
    for _ in 0..layers {
        for i in 0..n - 2 {
            c.ccx(i, i + 1, i + 2);
        }
    }
    c
}

/// A seeded random NISQ-style circuit: `depth` layers, each a random mix
/// of single-qubit rotations, CNOTs, and (with probability ~1/5) Toffolis
/// on uniformly chosen operand triples.
///
/// Random long-range interactions are the workload where conventional
/// routing degrades fastest; the seed makes every instance reproducible.
///
/// # Panics
///
/// Panics if `n < 3` or `depth == 0`.
pub fn random_nisq(n: usize, depth: usize, seed: u64) -> Circuit {
    assert!(n >= 3, "random circuits need at least 3 qubits");
    assert!(depth > 0, "need at least one layer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("random_nisq-{n}"));
    for _ in 0..depth {
        match rng.gen_range(0..5) {
            0 => {
                let q = rng.gen_range(0..n);
                match rng.gen_range(0..3) {
                    0 => c.h(q),
                    1 => c.t(q),
                    _ => c.rz(rng.gen_range(0.0..PI), q),
                };
            }
            4 => {
                let trio = distinct(&mut rng, n, 3);
                c.ccx(trio[0], trio[1], trio[2]);
            }
            _ => {
                let pair = distinct(&mut rng, n, 2);
                c.cx(pair[0], pair[1]);
            }
        }
    }
    c
}

fn distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let q = rng.gen_range(0..n);
        if !picked.contains(&q) {
            picked.push(q);
        }
    }
    picked
}

/// A random three-uniform hypergraph state: `H` on every qubit, then one
/// CCZ per hyperedge (`triples` seeded random triples).
///
/// The canonical CCZ-native workload (measurement-based and IQP-style
/// circuits): with CCZ left to the router, Trios gathers each hyperedge as
/// a unit and — CCZ being fully symmetric — never pays for operand roles.
///
/// # Panics
///
/// Panics if `n < 3` or `triples == 0`.
pub fn hypergraph_state(n: usize, triples: usize, seed: u64) -> Circuit {
    assert!(n >= 3, "hyperedges need 3 distinct qubits");
    assert!(triples > 0, "need at least one hyperedge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("hypergraph_state-{n}"));
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..triples {
        let t = distinct(&mut rng, n, 3);
        c.ccz(t[0], t[1], t[2]);
    }
    c
}

/// A Fredkin routing network: a register of `2k + 1` qubits where one
/// control conditionally permutes `k` data pairs, sweeping the control
/// across a data line (`cswap(c, d_i, d_{i+1})` for consecutive pairs).
///
/// Fredkin chains appear in quantum switch fabrics and in the SWAP-test
/// family of subroutines; each `cswap` is routed as a trio by the extended
/// Trios router.
///
/// # Panics
///
/// Panics if `n < 3` or `n` is even (one control + an even data count).
pub fn fredkin_network(n: usize) -> Circuit {
    assert!(n >= 3, "need a control and at least one data pair");
    assert!(
        n % 2 == 1,
        "need one control plus an even number of data qubits"
    );
    let mut c = Circuit::with_name(n, format!("fredkin_network-{n}"));
    let control = 0;
    // Down-sweep then up-sweep across the data line: a depth-2 butterfly.
    for i in (1..n - 1).step_by(2) {
        c.cswap(control, i, i + 1);
    }
    for i in (2..n - 1).step_by(2) {
        c.cswap(control, i, i + 1);
    }
    for i in (1..n - 1).step_by(2) {
        c.cswap(control, i, i + 1);
    }
    c
}

/// The extension benchmark suite: instances sized for the paper's
/// 20-qubit devices, exercising QFT stress, Toffoli density extremes, and
/// the CCZ/Fredkin gate extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtendedBenchmark {
    /// `qft-16`: full 16-qubit QFT (Toffoli-free stress control).
    Qft16,
    /// `toffoli_chain-18`: two sweeps of overlapping local Toffolis.
    ToffoliChain18,
    /// `random_nisq-16`: 160 random gates, seed 7.
    RandomNisq16,
    /// `hypergraph_state-12`: 24 random CCZ hyperedges, seed 11.
    HypergraphState12,
    /// `fredkin_network-11`: a 3-sweep controlled-SWAP butterfly.
    FredkinNetwork11,
}

impl ExtendedBenchmark {
    /// All extension benchmarks, in reporting order.
    pub const ALL: [ExtendedBenchmark; 5] = [
        ExtendedBenchmark::Qft16,
        ExtendedBenchmark::ToffoliChain18,
        ExtendedBenchmark::RandomNisq16,
        ExtendedBenchmark::HypergraphState12,
        ExtendedBenchmark::FredkinNetwork11,
    ];

    /// The instance name (mirrors the paper's `name-qubits` convention).
    pub fn name(self) -> &'static str {
        match self {
            ExtendedBenchmark::Qft16 => "qft-16",
            ExtendedBenchmark::ToffoliChain18 => "toffoli_chain-18",
            ExtendedBenchmark::RandomNisq16 => "random_nisq-16",
            ExtendedBenchmark::HypergraphState12 => "hypergraph_state-12",
            ExtendedBenchmark::FredkinNetwork11 => "fredkin_network-11",
        }
    }

    /// Builds the instance.
    pub fn build(self) -> Circuit {
        match self {
            ExtendedBenchmark::Qft16 => qft(16),
            ExtendedBenchmark::ToffoliChain18 => toffoli_chain(18, 2),
            ExtendedBenchmark::RandomNisq16 => random_nisq(16, 160, 7),
            ExtendedBenchmark::HypergraphState12 => hypergraph_state(12, 24, 11),
            ExtendedBenchmark::FredkinNetwork11 => fredkin_network(11),
        }
    }

    /// `true` when the instance contains any three-qubit gate (the ones
    /// that should gain from trio routing).
    pub fn uses_three_qubit(self) -> bool {
        !matches!(self, ExtendedBenchmark::Qft16)
    }
}

impl fmt::Display for ExtendedBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::State;

    #[test]
    fn qft_matches_dft_amplitudes() {
        // QFT|x⟩ = (1/√N) Σ_y ω^{xy} |y⟩ with ω = e^{2πi/N}. Our qubit 0
        // is the least-significant bit in both input and output (the final
        // swaps restore natural ordering).
        let n = 4;
        let dim = 1usize << n;
        for x in [0usize, 1, 5, 9, 15] {
            let mut c = Circuit::new(n);
            for q in 0..n {
                if (x >> q) & 1 == 1 {
                    c.x(q);
                }
            }
            c.append(&qft(n));
            let state = State::run(&c).unwrap();
            let norm = 1.0 / (dim as f64).sqrt();
            for y in 0..dim {
                let phase = 2.0 * PI * (x * y % dim) as f64 / dim as f64;
                let amp = state.amplitudes()[y];
                assert!(
                    (amp.re - norm * phase.cos()).abs() < 1e-9
                        && (amp.im - norm * phase.sin()).abs() < 1e-9,
                    "x={x} y={y}: got {amp:?}"
                );
            }
        }
    }

    #[test]
    fn toffoli_chain_is_the_expected_permutation() {
        // On basis states a Toffoli chain is classical: simulate the sweep.
        let n = 5;
        for input in [0usize, 0b11, 0b111, 0b10110, 0b11111] {
            let mut c = Circuit::new(n);
            for q in 0..n {
                if (input >> q) & 1 == 1 {
                    c.x(q);
                }
            }
            c.append(&toffoli_chain(n, 1));
            let state = State::run(&c).unwrap();
            let mut bits = input;
            for i in 0..n - 2 {
                if (bits >> i) & 1 == 1 && (bits >> (i + 1)) & 1 == 1 {
                    bits ^= 1 << (i + 2);
                }
            }
            assert!(
                (state.probability(bits) - 1.0).abs() < 1e-9,
                "input {input:#b}: expected {bits:#b}"
            );
        }
    }

    #[test]
    fn random_nisq_is_seeded_and_valid() {
        let a = random_nisq(8, 60, 3);
        let b = random_nisq(8, 60, 3);
        let c = random_nisq(8, 60, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate().is_ok());
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn hypergraph_state_has_expected_phases() {
        // Amplitude of |b⟩ is ±1/√N with sign (−1)^{#satisfied hyperedges}.
        let n = 4;
        let c = hypergraph_state(n, 3, 5);
        let triples: Vec<Vec<usize>> = c
            .iter()
            .filter(|i| i.gate() == trios_ir::Gate::Ccz)
            .map(|i| i.qubits().iter().map(|q| q.index()).collect())
            .collect();
        assert_eq!(triples.len(), 3);
        let state = State::run(&c).unwrap();
        let norm = 1.0 / (1usize << n) as f64;
        for b in 0..(1usize << n) {
            let sign = triples
                .iter()
                .filter(|t| t.iter().all(|&q| (b >> q) & 1 == 1))
                .count()
                % 2;
            let expected = if sign == 1 { -norm.sqrt() } else { norm.sqrt() };
            assert!(
                (state.amplitudes()[b].re - expected).abs() < 1e-9,
                "basis {b:#b}"
            );
        }
    }

    #[test]
    fn fredkin_network_permutes_data_only_when_control_set() {
        let n = 5;
        // Control clear: identity.
        let mut c = Circuit::new(n);
        c.x(1).append(&fredkin_network(n));
        let state = State::run(&c).unwrap();
        assert!((state.probability(0b00010) - 1.0).abs() < 1e-9);
        // Control set: the 3-sweep butterfly walks qubit 1's bit to the
        // far end of the 4-qubit data line.
        let mut c = Circuit::new(n);
        c.x(0).x(1).append(&fredkin_network(n));
        let state = State::run(&c).unwrap();
        assert!((state.probability(0b10001) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extended_suite_builds_and_fits_devices() {
        for b in ExtendedBenchmark::ALL {
            let c = b.build();
            assert!(c.validate().is_ok(), "{b}");
            assert!(c.num_qubits() <= 20, "{b}");
            assert_eq!(c.name(), b.name(), "{b}");
            let has_3q = c.counts().three_qubit > 0;
            assert_eq!(has_3q, b.uses_three_qubit(), "{b}");
        }
    }

    #[test]
    fn generators_validate_arguments() {
        assert!(std::panic::catch_unwind(|| qft(0)).is_err());
        assert!(std::panic::catch_unwind(|| toffoli_chain(2, 1)).is_err());
        assert!(std::panic::catch_unwind(|| fredkin_network(4)).is_err());
        assert!(std::panic::catch_unwind(|| hypergraph_state(2, 1, 0)).is_err());
    }
}
