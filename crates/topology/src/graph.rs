//! [`Topology`]: an undirected qubit coupling graph with precomputed
//! distances.

use crate::TopologyError;
use std::collections::VecDeque;
use std::fmt;

/// How three routed qubits sit in the coupling graph — determines which
/// Toffoli decomposition the mapping-aware pass picks (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleShape {
    /// All three pairs connected: the 6-CNOT decomposition applies directly.
    Triangle,
    /// A path `a – middle – b`: the 8-CNOT decomposition applies with
    /// `middle` as the middle qubit.
    Line {
        /// The qubit adjacent to both others.
        middle: usize,
    },
    /// Fewer than two pairs connected: not a valid routed trio.
    Disconnected,
}

/// An undirected hardware coupling graph.
///
/// Two-qubit gates may only execute across edges of this graph; the routing
/// passes insert SWAPs to satisfy that constraint. All-pairs shortest-path
/// distances are precomputed at construction (devices here are ≤ a few
/// hundred qubits).
///
/// # Examples
///
/// ```
/// use trios_topology::line;
///
/// let device = line(5);
/// assert_eq!(device.distance(0, 4), Some(4));
/// assert!(device.are_adjacent(2, 3));
/// assert_eq!(device.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    num_qubits: usize,
    adj: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    dist: Vec<Vec<u32>>,
}

const UNREACHABLE: u32 = u32::MAX;

impl Topology {
    /// Builds a topology from an undirected edge list.
    ///
    /// Edges are deduplicated; `(a, b)` and `(b, a)` are the same edge.
    ///
    /// # Errors
    ///
    /// Returns an error for zero qubits, out-of-range endpoints, or
    /// self-loops.
    pub fn from_edges(
        name: impl Into<String>,
        num_qubits: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, TopologyError> {
        if num_qubits == 0 {
            return Err(TopologyError::Empty);
        }
        let mut adj = vec![Vec::new(); num_qubits];
        let mut canon: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in edges {
            if a == b {
                return Err(TopologyError::SelfLoop { qubit: a });
            }
            for q in [a, b] {
                if q >= num_qubits {
                    return Err(TopologyError::InvalidQubit {
                        qubit: q,
                        num_qubits,
                    });
                }
            }
            let e = (a.min(b), a.max(b));
            if !canon.contains(&e) {
                canon.push(e);
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        canon.sort_unstable();
        let dist = all_pairs_bfs(num_qubits, &adj);
        Ok(Topology {
            name: name.into(),
            num_qubits,
            adj,
            edges: canon,
            dist,
        })
    }

    /// Human-readable device name (e.g. `"ibmq-johannesburg"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Canonical (a < b) undirected edge list, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of `q`, in ascending order.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adj[q].len()
    }

    /// `true` if `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// Hop distance between `a` and `b` (`Some(0)` when equal), or `None`
    /// if disconnected.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        let d = self.dist[a][b];
        (d != UNREACHABLE).then_some(d as usize)
    }

    /// `true` if every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        self.dist[0].iter().all(|&d| d != UNREACHABLE)
    }

    /// A shortest path from `a` to `b` inclusive, or `None` if disconnected.
    ///
    /// Ties are broken toward lower qubit indices, so routing — and
    /// anything keyed on routed output, like compilation caches — is
    /// reproducible regardless of how the adjacency lists happen to be
    /// ordered.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        self.distance(a, b)?;
        // Walk greedily from a toward b along the precomputed distances.
        // The qubit index is part of the key: `min_by_key` alone would
        // resolve equal-distance neighbors by iteration order, which is an
        // accident of adjacency-list construction, not a guarantee.
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let next = *self.adj[cur]
                .iter()
                .min_by_key(|&&v| (self.dist[v][b], v))
                .expect("connected node has neighbors");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Dijkstra shortest path under a per-edge weight function (used by
    /// noise-aware routing with `w = −log(1 − e2q)`), or `None` if
    /// disconnected.
    ///
    /// Weights must be non-negative; ties break toward lower indices.
    pub fn shortest_path_weighted(
        &self,
        a: usize,
        b: usize,
        weight: &dyn Fn(usize, usize) -> f64,
    ) -> Option<(Vec<usize>, f64)> {
        let n = self.num_qubits;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut done = vec![false; n];
        dist[a] = 0.0;
        for _ in 0..n {
            // Linear extraction: devices are small, no heap needed.
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..n {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            if u == b {
                break;
            }
            done[u] = true;
            for &v in &self.adj[u] {
                let w = weight(u, v);
                debug_assert!(w >= 0.0, "edge weights must be non-negative");
                let nd = dist[u] + w;
                if nd < dist[v] - 1e-15 {
                    dist[v] = nd;
                    prev[v] = u;
                }
            }
        }
        if dist[b].is_infinite() {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some((path, dist[b]))
    }

    /// Single-source Dijkstra distances under a per-edge weight function:
    /// `result[b]` is the weighted distance from `source` to `b`
    /// (`f64::INFINITY` when unreachable, `0.0` at the source).
    ///
    /// One call computes what `num_qubits` calls of
    /// [`Topology::shortest_path_weighted`] from the same source would —
    /// the all-pairs reliability matrix of the noise-aware mapper costs
    /// `O(n)` Dijkstra runs instead of `O(n²)`.
    ///
    /// Weights must be non-negative.
    pub fn weighted_distances_from(
        &self,
        source: usize,
        weight: &dyn Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let n = self.num_qubits;
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        dist[source] = 0.0;
        for _ in 0..n {
            // Linear extraction: devices are small, no heap needed.
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..n {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            for &v in &self.adj[u] {
                let w = weight(u, v);
                debug_assert!(w >= 0.0, "edge weights must be non-negative");
                let nd = dist[u] + w;
                if nd < dist[v] - 1e-15 {
                    dist[v] = nd;
                }
            }
        }
        dist
    }

    /// The gather cost of a qubit triple: the minimum, over the choice of a
    /// destination qubit among the three, of the summed distances from the
    /// other two to it. This is the paper's "total swap distance" label on
    /// the Figure 6/7 x-axis and the metric the Trios router minimizes when
    /// picking the destination.
    pub fn triple_distance(&self, a: usize, b: usize, c: usize) -> Option<usize> {
        self.best_gather_destination(a, b, c).map(|(_, d)| d)
    }

    /// Chooses the destination qubit for gathering a trio: the operand with
    /// the smallest summed distance to the other two (paper §4). Ties break
    /// toward the earlier operand, so routing is deterministic.
    ///
    /// Returns `(destination, summed distance)` or `None` if any pair is
    /// disconnected.
    pub fn best_gather_destination(&self, a: usize, b: usize, c: usize) -> Option<(usize, usize)> {
        let ab = self.distance(a, b)?;
        let ac = self.distance(a, c)?;
        let bc = self.distance(b, c)?;
        let candidates = [(a, ab + ac), (b, ab + bc), (c, ac + bc)];
        candidates.into_iter().min_by_key(|&(_, d)| d)
    }

    /// Classifies how a routed triple sits in the graph.
    pub fn triple_shape(&self, a: usize, b: usize, c: usize) -> TripleShape {
        let ab = self.are_adjacent(a, b);
        let ac = self.are_adjacent(a, c);
        let bc = self.are_adjacent(b, c);
        match (ab, ac, bc) {
            (true, true, true) => TripleShape::Triangle,
            (true, true, false) => TripleShape::Line { middle: a },
            (true, false, true) => TripleShape::Line { middle: b },
            (false, true, true) => TripleShape::Line { middle: c },
            _ => TripleShape::Disconnected,
        }
    }

    /// The longest shortest path in the graph, or `None` when disconnected.
    ///
    /// The diameter bounds the worst-case SWAP chain any router can be
    /// forced into; the paper's Figure 6/7 x-axis ("total swap distance")
    /// tops out near twice this value.
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0usize;
        for a in 0..self.num_qubits() {
            for b in (a + 1)..self.num_qubits() {
                best = best.max(self.distance(a, b)?);
            }
        }
        Some(best)
    }

    /// Mean pairwise shortest-path distance, or `None` when disconnected
    /// (or for graphs with fewer than two qubits).
    ///
    /// A single-number proxy for expected routing cost: the paper's §6.1
    /// ordering of topology benefit (line > grid ≳ Johannesburg > clusters)
    /// tracks this metric.
    pub fn mean_distance(&self) -> Option<f64> {
        let n = self.num_qubits();
        if n < 2 {
            return None;
        }
        let mut sum = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                sum += self.distance(a, b)?;
            }
        }
        Some(sum as f64 / (n * (n - 1) / 2) as f64)
    }

    /// A 64-bit FNV-1a hash of the coupling structure: the qubit count and
    /// the canonical (deduplicated, `a < b`, sorted) edge list.
    ///
    /// The device *name* is excluded — two devices with the same coupling
    /// graph compile every circuit identically, so they must key the same
    /// compilation-cache entries. The hash is a pure function of the
    /// structure, stable across runs and platforms.
    pub fn structural_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let write_u64 = |mut h: u64, word: u64| {
            for b in word.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h
        };
        let mut h = OFFSET;
        h = write_u64(h, self.num_qubits as u64);
        h = write_u64(h, self.edges.len() as u64);
        for &(a, b) in &self.edges {
            h = write_u64(h, a as u64);
            h = write_u64(h, b as u64);
        }
        h
    }

    /// `true` if the graph contains at least one triangle.
    ///
    /// On triangle-free devices (Johannesburg, grids, lines) the 6-CNOT
    /// Toffoli always needs extra SWAPs — the paper's central observation.
    pub fn has_triangle(&self) -> bool {
        self.edges.iter().any(|&(a, b)| {
            self.adj[a]
                .iter()
                .any(|&c| c != b && self.are_adjacent(b, c))
        })
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} edges)",
            self.name,
            self.num_qubits,
            self.edges.len()
        )
    }
}

fn all_pairs_bfs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<u32>> {
    let mut dist = vec![vec![UNREACHABLE; n]; n];
    let mut queue = VecDeque::new();
    for (src, row) in dist.iter_mut().enumerate() {
        row[src] = 0;
        queue.clear();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if row[v] == UNREACHABLE {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Topology {
        Topology::from_edges("p4", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let t = Topology::from_edges("t", 3, &[(1, 0), (0, 1), (2, 1)]).unwrap();
        assert_eq!(t.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.degree(1), 2);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Topology::from_edges("t", 0, &[]),
            Err(TopologyError::Empty)
        ));
        assert!(matches!(
            Topology::from_edges("t", 2, &[(0, 2)]),
            Err(TopologyError::InvalidQubit { qubit: 2, .. })
        ));
        assert!(matches!(
            Topology::from_edges("t", 2, &[(1, 1)]),
            Err(TopologyError::SelfLoop { qubit: 1 })
        ));
    }

    #[test]
    fn distances_on_a_path() {
        let t = path4();
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.distance(2, 2), Some(0));
        assert!(t.is_connected());
    }

    #[test]
    fn disconnected_components() {
        let t = Topology::from_edges("t", 4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(t.distance(0, 3), None);
        assert!(!t.is_connected());
        assert_eq!(t.shortest_path(0, 2), None);
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let t = path4();
        let p = t.shortest_path(0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        let trivial = t.shortest_path(2, 2).unwrap();
        assert_eq!(trivial, vec![2]);
    }

    #[test]
    fn shortest_path_is_deterministic_on_ties() {
        // A 4-cycle has two equal paths 0→2; tie-break must pick via qubit 1.
        let t = Topology::from_edges("c4", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(t.shortest_path(0, 2).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn shortest_path_ties_break_by_lowest_index_everywhere() {
        // Regression: tie-breaking must be by qubit index, not by whatever
        // order neighbors were inserted. Declare the edges highest-first so
        // any accidental dependence on input order would surface.
        let t = Topology::from_edges("c4", 4, &[(3, 0), (2, 3), (1, 2), (0, 1)]).unwrap();
        // Both neighbors of 1 (0 and 2) are at distance 1 from 3: pick 0.
        assert_eq!(t.shortest_path(1, 3).unwrap(), vec![1, 0, 3]);
        // Symmetric query from the other end: neighbors of 3 are 0 and 2,
        // both at distance 1 from 1: pick 0 again.
        assert_eq!(t.shortest_path(3, 1).unwrap(), vec![3, 0, 1]);
        // A larger even ring: the two arcs tie, and every hop of the chosen
        // path must still prefer the lower index.
        let ring6 =
            Topology::from_edges("r6", 6, &[(5, 0), (4, 5), (3, 4), (2, 3), (1, 2), (0, 1)])
                .unwrap();
        assert_eq!(ring6.shortest_path(0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(ring6.shortest_path(3, 0).unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn structural_hash_ignores_name_and_edge_order() {
        let a = Topology::from_edges("a", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Topology::from_edges("b", 4, &[(2, 3), (1, 0), (1, 2), (0, 1)]).unwrap();
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Extra qubit (even if isolated) changes the structure.
        let wider = Topology::from_edges("a", 5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_ne!(a.structural_hash(), wider.structural_hash());

        // Different coupling changes the structure.
        let ring = Topology::from_edges("a", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_ne!(a.structural_hash(), ring.structural_hash());
    }

    #[test]
    fn weighted_path_avoids_heavy_edges() {
        // Square where the 0-1 edge is very noisy: prefer 0-3-2-1.
        let t = Topology::from_edges("c4", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = |a: usize, b: usize| {
            if (a.min(b), a.max(b)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        };
        let (path, cost) = t.shortest_path_weighted(0, 1, &w).unwrap();
        assert_eq!(path, vec![0, 3, 2, 1]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_matches_unweighted_with_unit_weights() {
        let t = path4();
        let (path, cost) = t.shortest_path_weighted(0, 3, &|_, _| 1.0).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn triple_shape_classification() {
        let tri = Topology::from_edges("k3", 3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(tri.triple_shape(0, 1, 2), TripleShape::Triangle);
        assert!(tri.has_triangle());

        let line = path4();
        assert_eq!(line.triple_shape(0, 1, 2), TripleShape::Line { middle: 1 });
        assert_eq!(line.triple_shape(1, 0, 2), TripleShape::Line { middle: 1 });
        assert_eq!(line.triple_shape(2, 0, 1), TripleShape::Line { middle: 1 });
        assert_eq!(line.triple_shape(0, 1, 3), TripleShape::Disconnected);
        assert!(!line.has_triangle());
    }

    #[test]
    fn triple_distance_is_best_gather_cost() {
        let t = path4();
        // Destinations: 0 → 1+3=4, 1 → 1+2=3, 3 → 3+2=5. Best is qubit 1.
        assert_eq!(t.best_gather_destination(0, 1, 3), Some((1, 3)));
        assert_eq!(t.triple_distance(0, 1, 3), Some(3));
    }

    #[test]
    fn gather_destination_tie_breaks_toward_first_operand() {
        // Symmetric path: ends tie through the middle.
        let t = path4();
        // (0, 2) around middle 1: dests 0→1+1? d(0,2)=2, d(0,1)=1, d(1,2)=1.
        // 0 → 2+1=3, 2 → 2+1=3, 1 → 1+1=2: middle wins outright.
        assert_eq!(t.best_gather_destination(0, 2, 1), Some((1, 2)));
        // True tie: qubits 1 and 2 for trio (1, 2, 3) on a path:
        // 1 → 1+2=3, 2 → 1+1=2, 3 → 2+1=3.
        assert_eq!(t.best_gather_destination(1, 2, 3), Some((2, 2)));
    }

    #[test]
    fn display_mentions_name_and_size() {
        let t = path4();
        assert_eq!(t.to_string(), "p4 (4 qubits, 3 edges)");
    }

    #[test]
    fn diameter_of_named_shapes() {
        use crate::{full, grid, line, ring};
        assert_eq!(line(20).diameter(), Some(19));
        assert_eq!(ring(20).diameter(), Some(10));
        assert_eq!(grid(5, 4).diameter(), Some(7));
        assert_eq!(full(6).diameter(), Some(1));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let t = Topology::from_edges("two-islands", 4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(t.diameter(), None);
        assert_eq!(t.mean_distance(), None);
    }

    #[test]
    fn mean_distance_orders_paper_topologies() {
        use crate::{clusters, grid, johannesburg, line};
        // The paper's benefit ordering (line most, clusters least — §6.1)
        // tracks mean pairwise distance.
        let line_d = line(20).mean_distance().unwrap();
        let grid_d = grid(5, 4).mean_distance().unwrap();
        let jo_d = johannesburg().mean_distance().unwrap();
        let cl_d = clusters(4, 5).mean_distance().unwrap();
        assert!(line_d > jo_d && line_d > grid_d && line_d > cl_d);
        assert!(cl_d < jo_d && cl_d < grid_d);
    }

    #[test]
    fn mean_distance_of_full_graph_is_one() {
        use crate::full;
        assert_eq!(full(5).mean_distance(), Some(1.0));
        assert_eq!(full(1).mean_distance(), None);
    }

    #[test]
    fn weighted_distances_from_matches_per_pair_dijkstra() {
        use crate::johannesburg;
        let topo = johannesburg();
        // Deterministic non-uniform weights keyed off the edge endpoints.
        let weight =
            |a: usize, b: usize| 1.0 + 0.13 * ((a * 7 + b * 3) % 5) as f64 + 0.01 * a.min(b) as f64;
        for a in 0..topo.num_qubits() {
            let row = topo.weighted_distances_from(a, &weight);
            assert_eq!(row[a], 0.0);
            for (b, &value) in row.iter().enumerate() {
                if a == b {
                    continue;
                }
                let (_, pairwise) = topo.shortest_path_weighted(a, b, &weight).unwrap();
                assert_eq!(
                    value, pairwise,
                    "single-source and per-pair Dijkstra disagree on {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn weighted_distances_from_marks_unreachable_as_infinite() {
        let t = Topology::from_edges("two-islands", 4, &[(0, 1), (2, 3)]).unwrap();
        let row = t.weighted_distances_from(0, &|_, _| 1.0);
        assert_eq!(row[0], 0.0);
        assert_eq!(row[1], 1.0);
        assert!(row[2].is_infinite());
        assert!(row[3].is_infinite());
    }
}
