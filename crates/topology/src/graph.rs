//! [`Topology`]: an undirected qubit coupling graph with precomputed
//! distances.

use crate::TopologyError;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// How three routed qubits sit in the coupling graph — determines which
/// Toffoli decomposition the mapping-aware pass picks (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleShape {
    /// All three pairs connected: the 6-CNOT decomposition applies directly.
    Triangle,
    /// A path `a – middle – b`: the 8-CNOT decomposition applies with
    /// `middle` as the middle qubit.
    Line {
        /// The qubit adjacent to both others.
        middle: usize,
    },
    /// Fewer than two pairs connected: not a valid routed trio.
    Disconnected,
}

/// All-pairs hop distances stored as one row-major boxed slice.
///
/// The nested `Vec<Vec<u32>>` of earlier versions cost one heap
/// allocation (and one pointer chase) per source row; at kiloqubit scale
/// the routing hot loop reads this matrix millions of times, so the
/// flat layout matters. `get` is a single multiply-add index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DistMatrix {
    n: usize,
    d: Box<[u32]>,
}

impl DistMatrix {
    #[inline]
    fn get(&self, a: usize, b: usize) -> u32 {
        self.d[a * self.n + b]
    }
}

/// Per-coupling-edge cost model of an implicitly-stored device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkCost {
    /// Every coupling costs the same (superconducting-style).
    Uniform,
    /// Coupling `a`–`b` costs `|a − b|`: the ion-shuttling model of a
    /// linear-trap all-to-all device, where any pair can interact but
    /// distant ions pay transport proportional to their separation.
    LinearShuttle,
}

/// Internal storage: explicit adjacency + precomputed BFS distances for
/// sparse hardware graphs, or a closed-form complete graph for all-to-all
/// devices. A 1000-qubit all-to-all device has ~500k edges; storing (or
/// BFS-ing) them is pure waste when every distance is 0 or 1, so the
/// complete representation materializes nothing.
#[derive(Debug)]
enum Repr {
    Explicit {
        adj: Vec<Vec<usize>>,
        edges: Vec<(usize, usize)>,
        dist: DistMatrix,
    },
    Complete {
        cost: LinkCost,
        /// Materialized only if a caller insists on an edge *list*
        /// (noise-aware per-edge error vectors do); closed-form paths
        /// never touch it.
        edges: OnceLock<Vec<(usize, usize)>>,
    },
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Explicit { adj, edges, dist } => Repr::Explicit {
                adj: adj.clone(),
                edges: edges.clone(),
                dist: dist.clone(),
            },
            // The lazy edge cache is derived state: a clone starts cold.
            Repr::Complete { cost, .. } => Repr::Complete {
                cost: *cost,
                edges: OnceLock::new(),
            },
        }
    }
}

/// An undirected hardware coupling graph.
///
/// Two-qubit gates may only execute across edges of this graph; the routing
/// passes insert SWAPs to satisfy that constraint. Sparse devices
/// precompute all-pairs shortest-path distances at construction (one BFS
/// per source, flat row-major matrix); all-to-all devices
/// ([`Topology::complete`]) answer every query in closed form and never
/// materialize their ~n²/2 edges.
///
/// # Examples
///
/// ```
/// use trios_topology::line;
///
/// let device = line(5);
/// assert_eq!(device.distance(0, 4), Some(4));
/// assert!(device.are_adjacent(2, 3));
/// assert_eq!(device.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    num_qubits: usize,
    repr: Repr,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.num_qubits == other.num_qubits
            && match (&self.repr, &other.repr) {
                (Repr::Explicit { edges: a, .. }, Repr::Explicit { edges: b, .. }) => a == b,
                (Repr::Complete { cost: a, .. }, Repr::Complete { cost: b, .. }) => a == b,
                _ => false,
            }
    }
}

impl Eq for Topology {}

/// Iterator over the neighbors of a qubit, in ascending order.
///
/// Sparse topologies yield from their adjacency list; complete topologies
/// yield `0..n` minus the qubit itself without materializing anything.
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: NeighborsInner<'a>,
}

#[derive(Debug, Clone)]
enum NeighborsInner<'a> {
    Slice(std::slice::Iter<'a, usize>),
    Complete { n: usize, skip: usize, next: usize },
}

impl Iterator for Neighbors<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match &mut self.inner {
            NeighborsInner::Slice(it) => it.next().copied(),
            NeighborsInner::Complete { n, skip, next } => {
                if *next == *skip {
                    *next += 1;
                }
                if *next >= *n {
                    return None;
                }
                let v = *next;
                *next += 1;
                Some(v)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            NeighborsInner::Slice(it) => it.size_hint(),
            NeighborsInner::Complete { n, skip, next } => {
                let mut remaining = n.saturating_sub(*next);
                if *next <= *skip && *skip < *n {
                    remaining -= 1;
                }
                (remaining, Some(remaining))
            }
        }
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

const UNREACHABLE: u32 = u32::MAX;

impl Topology {
    /// Builds a topology from an undirected edge list.
    ///
    /// Edges are deduplicated; `(a, b)` and `(b, a)` are the same edge.
    /// Deduplication is sort-based (`O(m log m)`), so half-million-edge
    /// lists construct in well under a second — the linear-scan version
    /// this replaced was `O(m²)` and effectively hung on them.
    ///
    /// # Errors
    ///
    /// Returns an error for zero qubits, out-of-range endpoints, or
    /// self-loops.
    pub fn from_edges(
        name: impl Into<String>,
        num_qubits: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, TopologyError> {
        if num_qubits == 0 {
            return Err(TopologyError::Empty);
        }
        let mut canon: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b {
                return Err(TopologyError::SelfLoop { qubit: a });
            }
            for q in [a, b] {
                if q >= num_qubits {
                    return Err(TopologyError::InvalidQubit {
                        qubit: q,
                        num_qubits,
                    });
                }
            }
            canon.push((a.min(b), a.max(b)));
        }
        canon.sort_unstable();
        canon.dedup();
        let mut adj = vec![Vec::new(); num_qubits];
        for &(a, b) in &canon {
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let dist = all_pairs_bfs(num_qubits, &adj);
        Ok(Topology {
            name: name.into(),
            num_qubits,
            repr: Repr::Explicit {
                adj,
                edges: canon,
                dist,
            },
        })
    }

    /// A fully connected device with unit-cost couplings, stored
    /// implicitly: no edge list, no BFS, every query closed-form.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(name: impl Into<String>, n: usize) -> Self {
        Topology::complete_with_cost(name, n, LinkCost::Uniform)
    }

    /// A fully connected ion-trap-style device where coupling `a`–`b`
    /// costs `|a − b|` (linear shuttling distance). Stored implicitly
    /// like [`Topology::complete`]; [`Topology::link_cost`] and
    /// [`Topology::cost_distance`] expose the weights.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete_linear_cost(name: impl Into<String>, n: usize) -> Self {
        Topology::complete_with_cost(name, n, LinkCost::LinearShuttle)
    }

    fn complete_with_cost(name: impl Into<String>, n: usize, cost: LinkCost) -> Self {
        assert!(n > 0, "device size must be positive");
        Topology {
            name: name.into(),
            num_qubits: n,
            repr: Repr::Complete {
                cost,
                edges: OnceLock::new(),
            },
        }
    }

    /// Human-readable device name (e.g. `"ibmq-johannesburg"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of coupling edges. Closed-form for complete devices —
    /// prefer this over `edges().len()`, which would materialize them.
    pub fn num_edges(&self) -> usize {
        match &self.repr {
            Repr::Explicit { edges, .. } => edges.len(),
            Repr::Complete { .. } => self.num_qubits * (self.num_qubits - 1) / 2,
        }
    }

    /// Canonical (a < b) undirected edge list, sorted.
    ///
    /// For complete devices this materializes all `n(n−1)/2` edges on
    /// first call (and caches them) — only per-edge consumers like
    /// noise-calibration vectors need it; routing never calls this.
    pub fn edges(&self) -> &[(usize, usize)] {
        match &self.repr {
            Repr::Explicit { edges, .. } => edges,
            Repr::Complete { edges, .. } => edges.get_or_init(|| {
                let n = self.num_qubits;
                let mut all = Vec::with_capacity(n * (n - 1) / 2);
                for a in 0..n {
                    for b in a + 1..n {
                        all.push((a, b));
                    }
                }
                all
            }),
        }
    }

    /// Neighbors of `q`, in ascending order.
    pub fn neighbors(&self, q: usize) -> Neighbors<'_> {
        let inner = match &self.repr {
            Repr::Explicit { adj, .. } => NeighborsInner::Slice(adj[q].iter()),
            Repr::Complete { .. } => NeighborsInner::Complete {
                n: self.num_qubits,
                skip: q,
                next: 0,
            },
        };
        Neighbors { inner }
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        match &self.repr {
            Repr::Explicit { adj, .. } => adj[q].len(),
            Repr::Complete { .. } => self.num_qubits - 1,
        }
    }

    /// `true` if `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        match &self.repr {
            Repr::Explicit { adj, .. } => adj[a].binary_search(&b).is_ok(),
            Repr::Complete { .. } => a != b && a < self.num_qubits && b < self.num_qubits,
        }
    }

    /// Hop distance between `a` and `b` (`Some(0)` when equal), or `None`
    /// if disconnected.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        match &self.repr {
            Repr::Explicit { dist, .. } => {
                let d = dist.get(a, b);
                (d != UNREACHABLE).then_some(d as usize)
            }
            Repr::Complete { .. } => Some(usize::from(a != b)),
        }
    }

    /// Cost of the direct coupling `a`–`b`, or `None` if not adjacent.
    ///
    /// Explicitly-built devices have unit-cost couplings; complete
    /// ion-trap devices ([`Topology::complete_linear_cost`]) charge
    /// `|a − b|` shuttling distance.
    pub fn link_cost(&self, a: usize, b: usize) -> Option<f64> {
        if !self.are_adjacent(a, b) {
            return None;
        }
        Some(match &self.repr {
            Repr::Explicit { .. } => 1.0,
            Repr::Complete { cost, .. } => match cost {
                LinkCost::Uniform => 1.0,
                LinkCost::LinearShuttle => a.abs_diff(b) as f64,
            },
        })
    }

    /// Cheapest-path distance under the device's intrinsic link costs
    /// (`Some(0.0)` when equal), or `None` if disconnected.
    ///
    /// For unit-cost devices this equals the hop distance; for an
    /// ion-trap all-to-all device it is the `|a − b|` shuttling distance
    /// (the direct link, which the triangle inequality makes optimal).
    /// Placement uses this so hot pairs land on *cheap* couplings, not
    /// merely few hops apart.
    pub fn cost_distance(&self, a: usize, b: usize) -> Option<f64> {
        match &self.repr {
            Repr::Explicit { .. } => self.distance(a, b).map(|d| d as f64),
            Repr::Complete { cost, .. } => Some(match cost {
                LinkCost::Uniform => f64::from(a != b),
                LinkCost::LinearShuttle => a.abs_diff(b) as f64,
            }),
        }
    }

    /// `true` if every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        match &self.repr {
            Repr::Explicit { dist, .. } => {
                (0..self.num_qubits).all(|b| dist.get(0, b) != UNREACHABLE)
            }
            Repr::Complete { .. } => true,
        }
    }

    /// A shortest path from `a` to `b` inclusive, or `None` if disconnected.
    ///
    /// Ties are broken toward lower qubit indices, so routing — and
    /// anything keyed on routed output, like compilation caches — is
    /// reproducible regardless of how the adjacency lists happen to be
    /// ordered.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let (adj, dist) = match &self.repr {
            Repr::Explicit { adj, dist, .. } => (adj, dist),
            Repr::Complete { .. } => {
                return Some(if a == b { vec![a] } else { vec![a, b] });
            }
        };
        self.distance(a, b)?;
        // Walk greedily from a toward b along the precomputed distances.
        // The qubit index is part of the key: `min_by_key` alone would
        // resolve equal-distance neighbors by iteration order, which is an
        // accident of adjacency-list construction, not a guarantee.
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let next = *adj[cur]
                .iter()
                .min_by_key(|&&v| (dist.get(v, b), v))
                .expect("connected node has neighbors");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Dijkstra shortest path under a per-edge weight function (used by
    /// noise-aware routing with `w = −log(1 − e2q)`), or `None` if
    /// disconnected.
    ///
    /// Binary-heap extraction (`O(m log n)`); the linear-scan extraction
    /// this replaced was `O(n²)` per query, which dominated noise-aware
    /// setup on kiloqubit devices. Weights must be non-negative; ties
    /// break toward lower indices, exactly as the linear scan did.
    pub fn shortest_path_weighted(
        &self,
        a: usize,
        b: usize,
        weight: &dyn Fn(usize, usize) -> f64,
    ) -> Option<(Vec<usize>, f64)> {
        let n = self.num_qubits;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        dist[a] = 0.0;
        heap.push(Reverse(HeapEntry { cost: 0.0, node: a }));
        while let Some(Reverse(HeapEntry { node: u, .. })) = heap.pop() {
            if u == b {
                break;
            }
            if done[u] {
                continue;
            }
            done[u] = true;
            for v in self.neighbors(u) {
                let w = weight(u, v);
                debug_assert!(w >= 0.0, "edge weights must be non-negative");
                let nd = dist[u] + w;
                if nd < dist[v] - 1e-15 {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Reverse(HeapEntry { cost: nd, node: v }));
                }
            }
        }
        if dist[b].is_infinite() {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some((path, dist[b]))
    }

    /// Single-source Dijkstra distances under a per-edge weight function:
    /// `result[b]` is the weighted distance from `source` to `b`
    /// (`f64::INFINITY` when unreachable, `0.0` at the source).
    ///
    /// One call computes what `num_qubits` calls of
    /// [`Topology::shortest_path_weighted`] from the same source would —
    /// the all-pairs reliability matrix of the noise-aware mapper costs
    /// `O(n)` heap-based Dijkstra runs (`O(m log n)` each) instead of
    /// `O(n)` linear-extraction runs at `O(n²)` each.
    ///
    /// Weights must be non-negative.
    pub fn weighted_distances_from(
        &self,
        source: usize,
        weight: &dyn Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let n = self.num_qubits;
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(Reverse(HeapEntry {
            cost: 0.0,
            node: source,
        }));
        while let Some(Reverse(HeapEntry { node: u, .. })) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            for v in self.neighbors(u) {
                let w = weight(u, v);
                debug_assert!(w >= 0.0, "edge weights must be non-negative");
                let nd = dist[u] + w;
                if nd < dist[v] - 1e-15 {
                    dist[v] = nd;
                    heap.push(Reverse(HeapEntry { cost: nd, node: v }));
                }
            }
        }
        dist
    }

    /// The gather cost of a qubit triple: the minimum, over the choice of a
    /// destination qubit among the three, of the summed distances from the
    /// other two to it. This is the paper's "total swap distance" label on
    /// the Figure 6/7 x-axis and the metric the Trios router minimizes when
    /// picking the destination.
    pub fn triple_distance(&self, a: usize, b: usize, c: usize) -> Option<usize> {
        self.best_gather_destination(a, b, c).map(|(_, d)| d)
    }

    /// Chooses the destination qubit for gathering a trio: the operand with
    /// the smallest summed distance to the other two (paper §4). Ties break
    /// toward the earlier operand, so routing is deterministic.
    ///
    /// Returns `(destination, summed distance)` or `None` if any pair is
    /// disconnected.
    pub fn best_gather_destination(&self, a: usize, b: usize, c: usize) -> Option<(usize, usize)> {
        let ab = self.distance(a, b)?;
        let ac = self.distance(a, c)?;
        let bc = self.distance(b, c)?;
        let candidates = [(a, ab + ac), (b, ab + bc), (c, ac + bc)];
        candidates.into_iter().min_by_key(|&(_, d)| d)
    }

    /// Classifies how a routed triple sits in the graph.
    pub fn triple_shape(&self, a: usize, b: usize, c: usize) -> TripleShape {
        let ab = self.are_adjacent(a, b);
        let ac = self.are_adjacent(a, c);
        let bc = self.are_adjacent(b, c);
        match (ab, ac, bc) {
            (true, true, true) => TripleShape::Triangle,
            (true, true, false) => TripleShape::Line { middle: a },
            (true, false, true) => TripleShape::Line { middle: b },
            (false, true, true) => TripleShape::Line { middle: c },
            _ => TripleShape::Disconnected,
        }
    }

    /// The longest shortest path in the graph, or `None` when disconnected.
    ///
    /// The diameter bounds the worst-case SWAP chain any router can be
    /// forced into; the paper's Figure 6/7 x-axis ("total swap distance")
    /// tops out near twice this value.
    pub fn diameter(&self) -> Option<usize> {
        if let Repr::Complete { .. } = &self.repr {
            return Some(usize::from(self.num_qubits > 1));
        }
        let mut best = 0usize;
        for a in 0..self.num_qubits() {
            for b in (a + 1)..self.num_qubits() {
                best = best.max(self.distance(a, b)?);
            }
        }
        Some(best)
    }

    /// Mean pairwise shortest-path distance, or `None` when disconnected
    /// (or for graphs with fewer than two qubits).
    ///
    /// A single-number proxy for expected routing cost: the paper's §6.1
    /// ordering of topology benefit (line > grid ≳ Johannesburg > clusters)
    /// tracks this metric.
    pub fn mean_distance(&self) -> Option<f64> {
        let n = self.num_qubits();
        if n < 2 {
            return None;
        }
        if let Repr::Complete { .. } = &self.repr {
            return Some(1.0);
        }
        let mut sum = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                sum += self.distance(a, b)?;
            }
        }
        Some(sum as f64 / (n * (n - 1) / 2) as f64)
    }

    /// A 64-bit FNV-1a hash of the coupling structure: the qubit count and
    /// the canonical (deduplicated, `a < b`, sorted) edge list.
    ///
    /// The device *name* is excluded — two devices with the same coupling
    /// graph compile every circuit identically, so they must key the same
    /// compilation-cache entries. The hash is a pure function of the
    /// structure, stable across runs and platforms. Complete devices hash
    /// their closed form (count plus cost model — an ion-trap all-to-all
    /// and a unit-cost full graph place circuits differently, so they must
    /// not share cache entries) without materializing edges.
    pub fn structural_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let write_u64 = |mut h: u64, word: u64| {
            for b in word.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h
        };
        let mut h = OFFSET;
        h = write_u64(h, self.num_qubits as u64);
        h = write_u64(h, self.num_edges() as u64);
        match &self.repr {
            Repr::Explicit { edges, .. } => {
                for &(a, b) in edges {
                    h = write_u64(h, a as u64);
                    h = write_u64(h, b as u64);
                }
            }
            Repr::Complete { cost, .. } => {
                // A distinct marker word keeps the closed form from
                // colliding with any explicit edge list prefix.
                h = write_u64(h, 0xC0CC_0000_0000_0001);
                h = write_u64(
                    h,
                    match cost {
                        LinkCost::Uniform => 0,
                        LinkCost::LinearShuttle => 1,
                    },
                );
            }
        }
        h
    }

    /// `true` if the graph contains at least one triangle.
    ///
    /// On triangle-free devices (Johannesburg, grids, lines, heavy-hex)
    /// the 6-CNOT Toffoli always needs extra SWAPs — the paper's central
    /// observation.
    pub fn has_triangle(&self) -> bool {
        match &self.repr {
            Repr::Explicit { adj, edges, .. } => edges
                .iter()
                .any(|&(a, b)| adj[a].iter().any(|&c| c != b && self.are_adjacent(b, c))),
            Repr::Complete { .. } => self.num_qubits >= 3,
        }
    }
}

/// Heap entry ordered by `(cost, node)` — the node index tie-break keeps
/// Dijkstra's settling order identical to the old lowest-index linear
/// scan, so weighted routing stays byte-for-byte reproducible.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .total_cmp(&other.cost)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} edges)",
            self.name,
            self.num_qubits,
            self.num_edges()
        )
    }
}

fn all_pairs_bfs(n: usize, adj: &[Vec<usize>]) -> DistMatrix {
    let mut d = vec![UNREACHABLE; n * n].into_boxed_slice();
    let mut queue = VecDeque::new();
    for src in 0..n {
        let row = &mut d[src * n..(src + 1) * n];
        row[src] = 0;
        queue.clear();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if row[v] == UNREACHABLE {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    DistMatrix { n, d }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Topology {
        Topology::from_edges("p4", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let t = Topology::from_edges("t", 3, &[(1, 0), (0, 1), (2, 1)]).unwrap();
        assert_eq!(t.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(t.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(t.degree(1), 2);
    }

    #[test]
    fn dedup_handles_half_a_million_edges_in_bounded_time() {
        // Regression for the O(m²) `canon.contains` dedup: a long line
        // with every edge repeated many times used to take O(m_in · m_out)
        // comparisons (~10⁹ here) — effectively a hang. Sort-based dedup
        // finishes in well under a second.
        let n = 2_000usize;
        let mut edges = Vec::with_capacity((n - 1) * 250);
        for _ in 0..250 {
            for i in 0..n - 1 {
                // Alternate orientation so canonicalization is exercised.
                edges.push(if i % 2 == 0 { (i, i + 1) } else { (i + 1, i) });
            }
        }
        let started = std::time::Instant::now();
        let t = Topology::from_edges("fat-line", n, &edges).unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(20),
            "construction took {:?}",
            started.elapsed()
        );
        assert_eq!(t.num_edges(), n - 1);
        assert_eq!(t.distance(0, n - 1), Some(n - 1));
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Topology::from_edges("t", 0, &[]),
            Err(TopologyError::Empty)
        ));
        assert!(matches!(
            Topology::from_edges("t", 2, &[(0, 2)]),
            Err(TopologyError::InvalidQubit { qubit: 2, .. })
        ));
        assert!(matches!(
            Topology::from_edges("t", 2, &[(1, 1)]),
            Err(TopologyError::SelfLoop { qubit: 1 })
        ));
    }

    #[test]
    fn distances_on_a_path() {
        let t = path4();
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.distance(2, 2), Some(0));
        assert!(t.is_connected());
    }

    #[test]
    fn disconnected_components() {
        let t = Topology::from_edges("t", 4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(t.distance(0, 3), None);
        assert!(!t.is_connected());
        assert_eq!(t.shortest_path(0, 2), None);
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let t = path4();
        let p = t.shortest_path(0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        let trivial = t.shortest_path(2, 2).unwrap();
        assert_eq!(trivial, vec![2]);
    }

    #[test]
    fn shortest_path_is_deterministic_on_ties() {
        // A 4-cycle has two equal paths 0→2; tie-break must pick via qubit 1.
        let t = Topology::from_edges("c4", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(t.shortest_path(0, 2).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn shortest_path_ties_break_by_lowest_index_everywhere() {
        // Regression: tie-breaking must be by qubit index, not by whatever
        // order neighbors were inserted. Declare the edges highest-first so
        // any accidental dependence on input order would surface.
        let t = Topology::from_edges("c4", 4, &[(3, 0), (2, 3), (1, 2), (0, 1)]).unwrap();
        // Both neighbors of 1 (0 and 2) are at distance 1 from 3: pick 0.
        assert_eq!(t.shortest_path(1, 3).unwrap(), vec![1, 0, 3]);
        // Symmetric query from the other end: neighbors of 3 are 0 and 2,
        // both at distance 1 from 1: pick 0 again.
        assert_eq!(t.shortest_path(3, 1).unwrap(), vec![3, 0, 1]);
        // A larger even ring: the two arcs tie, and every hop of the chosen
        // path must still prefer the lower index.
        let ring6 =
            Topology::from_edges("r6", 6, &[(5, 0), (4, 5), (3, 4), (2, 3), (1, 2), (0, 1)])
                .unwrap();
        assert_eq!(ring6.shortest_path(0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(ring6.shortest_path(3, 0).unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn structural_hash_ignores_name_and_edge_order() {
        let a = Topology::from_edges("a", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Topology::from_edges("b", 4, &[(2, 3), (1, 0), (1, 2), (0, 1)]).unwrap();
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Extra qubit (even if isolated) changes the structure.
        let wider = Topology::from_edges("a", 5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_ne!(a.structural_hash(), wider.structural_hash());

        // Different coupling changes the structure.
        let ring = Topology::from_edges("a", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_ne!(a.structural_hash(), ring.structural_hash());
    }

    #[test]
    fn weighted_path_avoids_heavy_edges() {
        // Square where the 0-1 edge is very noisy: prefer 0-3-2-1.
        let t = Topology::from_edges("c4", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let w = |a: usize, b: usize| {
            if (a.min(b), a.max(b)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        };
        let (path, cost) = t.shortest_path_weighted(0, 1, &w).unwrap();
        assert_eq!(path, vec![0, 3, 2, 1]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_matches_unweighted_with_unit_weights() {
        let t = path4();
        let (path, cost) = t.shortest_path_weighted(0, 3, &|_, _| 1.0).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn triple_shape_classification() {
        let tri = Topology::from_edges("k3", 3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(tri.triple_shape(0, 1, 2), TripleShape::Triangle);
        assert!(tri.has_triangle());

        let line = path4();
        assert_eq!(line.triple_shape(0, 1, 2), TripleShape::Line { middle: 1 });
        assert_eq!(line.triple_shape(1, 0, 2), TripleShape::Line { middle: 1 });
        assert_eq!(line.triple_shape(2, 0, 1), TripleShape::Line { middle: 1 });
        assert_eq!(line.triple_shape(0, 1, 3), TripleShape::Disconnected);
        assert!(!line.has_triangle());
    }

    #[test]
    fn triple_distance_is_best_gather_cost() {
        let t = path4();
        // Destinations: 0 → 1+3=4, 1 → 1+2=3, 3 → 3+2=5. Best is qubit 1.
        assert_eq!(t.best_gather_destination(0, 1, 3), Some((1, 3)));
        assert_eq!(t.triple_distance(0, 1, 3), Some(3));
    }

    #[test]
    fn gather_destination_tie_breaks_toward_first_operand() {
        // Symmetric path: ends tie through the middle.
        let t = path4();
        // (0, 2) around middle 1: dests 0→1+1? d(0,2)=2, d(0,1)=1, d(1,2)=1.
        // 0 → 2+1=3, 2 → 2+1=3, 1 → 1+1=2: middle wins outright.
        assert_eq!(t.best_gather_destination(0, 2, 1), Some((1, 2)));
        // True tie: qubits 1 and 2 for trio (1, 2, 3) on a path:
        // 1 → 1+2=3, 2 → 1+1=2, 3 → 2+1=3.
        assert_eq!(t.best_gather_destination(1, 2, 3), Some((2, 2)));
    }

    #[test]
    fn display_mentions_name_and_size() {
        let t = path4();
        assert_eq!(t.to_string(), "p4 (4 qubits, 3 edges)");
    }

    #[test]
    fn diameter_of_named_shapes() {
        use crate::{full, grid, line, ring};
        assert_eq!(line(20).diameter(), Some(19));
        assert_eq!(ring(20).diameter(), Some(10));
        assert_eq!(grid(5, 4).diameter(), Some(7));
        assert_eq!(full(6).diameter(), Some(1));
        assert_eq!(full(1).diameter(), Some(0));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let t = Topology::from_edges("two-islands", 4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(t.diameter(), None);
        assert_eq!(t.mean_distance(), None);
    }

    #[test]
    fn mean_distance_orders_paper_topologies() {
        use crate::{clusters, grid, johannesburg, line};
        // The paper's benefit ordering (line most, clusters least — §6.1)
        // tracks mean pairwise distance.
        let line_d = line(20).mean_distance().unwrap();
        let grid_d = grid(5, 4).mean_distance().unwrap();
        let jo_d = johannesburg().mean_distance().unwrap();
        let cl_d = clusters(4, 5).mean_distance().unwrap();
        assert!(line_d > jo_d && line_d > grid_d && line_d > cl_d);
        assert!(cl_d < jo_d && cl_d < grid_d);
    }

    #[test]
    fn mean_distance_of_full_graph_is_one() {
        use crate::full;
        assert_eq!(full(5).mean_distance(), Some(1.0));
        assert_eq!(full(1).mean_distance(), None);
    }

    #[test]
    fn weighted_distances_from_matches_per_pair_dijkstra() {
        use crate::johannesburg;
        let topo = johannesburg();
        // Deterministic non-uniform weights keyed off the edge endpoints.
        let weight =
            |a: usize, b: usize| 1.0 + 0.13 * ((a * 7 + b * 3) % 5) as f64 + 0.01 * a.min(b) as f64;
        for a in 0..topo.num_qubits() {
            let row = topo.weighted_distances_from(a, &weight);
            assert_eq!(row[a], 0.0);
            for (b, &value) in row.iter().enumerate() {
                if a == b {
                    continue;
                }
                let (_, pairwise) = topo.shortest_path_weighted(a, b, &weight).unwrap();
                assert_eq!(
                    value, pairwise,
                    "single-source and per-pair Dijkstra disagree on {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn heap_dijkstra_matches_linear_extraction_exactly() {
        // Regression for the BinaryHeap rewrite: dist AND tie-broken prev
        // pointers must reproduce the old lowest-index linear extraction.
        // The old implementation, verbatim:
        fn linear_dijkstra(
            t: &Topology,
            a: usize,
            b: usize,
            weight: &dyn Fn(usize, usize) -> f64,
        ) -> Option<(Vec<usize>, f64)> {
            let n = t.num_qubits();
            let mut dist = vec![f64::INFINITY; n];
            let mut prev = vec![usize::MAX; n];
            let mut done = vec![false; n];
            dist[a] = 0.0;
            for _ in 0..n {
                let mut u = usize::MAX;
                let mut best = f64::INFINITY;
                for v in 0..n {
                    if !done[v] && dist[v] < best {
                        best = dist[v];
                        u = v;
                    }
                }
                if u == usize::MAX || u == b {
                    break;
                }
                done[u] = true;
                for v in t.neighbors(u) {
                    let nd = dist[u] + weight(u, v);
                    if nd < dist[v] - 1e-15 {
                        dist[v] = nd;
                        prev[v] = u;
                    }
                }
            }
            if dist[b].is_infinite() {
                return None;
            }
            let mut path = vec![b];
            let mut cur = b;
            while cur != a {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            Some((path, dist[b]))
        }

        use crate::{grid, johannesburg};
        for topo in [johannesburg(), grid(6, 5)] {
            // Weights with deliberate ties (many equal values) so the
            // tie-breaking path is actually exercised.
            let weight = |a: usize, b: usize| 1.0 + ((a + b) % 3) as f64;
            for a in 0..topo.num_qubits() {
                for b in 0..topo.num_qubits() {
                    if a == b {
                        continue;
                    }
                    let fast = topo.shortest_path_weighted(a, b, &weight);
                    let slow = linear_dijkstra(&topo, a, b, &weight);
                    assert_eq!(fast, slow, "heap vs linear diverged on {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn weighted_distances_from_marks_unreachable_as_infinite() {
        let t = Topology::from_edges("two-islands", 4, &[(0, 1), (2, 3)]).unwrap();
        let row = t.weighted_distances_from(0, &|_, _| 1.0);
        assert_eq!(row[0], 0.0);
        assert_eq!(row[1], 1.0);
        assert!(row[2].is_infinite());
        assert!(row[3].is_infinite());
    }

    #[test]
    fn complete_answers_everything_in_closed_form() {
        let t = Topology::complete("k1000", 1000);
        assert_eq!(t.num_qubits(), 1000);
        assert_eq!(t.num_edges(), 499_500);
        assert!(t.is_connected());
        assert!(t.has_triangle());
        assert_eq!(t.distance(3, 997), Some(1));
        assert_eq!(t.distance(5, 5), Some(0));
        assert!(t.are_adjacent(0, 999));
        assert!(!t.are_adjacent(7, 7));
        assert_eq!(t.degree(500), 999);
        assert_eq!(t.diameter(), Some(1));
        assert_eq!(t.mean_distance(), Some(1.0));
        assert_eq!(t.shortest_path(4, 2), Some(vec![4, 2]));
        assert_eq!(t.shortest_path(4, 4), Some(vec![4]));
        assert_eq!(t.triple_shape(0, 500, 999), TripleShape::Triangle);
        assert_eq!(t.to_string(), "k1000 (1000 qubits, 499500 edges)");
    }

    #[test]
    fn complete_neighbors_iterate_everyone_else() {
        let t = Topology::complete("k5", 5);
        assert_eq!(t.neighbors(2).collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(t.neighbors(0).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(t.neighbors(4).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(t.neighbors(2).len(), 4);
    }

    #[test]
    fn complete_edges_materialize_lazily_and_match_explicit() {
        let implicit = Topology::complete("k5", 5);
        let mut pairs = Vec::new();
        for a in 0..5 {
            for b in a + 1..5 {
                pairs.push((a, b));
            }
        }
        let explicit = Topology::from_edges("k5", 5, &pairs).unwrap();
        assert_eq!(implicit.edges(), explicit.edges());
        // A clone starts with a cold cache but yields the same list.
        assert_eq!(implicit.clone().edges(), explicit.edges());
    }

    #[test]
    fn complete_link_costs() {
        let uniform = Topology::complete("full-6", 6);
        assert_eq!(uniform.link_cost(0, 5), Some(1.0));
        assert_eq!(uniform.link_cost(2, 2), None);
        assert_eq!(uniform.cost_distance(0, 5), Some(1.0));
        assert_eq!(uniform.cost_distance(3, 3), Some(0.0));

        let trap = Topology::complete_linear_cost("alltoall-6", 6);
        assert_eq!(trap.link_cost(0, 5), Some(5.0));
        assert_eq!(trap.link_cost(5, 0), Some(5.0));
        assert_eq!(trap.link_cost(2, 3), Some(1.0));
        assert_eq!(trap.cost_distance(0, 5), Some(5.0));
        assert_eq!(trap.cost_distance(4, 4), Some(0.0));

        // Explicit devices have unit link costs and hop cost-distances.
        let line = path4();
        assert_eq!(line.link_cost(0, 1), Some(1.0));
        assert_eq!(line.link_cost(0, 2), None);
        assert_eq!(line.cost_distance(0, 3), Some(3.0));
    }

    #[test]
    fn complete_structural_hash_separates_cost_models() {
        let full = Topology::complete("a", 40);
        let trap = Topology::complete_linear_cost("b", 40);
        // Same coupling, different costs → different compile results →
        // must not share compilation-cache entries.
        assert_ne!(full.structural_hash(), trap.structural_hash());
        // Name is still excluded.
        assert_eq!(
            full.structural_hash(),
            Topology::complete("z", 40).structural_hash()
        );
        // And sizes separate.
        assert_ne!(
            full.structural_hash(),
            Topology::complete("a", 41).structural_hash()
        );
    }

    #[test]
    fn complete_equality_is_structural() {
        assert_eq!(Topology::complete("k", 9), Topology::complete("k", 9));
        assert_ne!(
            Topology::complete("k", 9),
            Topology::complete_linear_cost("k", 9)
        );
        assert_ne!(Topology::complete("k", 9), Topology::complete("j", 9));
    }

    #[test]
    fn weighted_search_works_on_complete_graphs() {
        // Dijkstra over an implicit K_n: the direct edge wins under the
        // shuttling metric (triangle inequality), and single-source rows
        // agree with per-pair queries.
        let t = Topology::complete_linear_cost("trap", 12);
        let w = |a: usize, b: usize| t.link_cost(a, b).unwrap();
        let (path, cost) = t.shortest_path_weighted(2, 9, &w).unwrap();
        assert_eq!(path, vec![2, 9]);
        assert!((cost - 7.0).abs() < 1e-12);
        let row = t.weighted_distances_from(0, &w);
        for (b, &value) in row.iter().enumerate() {
            assert!((value - b as f64).abs() < 1e-12, "row[{b}] = {value}");
        }
    }
}
