//! Topology construction errors.

use std::error::Error;
use std::fmt;

/// Reasons a coupling graph cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge references a qubit index at or beyond the device size.
    InvalidQubit {
        /// The offending index.
        qubit: usize,
        /// Device size.
        num_qubits: usize,
    },
    /// An edge connects a qubit to itself.
    SelfLoop {
        /// The offending qubit.
        qubit: usize,
    },
    /// The device has zero qubits.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidQubit { qubit, num_qubits } => write!(
                f,
                "edge references qubit {qubit} but the device has {num_qubits} qubits"
            ),
            TopologyError::SelfLoop { qubit } => {
                write!(f, "edge connects qubit {qubit} to itself")
            }
            TopologyError::Empty => write!(f, "a device must have at least one qubit"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = TopologyError::InvalidQubit {
            qubit: 25,
            num_qubits: 20,
        };
        assert!(e.to_string().contains("25"));
        assert!(TopologyError::Empty.to_string().contains("at least one"));
    }
}
