//! Constructors for the device topologies used in the paper (Figure 5) and
//! a few extras for sensitivity studies.

use crate::Topology;

/// The IBM Johannesburg coupling map (Figure 5a): 20 qubits arranged as
/// four connected rings. This is the device of all the paper's real
/// experiments.
///
/// Edge list taken from the published Qiskit backend configuration.
pub fn johannesburg() -> Topology {
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (0, 5),
        (4, 9),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (5, 10),
        (7, 12),
        (9, 14),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
        (10, 15),
        (14, 19),
        (15, 16),
        (16, 17),
        (17, 18),
        (18, 19),
    ];
    Topology::from_edges("ibmq-johannesburg", 20, &edges).expect("static edge list is valid")
}

/// A rectangular 2D grid, `cols × rows` qubits (Figure 5b is `grid(5, 4)`),
/// numbered row-major.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(cols: usize, rows: usize) -> Topology {
    assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let q = r * cols + c;
            if c + 1 < cols {
                edges.push((q, q + 1));
            }
            if r + 1 < rows {
                edges.push((q, q + cols));
            }
        }
    }
    Topology::from_edges(format!("full-grid-{cols}x{rows}"), cols * rows, &edges)
        .expect("generated edges are valid")
}

/// A linear chain of `n` qubits (Figure 5d is `line(20)`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize) -> Topology {
    assert!(n > 0, "line length must be positive");
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Topology::from_edges(format!("line-{n}"), n, &edges).expect("generated edges are valid")
}

/// A ring of `n` qubits.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 qubits");
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Topology::from_edges(format!("ring-{n}"), n, &edges).expect("generated edges are valid")
}

/// A fully connected device of `n` qubits (routing never needs SWAPs).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn full(n: usize) -> Topology {
    assert!(n > 0, "device size must be positive");
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            edges.push((a, b));
        }
    }
    Topology::from_edges(format!("full-{n}"), n, &edges).expect("generated edges are valid")
}

/// The paper's clustered QCCD-style device (Figure 5c): `num_clusters`
/// fully-connected clusters of `cluster_size` qubits, linked in a ring by
/// single edges between consecutive clusters (`clusters(4, 5)` is the
/// paper's 20-qubit instance).
///
/// The inter-cluster link connects the last qubit of cluster *i* to the
/// first qubit of cluster *i+1*.
///
/// # Panics
///
/// Panics if `num_clusters == 0` or `cluster_size == 0`.
pub fn clusters(num_clusters: usize, cluster_size: usize) -> Topology {
    assert!(
        num_clusters > 0 && cluster_size > 0,
        "cluster dimensions must be positive"
    );
    let mut edges = Vec::new();
    for k in 0..num_clusters {
        let base = k * cluster_size;
        for a in 0..cluster_size {
            for b in a + 1..cluster_size {
                edges.push((base + a, base + b));
            }
        }
    }
    if num_clusters > 1 {
        for k in 0..num_clusters {
            let next = (k + 1) % num_clusters;
            if num_clusters == 2 && k == 1 {
                break; // avoid a duplicate link between two clusters
            }
            edges.push((k * cluster_size + cluster_size - 1, next * cluster_size));
        }
    }
    Topology::from_edges(
        format!("clusters-{cluster_size}x{num_clusters}"),
        num_clusters * cluster_size,
        &edges,
    )
    .expect("generated edges are valid")
}

/// IBM's 27-qubit heavy-hex lattice (Falcon family: Mumbai, Montreal, …),
/// the topology IBM moved to after the Johannesburg generation.
///
/// Heavy-hex is triangle-free with maximum degree 3, so like Johannesburg
/// every Toffoli needs the 8-CNOT linear decomposition — Trios' placement
/// reasoning carries over unchanged to IBM's current devices.
pub fn heavy_hex_falcon27() -> Topology {
    const EDGES: [(usize, usize); 28] = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ];
    Topology::from_edges("heavy-hex-27", 27, &EDGES).expect("published map is valid")
}

/// The four 20-qubit device types of the paper's evaluation (Figure 5),
/// in the order the figures report them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDevice {
    /// IBM Johannesburg (orange bars).
    Johannesburg,
    /// 5×4 2D grid (yellow bars).
    Grid,
    /// 20-qubit line (green bars).
    Line,
    /// Four fully-connected clusters of five (purple bars).
    Clusters,
}

impl PaperDevice {
    /// All four devices, in the paper's reporting order.
    pub const ALL: [PaperDevice; 4] = [
        PaperDevice::Johannesburg,
        PaperDevice::Grid,
        PaperDevice::Line,
        PaperDevice::Clusters,
    ];

    /// Builds the 20-qubit topology for this device type.
    pub fn build(self) -> Topology {
        match self {
            PaperDevice::Johannesburg => johannesburg(),
            PaperDevice::Grid => grid(5, 4),
            PaperDevice::Line => line(20),
            PaperDevice::Clusters => clusters(4, 5),
        }
    }

    /// The label the paper's figures use for this device.
    pub fn label(self) -> &'static str {
        match self {
            PaperDevice::Johannesburg => "ibmq-johannesburg",
            PaperDevice::Grid => "full-grid-5x4",
            PaperDevice::Line => "line-20",
            PaperDevice::Clusters => "clusters-5x4",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hex_matches_published_map() {
        let t = heavy_hex_falcon27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.edges().len(), 28);
        assert!(t.is_connected());
        assert!(!t.has_triangle());
        // Heavy-hex degree is at most 3.
        assert!((0..27).all(|q| t.degree(q) <= 3));
        // Spot-check published couplings.
        assert!(t.are_adjacent(12, 15));
        assert!(t.are_adjacent(25, 26));
        assert!(!t.are_adjacent(0, 2));
    }

    #[test]
    fn johannesburg_matches_published_map() {
        let t = johannesburg();
        assert_eq!(t.num_qubits(), 20);
        assert_eq!(t.edges().len(), 23);
        assert!(t.is_connected());
        // Spot-check a few published couplings.
        assert!(t.are_adjacent(0, 5));
        assert!(t.are_adjacent(7, 12));
        assert!(t.are_adjacent(14, 19));
        assert!(!t.are_adjacent(0, 6));
        // Johannesburg is triangle-free: the 6-CNOT Toffoli never fits
        // directly (paper §2.2).
        assert!(!t.has_triangle());
    }

    #[test]
    fn johannesburg_fig1_distances() {
        // The paper's Fig. 6/7 x-labels pair triplets with their total swap
        // distance; check against the published labels.
        let t = johannesburg();
        assert_eq!(t.triple_distance(6, 17, 3), Some(10)); // "(6-17-3) 10"
        assert_eq!(t.triple_distance(16, 1, 8), Some(10)); // "(16-1-8) 10"
        assert_eq!(t.triple_distance(3, 1, 2), Some(2)); // "(3-1-2) 2"
        assert_eq!(t.triple_distance(17, 16, 18), Some(2)); // "(17-16-18) 2"
        assert_eq!(t.triple_distance(7, 18, 3), Some(9)); // "(7-18-3) 9"
        assert_eq!(t.triple_distance(0, 12, 15), Some(6)); // "(0-12-15) 6"
    }

    #[test]
    fn grid_structure() {
        let t = grid(5, 4);
        assert_eq!(t.num_qubits(), 20);
        // 4 rows × 4 horizontal + 5 cols × 3 vertical = 16 + 15 = 31.
        assert_eq!(t.edges().len(), 31);
        assert!(t.are_adjacent(0, 1));
        assert!(t.are_adjacent(0, 5));
        assert!(!t.are_adjacent(4, 5)); // row wrap is not an edge
        assert!(!t.has_triangle());
        assert_eq!(t.distance(0, 19), Some(7));
    }

    #[test]
    fn line_structure() {
        let t = line(20);
        assert_eq!(t.edges().len(), 19);
        assert_eq!(t.distance(0, 19), Some(19));
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(10), 2);
    }

    #[test]
    fn ring_structure() {
        let t = ring(6);
        assert_eq!(t.edges().len(), 6);
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.distance(0, 5), Some(1));
    }

    #[test]
    fn full_needs_no_routing() {
        let t = full(6);
        assert_eq!(t.edges().len(), 15);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(t.distance(a, b), Some(1));
                }
            }
        }
        assert!(t.has_triangle());
    }

    #[test]
    fn clusters_structure() {
        let t = clusters(4, 5);
        assert_eq!(t.num_qubits(), 20);
        // 4 × C(5,2) intra + 4 ring links = 40 + 4.
        assert_eq!(t.edges().len(), 44);
        assert!(t.is_connected());
        assert!(t.has_triangle()); // clusters contain triangles
                                   // Within a cluster: distance 1.
        assert_eq!(t.distance(0, 4), Some(1));
        // Across neighboring clusters: through the single link 4–5.
        assert!(t.are_adjacent(4, 5));
        assert_eq!(t.distance(0, 9), Some(3));
    }

    #[test]
    fn two_clusters_have_single_link() {
        let t = clusters(2, 3);
        // 2 × C(3,2) + 1 link = 7.
        assert_eq!(t.edges().len(), 7);
        assert!(t.is_connected());
    }

    #[test]
    fn paper_devices_build_and_label() {
        for d in PaperDevice::ALL {
            let t = d.build();
            assert_eq!(t.num_qubits(), 20);
            assert!(t.is_connected());
            assert_eq!(t.name(), d.label());
        }
    }
}
