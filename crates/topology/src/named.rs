//! Constructors for the device topologies used in the paper (Figure 5) and
//! a few extras for sensitivity studies.

use crate::Topology;

/// The IBM Johannesburg coupling map (Figure 5a): 20 qubits arranged as
/// four connected rings. This is the device of all the paper's real
/// experiments.
///
/// Edge list taken from the published Qiskit backend configuration.
pub fn johannesburg() -> Topology {
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (0, 5),
        (4, 9),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (5, 10),
        (7, 12),
        (9, 14),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
        (10, 15),
        (14, 19),
        (15, 16),
        (16, 17),
        (17, 18),
        (18, 19),
    ];
    Topology::from_edges("ibmq-johannesburg", 20, &edges).expect("static edge list is valid")
}

/// A rectangular 2D grid, `cols × rows` qubits (Figure 5b is `grid(5, 4)`),
/// numbered row-major.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(cols: usize, rows: usize) -> Topology {
    assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let q = r * cols + c;
            if c + 1 < cols {
                edges.push((q, q + 1));
            }
            if r + 1 < rows {
                edges.push((q, q + cols));
            }
        }
    }
    Topology::from_edges(format!("full-grid-{cols}x{rows}"), cols * rows, &edges)
        .expect("generated edges are valid")
}

/// A linear chain of `n` qubits (Figure 5d is `line(20)`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize) -> Topology {
    assert!(n > 0, "line length must be positive");
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Topology::from_edges(format!("line-{n}"), n, &edges).expect("generated edges are valid")
}

/// A ring of `n` qubits.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 qubits");
    let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    Topology::from_edges(format!("ring-{n}"), n, &edges).expect("generated edges are valid")
}

/// A fully connected device of `n` qubits (routing never needs SWAPs).
///
/// Stored implicitly ([`Topology::complete`]): adjacency, distances, and
/// paths are all closed-form, so `full:1000` costs a few bytes rather
/// than ~500k materialized edges and a BFS.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn full(n: usize) -> Topology {
    assert!(n > 0, "device size must be positive");
    Topology::complete(format!("full-{n}"), n)
}

/// An ion-trap all-to-all device of `n` qubits with distance-weighted
/// link costs: any pair can interact (no SWAPs ever), but coupling ions
/// `a` and `b` costs `|a − b|` — the shuttling distance along a linear
/// trap. Placement therefore still matters: hot pairs belong on nearby
/// ions.
///
/// Like [`full`], the graph is stored implicitly and scales to thousands
/// of qubits for free.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alltoall(n: usize) -> Topology {
    assert!(n > 0, "device size must be positive");
    Topology::complete_linear_cost(format!("alltoall-{n}"), n)
}

/// Number of qubits in the distance-`d` heavy-hex lattice of
/// [`heavy_hex`]: `10c² + 12c + 1` with `c = (d − 1) / 2`.
///
/// The published IBM devices are `d = 7` → 127 (Eagle), `d = 13` → 433
/// (Osprey), and `d = 21` → 1121 (Condor).
///
/// # Panics
///
/// Panics if `d` is even or less than 3.
pub fn heavy_hex_qubits(d: usize) -> usize {
    assert!(
        d >= 3 && d % 2 == 1,
        "heavy-hex distance must be odd and ≥ 3"
    );
    let c = (d - 1) / 2;
    10 * c * c + 12 * c + 1
}

/// IBM's heavy-hex lattice at code distance `d` (odd, ≥ 3): the
/// hexagonal tiling with an extra qubit on every edge that IBM's
/// Eagle (`d = 7`, 127 qubits), Osprey (`d = 13`, 433 qubits), and
/// Condor (`d = 21`, 1121 qubits) processors use.
///
/// Construction, with `c = (d − 1) / 2`: `2c + 1` horizontal qubit rows
/// (row 0 spans columns `0..=4c+1`, interior rows `0..=4c+2`, the last
/// row `1..=4c+2`), interleaved with `2c` connector rows of `c + 1`
/// degree-2 bridge qubits each (even connector rows at columns
/// `0, 4, …, 4c`; odd ones at `2, 6, …, 4c+2`), each bridging the same
/// column of the rows above and below it. Qubits are numbered row-major
/// in that interleaved order.
///
/// The result is connected, triangle-free, and degree ≤ 3 — so as on
/// Johannesburg, no Toffoli ever finds a triangle and the 8-CNOT
/// decomposition is always the one routed for (paper §2.2).
///
/// # Panics
///
/// Panics if `d` is even or less than 3.
pub fn heavy_hex(d: usize) -> Topology {
    let n = heavy_hex_qubits(d); // validates d
    let c = (d - 1) / 2;
    let width = 4 * c + 3;
    let mut next = 0usize;
    let mut edges = Vec::new();
    // Column → qubit id for each horizontal row, in interleaved order.
    let mut qubit_rows: Vec<Vec<Option<usize>>> = Vec::with_capacity(2 * c + 1);
    // (connector id, row above it, column) — wired in a second pass
    // because the row below is numbered after the connector.
    let mut connectors = Vec::with_capacity(2 * c * (c + 1));
    for j in 0..=2 * c {
        let (lo, hi) = match j {
            0 => (0, 4 * c + 1),
            _ if j == 2 * c => (1, 4 * c + 2),
            _ => (0, 4 * c + 2),
        };
        let mut row = vec![None; width];
        for (i, slot) in row[lo..=hi].iter_mut().enumerate() {
            *slot = Some(next);
            if i > 0 {
                edges.push((next - 1, next));
            }
            next += 1;
        }
        qubit_rows.push(row);
        if j < 2 * c {
            let start = if j % 2 == 0 { 0 } else { 2 };
            for x in (start..=start + 4 * c).step_by(4) {
                connectors.push((next, j, x));
                next += 1;
            }
        }
    }
    debug_assert_eq!(next, n);
    for (id, j, x) in connectors {
        let above = qubit_rows[j][x].expect("connector column exists in row above");
        let below = qubit_rows[j + 1][x].expect("connector column exists in row below");
        edges.push((above, id));
        edges.push((id, below));
    }
    Topology::from_edges(format!("heavy-hex-{n}"), n, &edges).expect("generated edges are valid")
}

/// The paper's clustered QCCD-style device (Figure 5c): `num_clusters`
/// fully-connected clusters of `cluster_size` qubits, linked in a ring by
/// single edges between consecutive clusters (`clusters(4, 5)` is the
/// paper's 20-qubit instance).
///
/// The inter-cluster link connects the last qubit of cluster *i* to the
/// first qubit of cluster *i+1*.
///
/// # Panics
///
/// Panics if `num_clusters == 0` or `cluster_size == 0`.
pub fn clusters(num_clusters: usize, cluster_size: usize) -> Topology {
    assert!(
        num_clusters > 0 && cluster_size > 0,
        "cluster dimensions must be positive"
    );
    let mut edges = Vec::new();
    for k in 0..num_clusters {
        let base = k * cluster_size;
        for a in 0..cluster_size {
            for b in a + 1..cluster_size {
                edges.push((base + a, base + b));
            }
        }
    }
    if num_clusters > 1 {
        for k in 0..num_clusters {
            let next = (k + 1) % num_clusters;
            if num_clusters == 2 && k == 1 {
                break; // avoid a duplicate link between two clusters
            }
            edges.push((k * cluster_size + cluster_size - 1, next * cluster_size));
        }
    }
    Topology::from_edges(
        format!("clusters-{cluster_size}x{num_clusters}"),
        num_clusters * cluster_size,
        &edges,
    )
    .expect("generated edges are valid")
}

/// IBM's 27-qubit heavy-hex lattice (Falcon family: Mumbai, Montreal, …),
/// the topology IBM moved to after the Johannesburg generation.
///
/// Heavy-hex is triangle-free with maximum degree 3, so like Johannesburg
/// every Toffoli needs the 8-CNOT linear decomposition — Trios' placement
/// reasoning carries over unchanged to IBM's current devices.
pub fn heavy_hex_falcon27() -> Topology {
    const EDGES: [(usize, usize); 28] = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ];
    Topology::from_edges("heavy-hex-27", 27, &EDGES).expect("published map is valid")
}

/// The four 20-qubit device types of the paper's evaluation (Figure 5),
/// in the order the figures report them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDevice {
    /// IBM Johannesburg (orange bars).
    Johannesburg,
    /// 5×4 2D grid (yellow bars).
    Grid,
    /// 20-qubit line (green bars).
    Line,
    /// Four fully-connected clusters of five (purple bars).
    Clusters,
}

impl PaperDevice {
    /// All four devices, in the paper's reporting order.
    pub const ALL: [PaperDevice; 4] = [
        PaperDevice::Johannesburg,
        PaperDevice::Grid,
        PaperDevice::Line,
        PaperDevice::Clusters,
    ];

    /// Builds the 20-qubit topology for this device type.
    pub fn build(self) -> Topology {
        match self {
            PaperDevice::Johannesburg => johannesburg(),
            PaperDevice::Grid => grid(5, 4),
            PaperDevice::Line => line(20),
            PaperDevice::Clusters => clusters(4, 5),
        }
    }

    /// The label the paper's figures use for this device.
    pub fn label(self) -> &'static str {
        match self {
            PaperDevice::Johannesburg => "ibmq-johannesburg",
            PaperDevice::Grid => "full-grid-5x4",
            PaperDevice::Line => "line-20",
            PaperDevice::Clusters => "clusters-5x4",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hex_matches_published_map() {
        let t = heavy_hex_falcon27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.edges().len(), 28);
        assert!(t.is_connected());
        assert!(!t.has_triangle());
        // Heavy-hex degree is at most 3.
        assert!((0..27).all(|q| t.degree(q) <= 3));
        // Spot-check published couplings.
        assert!(t.are_adjacent(12, 15));
        assert!(t.are_adjacent(25, 26));
        assert!(!t.are_adjacent(0, 2));
    }

    #[test]
    fn johannesburg_matches_published_map() {
        let t = johannesburg();
        assert_eq!(t.num_qubits(), 20);
        assert_eq!(t.edges().len(), 23);
        assert!(t.is_connected());
        // Spot-check a few published couplings.
        assert!(t.are_adjacent(0, 5));
        assert!(t.are_adjacent(7, 12));
        assert!(t.are_adjacent(14, 19));
        assert!(!t.are_adjacent(0, 6));
        // Johannesburg is triangle-free: the 6-CNOT Toffoli never fits
        // directly (paper §2.2).
        assert!(!t.has_triangle());
    }

    #[test]
    fn johannesburg_fig1_distances() {
        // The paper's Fig. 6/7 x-labels pair triplets with their total swap
        // distance; check against the published labels.
        let t = johannesburg();
        assert_eq!(t.triple_distance(6, 17, 3), Some(10)); // "(6-17-3) 10"
        assert_eq!(t.triple_distance(16, 1, 8), Some(10)); // "(16-1-8) 10"
        assert_eq!(t.triple_distance(3, 1, 2), Some(2)); // "(3-1-2) 2"
        assert_eq!(t.triple_distance(17, 16, 18), Some(2)); // "(17-16-18) 2"
        assert_eq!(t.triple_distance(7, 18, 3), Some(9)); // "(7-18-3) 9"
        assert_eq!(t.triple_distance(0, 12, 15), Some(6)); // "(0-12-15) 6"
    }

    #[test]
    fn grid_structure() {
        let t = grid(5, 4);
        assert_eq!(t.num_qubits(), 20);
        // 4 rows × 4 horizontal + 5 cols × 3 vertical = 16 + 15 = 31.
        assert_eq!(t.edges().len(), 31);
        assert!(t.are_adjacent(0, 1));
        assert!(t.are_adjacent(0, 5));
        assert!(!t.are_adjacent(4, 5)); // row wrap is not an edge
        assert!(!t.has_triangle());
        assert_eq!(t.distance(0, 19), Some(7));
    }

    #[test]
    fn line_structure() {
        let t = line(20);
        assert_eq!(t.edges().len(), 19);
        assert_eq!(t.distance(0, 19), Some(19));
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(10), 2);
    }

    #[test]
    fn ring_structure() {
        let t = ring(6);
        assert_eq!(t.edges().len(), 6);
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.distance(0, 5), Some(1));
    }

    #[test]
    fn full_needs_no_routing() {
        let t = full(6);
        assert_eq!(t.edges().len(), 15);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(t.distance(a, b), Some(1));
                }
            }
        }
        assert!(t.has_triangle());
    }

    #[test]
    fn clusters_structure() {
        let t = clusters(4, 5);
        assert_eq!(t.num_qubits(), 20);
        // 4 × C(5,2) intra + 4 ring links = 40 + 4.
        assert_eq!(t.edges().len(), 44);
        assert!(t.is_connected());
        assert!(t.has_triangle()); // clusters contain triangles
                                   // Within a cluster: distance 1.
        assert_eq!(t.distance(0, 4), Some(1));
        // Across neighboring clusters: through the single link 4–5.
        assert!(t.are_adjacent(4, 5));
        assert_eq!(t.distance(0, 9), Some(3));
    }

    #[test]
    fn two_clusters_have_single_link() {
        let t = clusters(2, 3);
        // 2 × C(3,2) + 1 link = 7.
        assert_eq!(t.edges().len(), 7);
        assert!(t.is_connected());
    }

    #[test]
    fn heavy_hex_family_matches_published_ibm_counts() {
        // Eagle / Osprey / Condor.
        for (d, expected) in [(7, 127), (13, 433), (21, 1121)] {
            assert_eq!(heavy_hex_qubits(d), expected);
            let t = heavy_hex(d);
            assert_eq!(t.num_qubits(), expected, "d = {d}");
            assert_eq!(t.name(), format!("heavy-hex-{expected}"));
        }
    }

    #[test]
    fn heavy_hex_invariants_at_small_distances() {
        for d in [3, 5, 7] {
            let t = heavy_hex(d);
            assert!(t.is_connected(), "d = {d} disconnected");
            assert!(!t.has_triangle(), "d = {d} has a triangle");
            assert!(
                (0..t.num_qubits()).all(|q| t.degree(q) <= 3),
                "d = {d} exceeds degree 3"
            );
        }
    }

    #[test]
    fn heavy_hex_smallest_instance_is_23_qubits() {
        // d = 3: c = 1 → 10 + 12 + 1 = 23.
        let t = heavy_hex(3);
        assert_eq!(t.num_qubits(), 23);
        // Row 0 has 4c+2 = 6 qubits in a chain.
        assert!(t.are_adjacent(0, 1));
        assert!(t.are_adjacent(4, 5));
        assert!(!t.are_adjacent(5, 6));
        // First connector row bridges row 0 and row 1 at columns 0 and 4.
        assert_eq!(t.degree(13), 2);
        assert_eq!(t.degree(14), 2);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn heavy_hex_rejects_even_distance() {
        heavy_hex(4);
    }

    #[test]
    fn alltoall_has_unit_distances_and_shuttle_costs() {
        let t = alltoall(100);
        assert_eq!(t.name(), "alltoall-100");
        assert_eq!(t.num_edges(), 100 * 99 / 2);
        assert_eq!(t.distance(0, 99), Some(1));
        assert_eq!(t.diameter(), Some(1));
        assert_eq!(t.link_cost(0, 99), Some(99.0));
        assert_eq!(t.link_cost(41, 42), Some(1.0));
        // Uniform-cost full graph is a *different* device.
        assert_ne!(t.structural_hash(), full(100).structural_hash());
    }

    #[test]
    fn kiloqubit_devices_construct_instantly() {
        let started = std::time::Instant::now();
        let hh = heavy_hex(21);
        let f = full(1121);
        let trap = alltoall(1121);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "zoo construction took {:?}",
            started.elapsed()
        );
        assert_eq!(hh.num_qubits(), 1121);
        assert_eq!(f.num_edges(), 1121 * 1120 / 2);
        assert_eq!(trap.distance(0, 1120), Some(1));
    }

    #[test]
    fn paper_devices_build_and_label() {
        for d in PaperDevice::ALL {
            let t = d.build();
            assert_eq!(t.num_qubits(), 20);
            assert!(t.is_connected());
            assert_eq!(t.name(), d.label());
        }
    }
}
