//! # trios-topology — hardware coupling graphs for the Trios compiler
//!
//! Devices in the NISQ era only execute two-qubit gates across the edges of
//! a *coupling graph*; everything else requires routing. This crate provides
//! the graph type ([`Topology`]), the shortest-path machinery the routers
//! use (BFS hop distance and Dijkstra under noise-aware weights), the
//! trio-shape classification ([`TripleShape`]) that drives the paper's
//! mapping-aware Toffoli decomposition, and constructors for every device
//! in the paper's Figure 5 plus extras.
//!
//! # Examples
//!
//! ```
//! use trios_topology::{johannesburg, TripleShape};
//!
//! let dev = johannesburg();
//! // Johannesburg is triangle-free, so a routed trio is always a line and
//! // the 8-CNOT Toffoli decomposition wins (paper §4).
//! assert!(!dev.has_triangle());
//! assert_eq!(dev.triple_shape(0, 1, 2), TripleShape::Line { middle: 1 });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod graph;
mod named;
mod render;
mod spec;

pub use error::TopologyError;
pub use graph::{Neighbors, Topology, TripleShape};
pub use named::{
    alltoall, clusters, full, grid, heavy_hex, heavy_hex_falcon27, heavy_hex_qubits, johannesburg,
    line, ring, PaperDevice,
};
pub use render::GridEmbedding;
pub use spec::{parse_spec, SpecError};
